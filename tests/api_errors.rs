//! Contract tests for the fallible two-phase generator API: every
//! `FairGenError` variant is reachable from a public entry point, and one
//! `fit` amortizes across `generate_batch` deterministically per seed for
//! trait objects of every generator family.

use fairgen_baselines::{
    BaGenerator, ErGenerator, GaeGenerator, GraphGenerator, NetGanGenerator, TagGenGenerator,
    TaskSpec, WalkLmBudget,
};
use fairgen_core::{FairGen, FairGenConfig, FairGenError, FairGenGenerator, FairGenVariant};
use fairgen_data::{toy_two_community, Dataset};
use fairgen_graph::{read_edge_list, Graph, NodeSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_task() -> (Graph, TaskSpec) {
    let lg = toy_two_community(3);
    let mut rng = StdRng::seed_from_u64(1);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
}

#[test]
fn invalid_config_is_typed_and_names_the_field() {
    let mut cfg = FairGenConfig::test_budget();
    cfg.ratio_r = 2.0;
    // Eager validation…
    match cfg.validate() {
        Err(FairGenError::InvalidConfig { field, message }) => {
            assert_eq!(field, "ratio_r");
            assert!(message.contains('2'), "message should echo the value: {message}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // …and the same error from the training entry point.
    let (g, task) = toy_task();
    assert!(matches!(
        FairGen::new(cfg).train(&g, &task, 0),
        Err(FairGenError::InvalidConfig { field: "ratio_r", .. })
    ));
}

#[test]
fn empty_and_too_small_graphs_are_rejected() {
    for n in [0usize, 1] {
        let g = Graph::empty(n);
        match FairGen::new(FairGenConfig::test_budget()).train(&g, &TaskSpec::unlabeled(), 0) {
            Err(FairGenError::GraphTooSmall { nodes, min_nodes }) => {
                assert_eq!(nodes, n);
                assert_eq!(min_nodes, 2);
            }
            other => panic!("expected GraphTooSmall for n={n}, got {other:?}"),
        }
    }
}

#[test]
fn labels_out_of_range_are_rejected_everywhere() {
    let (g, task) = toy_task();
    // Class id beyond num_classes.
    let bad_class = TaskSpec::new(vec![(0, task.num_classes + 3)], task.num_classes, None);
    assert!(matches!(
        FairGen::new(FairGenConfig::test_budget()).train(&g, &bad_class, 0),
        Err(FairGenError::LabelOutOfRange { .. })
    ));
    // Node id beyond the vertex set — caught by every generator family
    // through the shared TaskSpec validation.
    let bad_node = TaskSpec::new(vec![(u32::MAX, 0)], task.num_classes, None);
    let generators: Vec<Box<dyn GraphGenerator>> = vec![
        Box::new(ErGenerator),
        Box::new(BaGenerator),
        Box::new(GaeGenerator { dim: 4, epochs: 1, lr: 0.1 }),
        Box::new(FairGenGenerator::new(FairGenConfig::test_budget())),
    ];
    for gen in &generators {
        assert!(
            matches!(gen.fit(&g, &bad_node, 0), Err(FairGenError::NodeOutOfRange { .. })),
            "{} accepted an out-of-range labeled node",
            gen.name()
        );
    }
}

#[test]
fn missing_protected_group_with_positive_gamma_is_rejected() {
    let (g, task) = toy_task();
    let mut cfg = FairGenConfig::test_budget();
    cfg.gamma = 0.7;
    let stripped = TaskSpec::new(task.labeled.clone(), task.num_classes, None);
    match FairGen::new(cfg).train(&g, &stripped, 0) {
        Err(FairGenError::MissingProtectedGroup { gamma }) => {
            assert!((gamma - 0.7).abs() < 1e-12);
        }
        other => panic!("expected MissingProtectedGroup, got {other:?}"),
    }
    // gamma = 0 opts out of parity, so the same task is accepted.
    cfg.gamma = 0.0;
    cfg.cycles = 1;
    cfg.num_walks = 30;
    assert!(FairGen::new(cfg).train(&g, &stripped, 0).is_ok());
}

#[test]
fn group_universe_mismatch_is_rejected() {
    let (g, task) = toy_task();
    let wrong = TaskSpec::new(
        task.labeled.clone(),
        task.num_classes,
        Some(NodeSet::from_members(g.n() + 10, &[0, 1])),
    );
    assert!(matches!(
        FairGen::new(FairGenConfig::test_budget()).train(&g, &wrong, 0),
        Err(FairGenError::GroupUniverseMismatch { .. })
    ));
}

#[test]
fn io_and_loader_errors_are_typed() {
    // Graph I/O.
    match read_edge_list("0 1\nbroken line\n".as_bytes()) {
        Err(FairGenError::MalformedEdgeList { line: 2, .. }) => {}
        other => panic!("expected MalformedEdgeList, got {other:?}"),
    }
    // Fallible construction.
    assert!(matches!(
        Graph::try_from_edges(2, &[(0, 7)]),
        Err(FairGenError::NodeOutOfRange { node: 7, nodes: 2 })
    ));
    // Dataset loaders.
    let unlabeled = Dataset::Email.generate(1);
    let mut rng = StdRng::seed_from_u64(0);
    assert!(matches!(
        unlabeled.sample_few_shot_labels(2, &mut rng),
        Err(FairGenError::MissingLabels)
    ));
    // Errors render through std::error::Error.
    let e: Box<dyn std::error::Error> = Box::new(FairGenError::MissingLabels);
    assert!(!e.to_string().is_empty());
}

#[test]
fn one_fit_amortizes_across_generate_batch_for_every_family() {
    // The headline contract of the redesign, checked through trait objects:
    // fit once, then per-seed deterministic generation — the same seed
    // reproduces its graph no matter where it appears in a batch, and a
    // batch equals the corresponding sequence of single draws.
    let (g, task) = toy_task();
    let mut fairgen_cfg = FairGenConfig::test_budget();
    fairgen_cfg.cycles = 1;
    fairgen_cfg.num_walks = 60;
    fairgen_cfg.pool_cap = 180;
    let walk_budget = WalkLmBudget {
        walk_len: 6,
        train_walks: 50,
        epochs: 1,
        negative_weight: 0.2,
        gen_multiplier: 2,
        lr: 0.02,
    };
    let generators: Vec<Box<dyn GraphGenerator>> = vec![
        Box::new(ErGenerator),
        Box::new(BaGenerator),
        Box::new(GaeGenerator { dim: 6, epochs: 5, lr: 0.1 }),
        Box::new(NetGanGenerator { dim: 8, hidden: 12, budget: walk_budget }),
        Box::new(TagGenGenerator { d_model: 8, heads: 2, layers: 1, budget: walk_budget }),
        Box::new(FairGenGenerator::new(fairgen_cfg).with_variant(FairGenVariant::NoSelfPaced)),
    ];
    for gen in &generators {
        let mut fitted = gen.fit(&g, &task, 5).expect("fit");
        let batch = fitted.generate_batch(&[10, 11, 10]).expect("batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], batch[2], "{}: same seed must reproduce", gen.name());
        assert_eq!(
            batch[0],
            fitted.generate(10).expect("single draw"),
            "{}: batch and single draws must agree",
            gen.name()
        );
        for out in &batch {
            assert_eq!(out.n(), g.n(), "{}: vertex set preserved", gen.name());
        }
    }
}

#[test]
fn fit_generate_convenience_matches_two_phase_calls() {
    let (g, task) = toy_task();
    let gen = ErGenerator;
    let one_shot = gen.fit_generate(&g, &task, 7).expect("one-shot");
    let mut fitted = gen.fit(&g, &task, 7).expect("fit");
    assert_eq!(one_shot, fitted.generate(8).expect("generate"));
}
