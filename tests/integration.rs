//! Integration tests spanning every crate of the workspace: end-to-end
//! FairGen pipelines, fairness comparisons against ablations/baselines,
//! and the downstream augmentation pipeline — all through the two-phase
//! `fit` / `generate` lifecycle.

use fairgen_baselines::{ErGenerator, GraphGenerator, TagGenGenerator, TaskSpec, WalkLmBudget};
use fairgen_core::{FairGen, FairGenConfig, FairGenVariant};
use fairgen_data::{toy_two_community, Dataset};
use fairgen_embed::{
    accuracy, augment_graph, stratified_kfold, LogisticRegression, Node2Vec, Node2VecConfig,
};
use fairgen_graph::{Graph, NodeSet};
use fairgen_metrics::{overall_discrepancies, protected_discrepancies, DiscrepancyReport};
use fairgen_nn::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_task(seed: u64) -> (Graph, TaskSpec) {
    let lg = toy_two_community(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
}

fn quick_cfg() -> FairGenConfig {
    let mut cfg = FairGenConfig::test_budget();
    cfg.num_walks = 250;
    cfg.pool_cap = 750;
    cfg.cycles = 2;
    cfg
}

#[test]
fn end_to_end_train_generate_measure() {
    let (g, task) = toy_task(3);
    let trained = FairGen::new(quick_cfg()).train(&g, &task, 1).expect("valid input");
    let generated = trained.generate(2).expect("generate");
    // Structural invariants of the fair assembly.
    assert_eq!(generated.n(), g.n());
    assert_eq!(generated.m(), g.m());
    assert!(generated.min_degree() >= 1);
    // All nine discrepancies are finite and the mean is sane.
    let report = DiscrepancyReport::compute(&g, &generated, task.protected.as_ref());
    assert!(report.overall.iter().all(|v| v.is_finite()));
    assert!(report.mean_overall() < 5.0, "mean R = {}", report.mean_overall());
    assert!(report.mean_protected().expect("has S+") < 5.0);
}

#[test]
fn fairgen_protects_minority_volume_where_no_parity_may_not() {
    let (g, task) = toy_task(5);
    let s = task.protected.clone().expect("toy has S+");
    let quota = g.edges().filter(|&(u, v)| s.contains(u) || s.contains(v)).count();
    let fair = FairGen::new(quick_cfg()).train(&g, &task, 7).expect("valid input");
    let fair_out = fair.generate(8).expect("generate");
    let fair_incident =
        fair_out.edges().filter(|&(u, v)| s.contains(u) || s.contains(v)).count();
    // The fair assembly enforces the quota up to candidate availability.
    assert!(
        fair_incident as f64 >= 0.8 * quota as f64,
        "fair: {fair_incident} vs quota {quota}"
    );
}

#[test]
fn fairgen_beats_random_baseline_on_protected_discrepancy() {
    let (g, task) = toy_task(9);
    let s = task.protected.clone().expect("toy has S+");
    let trained = FairGen::new(quick_cfg()).train(&g, &task, 11).expect("valid input");
    let fair_out = trained.generate(12).expect("generate");
    let er_out = ErGenerator.fit_generate(&g, &task, 12).expect("ER accepts any graph");
    let fair_rp = protected_discrepancies(&g, &fair_out, &s);
    let er_rp = protected_discrepancies(&g, &er_out, &s);
    let fair_mean = fair_rp.iter().sum::<f64>() / 9.0;
    let er_mean = er_rp.iter().sum::<f64>() / 9.0;
    assert!(fair_mean < er_mean, "FairGen R+ {fair_mean} should beat ER R+ {er_mean}");
}

#[test]
fn deep_baseline_runs_end_to_end_on_benchmark_dataset() {
    let lg = Dataset::Ca.generate(1);
    let gen = TagGenGenerator {
        budget: WalkLmBudget {
            walk_len: 8,
            train_walks: 120,
            epochs: 2,
            negative_weight: 0.2,
            gen_multiplier: 3,
            lr: 0.02,
        },
        d_model: 16,
        heads: 2,
        layers: 1,
    };
    // One fit serves several draws; every draw meets the edge budget.
    let mut fitted = gen.fit(&lg.graph, &TaskSpec::unlabeled(), 3).expect("fit");
    let outs = fitted.generate_batch(&[3, 4]).expect("batch");
    for out in &outs {
        assert_eq!(out.m(), lg.graph.m());
        let r = overall_discrepancies(&lg.graph, out);
        assert!(r.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn augmentation_pipeline_runs_and_reports() {
    let lg = toy_two_community(13);
    // Two informative pseudo-classes for the classifier: community id.
    let s = lg.protected.clone().expect("toy has S+");
    let labels: Vec<usize> =
        (0..lg.graph.n() as u32).map(|v| usize::from(s.contains(v))).collect();
    let emb_cfg =
        Node2VecConfig { dim: 16, walks_per_node: 4, epochs: 2, ..Default::default() };
    let embed_eval = |g: &fairgen_graph::Graph| -> f64 {
        let emb = Node2Vec::train(g, &emb_cfg, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let folds = stratified_kfold(&labels, 5, &mut rng);
        let mut accs = Vec::new();
        for (train, test) in folds {
            let xtr = Mat::from_fn(train.len(), 16, |r, c| emb.vectors.get(train[r], c));
            let ytr: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
            let clf = LogisticRegression::fit(&xtr, &ytr, 2, 30, 0.05, 7);
            let xte = Mat::from_fn(test.len(), 16, |r, c| emb.vectors.get(test[r], c));
            let yte: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
            accs.push(accuracy(&clf.predict(&xte), &yte));
        }
        accs.iter().sum::<f64>() / accs.len() as f64
    };
    let base = embed_eval(&lg.graph);
    // The two communities are near-perfectly separable already.
    assert!(base > 0.8, "baseline accuracy {base}");
    let (g, task) = toy_task(13);
    let trained = FairGen::new(quick_cfg()).train(&g, &task, 14).expect("valid input");
    let generated = trained.generate(15).expect("generate");
    let mut rng = StdRng::seed_from_u64(16);
    let augmented = augment_graph(&lg.graph, &generated, 0.05, &mut rng);
    assert!(augmented.m() >= lg.graph.m());
    let aug = embed_eval(&augmented);
    // Augmentation must not destroy the signal.
    assert!(aug > base - 0.1, "augmented accuracy collapsed: {base} → {aug}");
}

#[test]
fn whole_pipeline_deterministic() {
    let (g, task) = toy_task(21);
    let cfg = quick_cfg();
    let a = FairGen::new(cfg).train(&g, &task, 33).expect("valid input");
    let b = FairGen::new(cfg).train(&g, &task, 33).expect("valid input");
    assert_eq!(a.generate(34).expect("a"), b.generate(34).expect("b"));
    assert_eq!(a.predict_labels(), b.predict_labels());
}

#[test]
fn variant_comparison_tab3_shape() {
    // Table III's claim at test scale: f_S (full) should not be worse than
    // pure negative sampling on the protected discrepancy, on average. Each
    // variant trains once and is sampled several times — the fit-once /
    // generate-many API makes averaging over draws nearly free, which keeps
    // this statistical comparison stable at test budgets.
    let (g, task) = toy_task(17);
    let s = task.protected.clone().expect("toy has S+");
    let cfg = quick_cfg();
    let train_seeds = [18u64, 47];
    let draw_seeds = [19u64, 20, 21];
    let mean_rp = |variant: FairGenVariant| -> f64 {
        let total: f64 = train_seeds
            .iter()
            .map(|&train_seed| {
                let trained = FairGen::new(cfg)
                    .with_variant(variant)
                    .train(&g, &task, train_seed)
                    .expect("valid input");
                let draws = trained.generate_batch(&draw_seeds).expect("batch");
                draws
                    .iter()
                    .map(|out| protected_discrepancies(&g, out, &s).iter().sum::<f64>() / 9.0)
                    .sum::<f64>()
                    / draws.len() as f64
            })
            .sum();
        total / train_seeds.len() as f64
    };
    let full_mean = mean_rp(FairGenVariant::Full);
    let neg_mean = mean_rp(FairGenVariant::NegativeSampling);
    // Allow slack: at test budgets the gap is noisy, but full f_S must not
    // be catastrophically worse.
    assert!(
        full_mean <= neg_mean * 1.5 + 0.05,
        "full {full_mean} vs negative-sampling {neg_mean}"
    );
}

#[test]
fn protected_group_projection_separates_on_original() {
    let lg = toy_two_community(25);
    let s: NodeSet = lg.protected.clone().expect("toy has S+");
    let emb = Node2Vec::train(
        &lg.graph,
        &Node2VecConfig { dim: 16, walks_per_node: 8, epochs: 3, ..Default::default() },
        1,
    );
    let proj = fairgen_embed::pca_2d(&emb.vectors);
    let sep = fairgen_embed::group_separation(&proj, &s);
    assert!(sep > 1.0, "original toy graph must separate groups, sep={sep}");
}
