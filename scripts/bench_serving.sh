#!/usr/bin/env bash
# Regenerates BENCH_serving.json: latency percentiles and throughput of the
# fairgen-rpc HTTP/1.1 front-end under concurrent loopback clients, across
# cold / warm / dedup request mixes plus an admission-control overload
# scenario (accept/shed rates, interactive-lane p50/p99 under bulk flood).
# Usage: scripts/bench_serving.sh [output.json] [clients] [requests_per_client]
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p fairgen-bench --bin bench_serving -- \
  "${1:-BENCH_serving.json}" "${2:-4}" "${3:-64}"
