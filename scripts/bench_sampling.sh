#!/usr/bin/env bash
# Regenerates BENCH_sampling.json: tokens/sec of the KV-cached incremental
# samplers vs the full-forward reference, the multi-thread fan-out axis, and
# the batched-decode axis (batch widths 1/4/16/64, one GEMM per layer per
# token across the batch vs the per-walk decode loop), at the quickstart
# model shapes.
# Usage: scripts/bench_sampling.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p fairgen-bench --bin bench_sampling -- "${1:-BENCH_sampling.json}"
