#!/usr/bin/env bash
# Observability smoke test: runs the serving example in `--socket` mode,
# which stands up the fairgen-rpc front-end on an ephemeral loopback port,
# drives real tenant traffic, then scrapes `GET /metrics` (asserting the
# Prometheus exposition parses and its counters agree with the `stats`
# RPC) and `GET /healthz` (asserting an idle server reports 200 ok).
# The example exits nonzero if any of those checks fail.
# Usage: scripts/smoke_metrics.sh
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p fairgen-suite --example serving -- --socket
