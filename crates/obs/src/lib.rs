//! fairgen-obs: dependency-free observability primitives.
//!
//! Three pieces, each usable on its own:
//!
//! * an in-memory metric model ([`MetricFamily`]) with a Prometheus
//!   text-format renderer ([`render`]) and parser ([`parse`]) — the
//!   renderer is pinned by a render→parse round-trip, so any scrape a
//!   real Prometheus server performs can be reconstructed bit-for-bit
//!   into the families that produced it;
//! * lock-free latency histograms ([`LatencyHistogram`], [`StageLatency`])
//!   cheap enough to stamp on the serving hot path, plus the shared
//!   ceil-based nearest-rank percentile helper ([`nearest_rank`]);
//! * a sustained-window health monitor ([`HealthMonitor`]) in the style
//!   of production chain-health checkers: a threshold breach must hold
//!   for N consecutive evaluation windows before the verdict flips to
//!   unhealthy, so a single scrape-time spike never trips a 503.
//!
//! The crate has no dependencies (std only) and no opinion about
//! transport: `fairgen-serve` records into the histograms, `fairgen-rpc`
//! renders the families at `GET /metrics` and asks the monitor at
//! `GET /healthz`, and the bench harness reuses [`nearest_rank`] for its
//! summary percentiles. Time is always passed *in* (`now_nanos`), never
//! read from the system clock, so every state transition is reproducible
//! under the admission layer's `ManualClock`.

mod expose;
mod health;
mod latency;

pub use expose::{
    parse, render, CounterPoint, GaugePoint, HistogramPoint, MetricFamily, MetricKind,
    ParseError,
};
pub use health::{HealthMonitor, HealthPolicy, HealthReason, HealthSample, HealthVerdict};
pub use latency::{
    LatencyHistogram, LatencySnapshot, StageLatency, StageLatencySnapshot, STAGE_NAMES,
};

/// Ceil-based nearest-rank percentile over an ascending-sorted slice.
///
/// For `p` in `(0, 1]` this returns the element at 1-based rank
/// `ceil(p * n)` — the classical nearest-rank definition, under which the
/// p100 is the maximum and the p99 of 100 samples is the 99th value (index
/// 98 is correct *here*; the bug this replaces was `((n - 1) * p).round()`,
/// which reads index 98 for p99 of 100 but also reads the *98th* value for
/// p99 of 99 samples and rounds p50 of 2 samples down to the minimum).
/// `p <= 0` returns the minimum.
pub fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (p * n as f64).ceil();
    let idx = if rank <= 1.0 { 0 } else { (rank as usize).min(n) - 1 };
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::nearest_rank;

    #[test]
    fn nearest_rank_matches_the_classical_definition() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 0.50), 50);
        assert_eq!(nearest_rank(&v, 0.99), 99);
        assert_eq!(nearest_rank(&v, 1.0), 100);
        assert_eq!(nearest_rank(&v, 0.0), 1);

        // The cases the old `.round()` rank got wrong.
        let v99: Vec<u64> = (1..=99).collect();
        assert_eq!(nearest_rank(&v99, 0.99), 99, "p99 of 99 samples is the max");
        assert_eq!(nearest_rank(&[10, 20], 0.50), 10);
        assert_eq!(nearest_rank(&[10, 20], 0.51), 20);
    }

    #[test]
    fn nearest_rank_handles_degenerate_inputs() {
        assert_eq!(nearest_rank(&[], 0.99), 0);
        assert_eq!(nearest_rank(&[7], 0.01), 7);
        assert_eq!(nearest_rank(&[7], 1.0), 7);
    }
}
