//! Lock-free latency histograms for the serving hot path.
//!
//! A [`LatencyHistogram`] is a fixed set of atomic bucket counters plus a
//! running count and nanosecond sum — one `fetch_add` per bucket hit, no
//! locks, so shard workers and the submit path can record into it without
//! contending. [`StageLatency`] groups the four serving stages the paper's
//! latency budget decomposes into; the RPC layer renders a snapshot as one
//! Prometheus histogram family labeled by `stage`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::expose::{HistogramPoint, MetricFamily};

/// Upper bounds in nanoseconds. Chosen to straddle the serving regimes
/// this workspace actually exhibits: dedup hits (tens of µs), coalesced
/// drains (ms), cold fits (hundreds of ms to seconds).
const BOUNDS_NANOS: [u64; 10] = [
    50_000,        // 50µs
    250_000,       // 250µs
    1_000_000,     // 1ms
    5_000_000,     // 5ms
    25_000_000,    // 25ms
    100_000_000,   // 100ms
    500_000_000,   // 500ms
    1_000_000_000, // 1s
    2_500_000_000, // 2.5s
    5_000_000_000, // 5s
];

/// A thread-safe histogram of durations with fixed nanosecond bounds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BOUNDS_NANOS.len()],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// A point-in-time copy of a [`LatencyHistogram`], with non-cumulative
/// per-bucket counts (cumulation happens at exposition time).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    pub buckets: [u64; BOUNDS_NANOS.len()],
    pub count: u64,
    pub sum_nanos: u64,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Lock-free; safe from any thread.
    pub fn record_nanos(&self, nanos: u64) {
        let idx = BOUNDS_NANOS.partition_point(|&b| b < nanos);
        if idx < BOUNDS_NANOS.len() {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        // Overflow bucket observations still count toward count/sum —
        // they land in the implicit +Inf bucket at exposition.
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Convenience for `Duration` callers.
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_nanos(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    pub fn snapshot(&self) -> LatencySnapshot {
        // Relaxed loads: each counter is independently monotonic; a scrape
        // is allowed to observe a torn-but-valid point between two
        // concurrent records (count may briefly exceed bucket sum by the
        // in-flight observation — exposition clamps, see to_point).
        let mut buckets = [0u64; BOUNDS_NANOS.len()];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        LatencySnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

impl LatencySnapshot {
    /// The fixed bucket bounds, in seconds (the Prometheus convention for
    /// `*_seconds` histograms).
    pub fn bounds_seconds() -> impl Iterator<Item = f64> {
        BOUNDS_NANOS.iter().map(|&n| n as f64 / 1e9)
    }

    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Renders this snapshot as one labeled histogram point with
    /// cumulative buckets.
    ///
    /// Concurrent recording can make a raw snapshot momentarily observe
    /// `count` ahead of the bucket increments; cumulative counts are
    /// clamped to `count` so the exposed series always satisfies the
    /// Prometheus invariant (`+Inf` bucket == `_count`).
    pub fn to_point(&self, labels: Vec<(String, String)>) -> HistogramPoint {
        let mut cumulative = 0u64;
        let buckets = Self::bounds_seconds()
            .zip(&self.buckets)
            .map(|(bound, &n)| {
                cumulative = (cumulative + n).min(self.count);
                (bound, cumulative)
            })
            .collect();
        HistogramPoint { labels, buckets, sum: self.sum_seconds(), count: self.count }
    }
}

/// The serving stages the latency budget decomposes into.
pub const STAGE_NAMES: [&str; 4] =
    ["admission_wait", "queue_wait", "model_invocation", "total"];

/// One histogram per serving stage; shared by reference between the
/// submit path (admission wait, total) and the shard workers (queue wait,
/// model invocation).
#[derive(Debug, Default)]
pub struct StageLatency {
    /// Time spent inside the admission decision (rate-limit check, lane
    /// inference, queue push) before the job was accepted.
    pub admission_wait: LatencyHistogram,
    /// Time between enqueue and the drain that picked the job up.
    pub queue_wait: LatencyHistogram,
    /// Wall time of the model call serving the job's coalesced group.
    pub model_invocation: LatencyHistogram,
    /// Submit-to-fulfill wall time, as the client experiences it.
    pub total: LatencyHistogram,
}

/// Point-in-time copy of all four stage histograms, cheap to clone into
/// `ServerStats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageLatencySnapshot {
    pub admission_wait: LatencySnapshot,
    pub queue_wait: LatencySnapshot,
    pub model_invocation: LatencySnapshot,
    pub total: LatencySnapshot,
}

impl StageLatency {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> StageLatencySnapshot {
        StageLatencySnapshot {
            admission_wait: self.admission_wait.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            model_invocation: self.model_invocation.snapshot(),
            total: self.total.snapshot(),
        }
    }
}

impl StageLatencySnapshot {
    fn stages(&self) -> [(&'static str, &LatencySnapshot); 4] {
        [
            ("admission_wait", &self.admission_wait),
            ("queue_wait", &self.queue_wait),
            ("model_invocation", &self.model_invocation),
            ("total", &self.total),
        ]
    }

    /// Renders all four stages as one histogram family labeled by
    /// `stage`. Stages with zero observations are still exposed (all-zero
    /// series), so dashboards see a stable label set from the first
    /// scrape.
    pub fn to_family(&self, name: &str, help: &str) -> MetricFamily {
        MetricFamily::Histogram {
            name: name.into(),
            help: help.into(),
            points: self
                .stages()
                .iter()
                .map(|(stage, snap)| {
                    snap.to_point(vec![("stage".to_string(), (*stage).to_string())])
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expose::{parse, render};

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = LatencyHistogram::new();
        h.record_nanos(10_000); // <= 50µs
        h.record_nanos(50_000); // boundary: belongs to the 50µs bucket
        h.record_nanos(2_000_000); // 5ms bucket
        h.record_nanos(10_000_000_000); // beyond 5s: +Inf only
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[3], 1); // 5ms bound
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3, "overflow obs is +Inf-only");
        assert_eq!(snap.sum_nanos, 10_000 + 50_000 + 2_000_000 + 10_000_000_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_nanos((t * 1000 + i) * 1_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder");
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8000, "all under 8ms < 5s bound");
    }

    #[test]
    fn stage_family_round_trips_through_exposition() {
        let stages = StageLatency::new();
        stages.admission_wait.record_nanos(30_000);
        stages.queue_wait.record_nanos(700_000);
        stages.model_invocation.record_nanos(450_000_000);
        stages.total.record_nanos(451_000_000);
        stages.total.record_nanos(80_000);
        let family =
            stages.snapshot().to_family("fairgen_stage_latency_seconds", "Per-stage latency.");
        let text = render(std::slice::from_ref(&family));
        let back = parse(&text).expect("parse");
        assert_eq!(back, vec![family]);
        assert!(text
            .contains("fairgen_stage_latency_seconds_bucket{stage=\"total\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn cumulative_buckets_clamp_to_count() {
        // Simulate the torn-read case: a bucket increment observed before
        // its count increment.
        let snap = LatencySnapshot {
            buckets: [2, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            count: 1,
            sum_nanos: 10,
        };
        let point = snap.to_point(Vec::new());
        assert!(point.buckets.iter().all(|&(_, c)| c <= point.count));
    }
}
