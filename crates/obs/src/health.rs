//! Sustained-window health evaluation.
//!
//! The failure mode this guards against is the one instantaneous checks
//! create: a load balancer scrapes `/healthz` the same millisecond a
//! bulk burst lands, sees a deep queue, and yanks a perfectly healthy
//! replica — amplifying the burst onto its peers. Production chain-health
//! checkers solve this by alerting on *sustained* thresholds: a breach
//! must hold for N consecutive evaluation windows before the verdict
//! flips, and one clean window flips it back.
//!
//! The monitor is deliberately clockless — [`HealthMonitor::evaluate`]
//! takes `now_nanos` — so the caller injects whatever clock the rest of
//! the stack uses. Under the admission layer's `ManualClock` every
//! 200→503 transition is a deterministic function of the sample sequence.

/// Thresholds and windowing for the health verdict.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Queue depth at-or-above this is a breach. `u64::MAX` disables.
    pub max_queue_depth: u64,
    /// Fraction of offered jobs dropped (rejected + shed) within one
    /// window at-or-above this is a breach. `> 1.0` disables.
    pub max_shed_rate: f64,
    /// Consecutive breached windows required before the verdict flips to
    /// unhealthy. 1 means "any full window"; a spike shorter than one
    /// window can never flip the verdict regardless.
    pub sustain: u32,
    /// Minimum window length. Evaluations arriving sooner than this after
    /// the last window closed reuse the cached verdict instead of opening
    /// a new window, so a scrape storm cannot fast-forward the streak.
    pub min_window_nanos: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            max_queue_depth: u64::MAX,
            max_shed_rate: 0.5,
            sustain: 3,
            min_window_nanos: 1_000_000_000, // 1s
        }
    }
}

/// One observation of the server's cumulative counters plus its
/// instantaneous queue depth. Counters are lifetime totals (the shape
/// `ServerStats` already exposes); the monitor differences consecutive
/// samples itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthSample {
    /// Jobs currently queued across all shards.
    pub queue_depth: u64,
    /// Lifetime jobs offered to admission (admitted + dropped).
    pub offered: u64,
    /// Lifetime jobs refused or shed (rejected_full + rejected_rate +
    /// shed_deadline).
    pub dropped: u64,
}

/// Why the monitor considers the server unhealthy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthReason {
    /// Queue depth breached `max_queue_depth` for `sustain` windows.
    QueueDepth,
    /// Windowed shed rate breached `max_shed_rate` for `sustain` windows.
    ShedRate,
}

impl HealthReason {
    pub fn as_str(self) -> &'static str {
        match self {
            HealthReason::QueueDepth => "queue_depth_sustained",
            HealthReason::ShedRate => "shed_rate_sustained",
        }
    }
}

/// The monitor's answer for one evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthVerdict {
    pub healthy: bool,
    /// First sustained breach, when unhealthy.
    pub reason: Option<HealthReason>,
    /// Current consecutive-breach streaks `(queue_depth, shed_rate)`,
    /// exposed for the endpoint's JSON body and for tests.
    pub streaks: (u32, u32),
    /// The shed rate measured over the last closed window.
    pub window_shed_rate: f64,
}

impl HealthVerdict {
    fn healthy_start() -> Self {
        HealthVerdict { healthy: true, reason: None, streaks: (0, 0), window_shed_rate: 0.0 }
    }
}

/// Tracks breach streaks across evaluation windows. One instance per
/// server; callers serialize access (the RPC layer holds it in a mutex).
#[derive(Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    /// Close time of the last window, or None before the first sample.
    window_closed_at: Option<u64>,
    /// Counters at the close of the last window.
    last: HealthSample,
    depth_streak: u32,
    shed_streak: u32,
    verdict: HealthVerdict,
}

impl HealthMonitor {
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMonitor {
            policy,
            window_closed_at: None,
            last: HealthSample::default(),
            depth_streak: 0,
            shed_streak: 0,
            verdict: HealthVerdict::healthy_start(),
        }
    }

    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Feeds one sample and returns the current verdict.
    ///
    /// The first sample only baselines the counters (always healthy: no
    /// window has elapsed). Thereafter, a sample taken at least
    /// `min_window_nanos` after the last window closed closes a new
    /// window and updates the streaks; earlier samples return the cached
    /// verdict unchanged.
    pub fn evaluate(&mut self, now_nanos: u64, sample: HealthSample) -> HealthVerdict {
        let Some(closed_at) = self.window_closed_at else {
            self.window_closed_at = Some(now_nanos);
            self.last = sample;
            return self.verdict;
        };
        if now_nanos.saturating_sub(closed_at) < self.policy.min_window_nanos {
            return self.verdict;
        }

        // Close the window: difference the cumulative counters against
        // the previous close. saturating_sub tolerates a server restart
        // behind the same monitor (counters reset to zero).
        let offered = sample.offered.saturating_sub(self.last.offered);
        let dropped = sample.dropped.saturating_sub(self.last.dropped);
        let shed_rate = if offered == 0 { 0.0 } else { dropped as f64 / offered as f64 };

        self.depth_streak = if sample.queue_depth >= self.policy.max_queue_depth {
            self.depth_streak.saturating_add(1)
        } else {
            0
        };
        self.shed_streak = if shed_rate >= self.policy.max_shed_rate {
            self.shed_streak.saturating_add(1)
        } else {
            0
        };

        let sustain = self.policy.sustain.max(1);
        let reason = if self.depth_streak >= sustain {
            Some(HealthReason::QueueDepth)
        } else if self.shed_streak >= sustain {
            Some(HealthReason::ShedRate)
        } else {
            None
        };
        self.verdict = HealthVerdict {
            healthy: reason.is_none(),
            reason,
            streaks: (self.depth_streak, self.shed_streak),
            window_shed_rate: shed_rate,
        };
        self.window_closed_at = Some(now_nanos);
        self.last = sample;
        self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn monitor(sustain: u32) -> HealthMonitor {
        HealthMonitor::new(HealthPolicy {
            max_queue_depth: 10,
            max_shed_rate: 0.5,
            sustain,
            min_window_nanos: SEC,
        })
    }

    fn calm(offered: u64) -> HealthSample {
        HealthSample { queue_depth: 0, offered, dropped: 0 }
    }

    #[test]
    fn first_sample_only_baselines() {
        let mut m = monitor(1);
        let v = m.evaluate(0, HealthSample { queue_depth: 999, offered: 100, dropped: 100 });
        assert!(v.healthy, "no window has elapsed yet");
    }

    #[test]
    fn single_spike_never_flips_with_sustain_two() {
        let mut m = monitor(2);
        m.evaluate(0, calm(100));
        // One breached window (everything offered in it was dropped)...
        let v = m.evaluate(SEC, HealthSample { queue_depth: 50, offered: 200, dropped: 100 });
        assert!(v.healthy, "one breached window is a spike, not an outage");
        assert_eq!(v.streaks, (1, 1));
        // ...followed by a calm one: streaks reset.
        let v =
            m.evaluate(2 * SEC, HealthSample { queue_depth: 0, offered: 300, dropped: 100 });
        assert!(v.healthy);
        assert_eq!(v.streaks, (0, 0));
    }

    #[test]
    fn sustained_breach_flips_and_recovers() {
        let mut m = monitor(2);
        m.evaluate(0, calm(100));
        m.evaluate(SEC, HealthSample { queue_depth: 0, offered: 200, dropped: 80 });
        let v =
            m.evaluate(2 * SEC, HealthSample { queue_depth: 0, offered: 300, dropped: 170 });
        assert!(!v.healthy);
        assert_eq!(v.reason, Some(HealthReason::ShedRate));
        assert!((v.window_shed_rate - 0.9).abs() < 1e-12);
        // One clean window restores health.
        let v =
            m.evaluate(3 * SEC, HealthSample { queue_depth: 0, offered: 400, dropped: 170 });
        assert!(v.healthy);
        assert_eq!(v.reason, None);
    }

    #[test]
    fn queue_depth_breach_reports_its_own_reason() {
        let mut m = monitor(2);
        m.evaluate(0, calm(10));
        m.evaluate(SEC, HealthSample { queue_depth: 10, offered: 20, dropped: 0 });
        let v = m.evaluate(2 * SEC, HealthSample { queue_depth: 12, offered: 30, dropped: 0 });
        assert!(!v.healthy);
        assert_eq!(v.reason, Some(HealthReason::QueueDepth));
    }

    #[test]
    fn scrape_storm_cannot_fast_forward_the_streak() {
        let mut m = monitor(2);
        m.evaluate(0, calm(100));
        m.evaluate(SEC, HealthSample { queue_depth: 50, offered: 200, dropped: 100 });
        // Ten rapid-fire scrapes within the same second: same breach data,
        // but no new window closes, so the streak must stay at 1.
        for i in 0..10 {
            let v = m.evaluate(
                SEC + (i + 1) * SEC / 100,
                HealthSample { queue_depth: 50, offered: 200, dropped: 100 },
            );
            assert!(v.healthy, "cached verdict, streak frozen at 1");
            assert_eq!(v.streaks, (1, 1));
        }
        // The next full window with the breach still present flips it.
        let v =
            m.evaluate(2 * SEC, HealthSample { queue_depth: 50, offered: 260, dropped: 160 });
        assert!(!v.healthy);
    }

    #[test]
    fn idle_windows_with_no_offers_are_healthy() {
        let mut m = monitor(1);
        m.evaluate(0, calm(100));
        let v = m.evaluate(SEC, calm(100)); // nothing offered, nothing dropped
        assert!(v.healthy);
        assert_eq!(v.window_shed_rate, 0.0);
    }

    #[test]
    fn counter_reset_does_not_panic_or_false_alarm() {
        let mut m = monitor(1);
        m.evaluate(0, HealthSample { queue_depth: 0, offered: 500, dropped: 100 });
        // Server restarted: counters wrapped to small values.
        let v = m.evaluate(SEC, HealthSample { queue_depth: 0, offered: 10, dropped: 0 });
        assert!(v.healthy);
    }
}
