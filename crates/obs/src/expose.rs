//! The Prometheus text exposition format (version 0.0.4): an in-memory
//! family model, a renderer, and a parser that inverts it.
//!
//! The model is deliberately value-oriented — callers build a fresh
//! `Vec<MetricFamily>` per scrape from whatever counters they already
//! keep, rather than registering long-lived metric objects. That fits
//! this workspace, where every subsystem already maintains its own atomic
//! stats structs; the exposition layer is a pure view over them.
//!
//! Rendering rules follow the exposition-format spec:
//! `# HELP`/`# TYPE` per family, label values escaped (`\\`, `\"`, `\n`),
//! histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
//! `_count`, with a final `le="+Inf"` bucket equal to `_count`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The exposition types this layer emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One `name{labels} value` sample of a counter family.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterPoint {
    /// Label pairs, ordered; rendered in the given order.
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

/// One gauge sample. Gauges are f64 because some (byte totals scaled to
/// MiB, ratios) are fractional; integral values render without a decimal
/// point so the round-trip is exact.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugePoint {
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// One histogram sample: cumulative bucket counts keyed by upper bound,
/// plus the running sum and total count.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramPoint {
    pub labels: Vec<(String, String)>,
    /// `(upper_bound, cumulative_count)` in ascending bound order. The
    /// implicit `+Inf` bucket is NOT stored here — it is rendered from
    /// `count` and reconstructed into `count` on parse.
    pub buckets: Vec<(f64, u64)>,
    pub sum: f64,
    pub count: u64,
}

/// A named family of same-kind samples — the unit of exposition.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricFamily {
    Counter { name: String, help: String, points: Vec<CounterPoint> },
    Gauge { name: String, help: String, points: Vec<GaugePoint> },
    Histogram { name: String, help: String, points: Vec<HistogramPoint> },
}

impl MetricFamily {
    pub fn name(&self) -> &str {
        match self {
            MetricFamily::Counter { name, .. }
            | MetricFamily::Gauge { name, .. }
            | MetricFamily::Histogram { name, .. } => name,
        }
    }

    pub fn kind(&self) -> MetricKind {
        match self {
            MetricFamily::Counter { .. } => MetricKind::Counter,
            MetricFamily::Gauge { .. } => MetricKind::Gauge,
            MetricFamily::Histogram { .. } => MetricKind::Histogram,
        }
    }

    /// Convenience: a counter family with a single unlabeled point.
    pub fn counter(name: &str, help: &str, value: u64) -> Self {
        MetricFamily::Counter {
            name: name.into(),
            help: help.into(),
            points: vec![CounterPoint { labels: Vec::new(), value }],
        }
    }

    /// Convenience: a gauge family with a single unlabeled point.
    pub fn gauge(name: &str, help: &str, value: f64) -> Self {
        MetricFamily::Gauge {
            name: name.into(),
            help: help.into(),
            points: vec![GaugePoint { labels: Vec::new(), value }],
        }
    }
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 so that integral values round-trip as integers
/// (`3` not `3.0`) and fractional values keep full precision.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        return "+Inf".into();
    }
    if v == f64::NEG_INFINITY {
        return "-Inf".into();
    }
    if v.is_nan() {
        return "NaN".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // 17 significant digits: enough to round-trip any f64 exactly.
        let s = format!("{v:.17e}");
        // Prefer the shortest representation that still parses back equal.
        let plain = format!("{v}");
        if plain.parse::<f64>() == Ok(v) {
            plain
        } else {
            s
        }
    }
}

fn labels_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Label block for a `_bucket` line: the point's own labels plus `le`.
fn bucket_labels(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push(("le".into(), le.into()));
    labels_block(&all)
}

/// Renders families to the Prometheus text exposition format.
///
/// The output is deterministic: families in input order, points in input
/// order, one trailing newline. Content type for HTTP transport is
/// `text/plain; version=0.0.4`.
pub fn render(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    for family in families {
        let (name, help) = (
            family.name(),
            match family {
                MetricFamily::Counter { help, .. }
                | MetricFamily::Gauge { help, .. }
                | MetricFamily::Histogram { help, .. } => help.as_str(),
            },
        );
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {name} {}", family.kind().as_str());
        match family {
            MetricFamily::Counter { points, .. } => {
                for p in points {
                    let _ = writeln!(out, "{name}{} {}", labels_block(&p.labels), p.value);
                }
            }
            MetricFamily::Gauge { points, .. } => {
                for p in points {
                    let _ =
                        writeln!(out, "{name}{} {}", labels_block(&p.labels), fmt_f64(p.value));
                }
            }
            MetricFamily::Histogram { points, .. } => {
                for p in points {
                    for (bound, cumulative) in &p.buckets {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            bucket_labels(&p.labels, &fmt_f64(*bound)),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        bucket_labels(&p.labels, "+Inf"),
                        p.count,
                    );
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        labels_block(&p.labels),
                        fmt_f64(p.sum)
                    );
                    let _ =
                        writeln!(out, "{name}_count{} {}", labels_block(&p.labels), p.count);
                }
            }
        }
    }
    out
}

/// Why a scrape body failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A sample line did not match `name{labels} value`.
    Malformed { line: String },
    /// A sample appeared before any `# TYPE` declared its family.
    Undeclared { name: String },
    /// A numeric value failed to parse.
    BadValue { line: String },
    /// A histogram series was incomplete (missing `_sum`/`_count`) or its
    /// `+Inf` bucket disagreed with `_count`.
    BadHistogram { name: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line } => write!(f, "malformed sample line: {line:?}"),
            ParseError::Undeclared { name } => {
                write!(f, "sample {name:?} appeared before its # TYPE line")
            }
            ParseError::BadValue { line } => write!(f, "unparseable value in: {line:?}"),
            ParseError::BadHistogram { name } => {
                write!(f, "inconsistent histogram series for {name:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// One parsed sample line: (metric name, labels, value-text).
type Sample<'a> = (&'a str, Vec<(String, String)>, &'a str);

/// Splits `name{k="v",...} value` into (name, labels, value-text).
fn split_sample(line: &str) -> Option<Sample<'_>> {
    if let Some(brace) = line.find('{') {
        let name = &line[..brace];
        let rest = &line[brace + 1..];
        let close = find_closing_brace(rest)?;
        let labels = parse_labels(&rest[..close])?;
        let value = rest[close + 1..].trim();
        Some((name, labels, value))
    } else {
        let mut parts = line.splitn(2, char::is_whitespace);
        let name = parts.next()?;
        let value = parts.next()?.trim();
        Some((name, Vec::new(), value))
    }
}

/// Index of the `}` that closes the label block, honoring quoted values.
fn find_closing_brace(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(s: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return None;
        }
        let body = &after[1..];
        // Find the closing quote, honoring escapes.
        let mut escaped = false;
        let mut end = None;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end?;
        labels.push((key, unescape_label_value(&body[..end])));
        rest = body[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(labels)
}

/// In-flight histogram state while parsing, keyed by the non-`le` labels.
#[derive(Default)]
struct HistogramBuild {
    // Keyed by rendered label block so identical label sets merge; the
    // value keeps the original labels plus accumulating series.
    points: BTreeMap<String, HistogramAccum>,
    order: Vec<String>,
}

#[derive(Default)]
struct HistogramAccum {
    labels: Vec<(String, String)>,
    buckets: Vec<(f64, u64)>,
    inf: Option<u64>,
    sum: Option<f64>,
    count: Option<u64>,
}

/// Parses a text-format scrape back into families.
///
/// Inverts [`render`] exactly: `parse(&render(&families)) == families`
/// for any families whose histogram buckets exclude `+Inf` (the renderer's
/// own invariant). Unknown comment lines are skipped; sample order within
/// a family is preserved.
pub fn parse(text: &str) -> Result<Vec<MetricFamily>, ParseError> {
    // name -> kind/help as declared; families in declaration order.
    let mut declared: BTreeMap<String, (MetricKind, String)> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut counters: BTreeMap<String, Vec<CounterPoint>> = BTreeMap::new();
    let mut gauges: BTreeMap<String, Vec<GaugePoint>> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistogramBuild> = BTreeMap::new();
    let mut helps: BTreeMap<String, String> = BTreeMap::new();

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            if let Some(name) = parts.next() {
                let help = parts.next().unwrap_or("");
                // Invert escape_help.
                let help = help.replace("\\n", "\n").replace("\\\\", "\\");
                helps.insert(name.to_string(), help);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("").to_string();
            let kind = match parts.next() {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                // Types this layer never emits (summary, untyped): skip the
                // declaration; their samples will error as Undeclared,
                // which is the honest behavior for a round-trip parser.
                _ => continue,
            };
            if !declared.contains_key(&name) {
                order.push(name.clone());
            }
            let help = helps.get(&name).cloned().unwrap_or_default();
            declared.insert(name, (kind, help));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        let (name, labels, value_text) =
            split_sample(line).ok_or_else(|| ParseError::Malformed { line: line.into() })?;

        // A histogram sample's line-name carries a suffix; resolve the
        // family it belongs to.
        let (family, suffix) = resolve_family(name, &declared);
        let Some(family) = family else {
            return Err(ParseError::Undeclared { name: name.into() });
        };
        let (kind, _) = declared[&family];
        match (kind, suffix) {
            (MetricKind::Counter, "") => {
                let value = value_text
                    .parse::<u64>()
                    .map_err(|_| ParseError::BadValue { line: line.into() })?;
                counters.entry(family).or_default().push(CounterPoint { labels, value });
            }
            (MetricKind::Gauge, "") => {
                let value = parse_f64(value_text)
                    .ok_or_else(|| ParseError::BadValue { line: line.into() })?;
                gauges.entry(family).or_default().push(GaugePoint { labels, value });
            }
            (MetricKind::Histogram, suffix) => {
                let build = hists.entry(family.clone()).or_default();
                match suffix {
                    "_bucket" => {
                        let mut le = None;
                        let base: Vec<(String, String)> = labels
                            .into_iter()
                            .filter_map(|(k, v)| {
                                if k == "le" {
                                    le = Some(v);
                                    None
                                } else {
                                    Some((k, v))
                                }
                            })
                            .collect();
                        let le =
                            le.ok_or_else(|| ParseError::Malformed { line: line.into() })?;
                        let cumulative = value_text
                            .parse::<u64>()
                            .map_err(|_| ParseError::BadValue { line: line.into() })?;
                        let accum = build.accum(&base);
                        if le == "+Inf" {
                            accum.inf = Some(cumulative);
                        } else {
                            let bound = parse_f64(&le)
                                .ok_or_else(|| ParseError::BadValue { line: line.into() })?;
                            accum.buckets.push((bound, cumulative));
                        }
                    }
                    "_sum" => {
                        let sum = parse_f64(value_text)
                            .ok_or_else(|| ParseError::BadValue { line: line.into() })?;
                        build.accum(&labels).sum = Some(sum);
                    }
                    "_count" => {
                        let count = value_text
                            .parse::<u64>()
                            .map_err(|_| ParseError::BadValue { line: line.into() })?;
                        build.accum(&labels).count = Some(count);
                    }
                    _ => return Err(ParseError::Malformed { line: line.into() }),
                }
            }
            _ => return Err(ParseError::Malformed { line: line.into() }),
        }
    }

    let mut families = Vec::with_capacity(order.len());
    for name in order {
        let (kind, help) = declared.remove(&name).expect("declared");
        match kind {
            MetricKind::Counter => families.push(MetricFamily::Counter {
                name: name.clone(),
                help,
                points: counters.remove(&name).unwrap_or_default(),
            }),
            MetricKind::Gauge => families.push(MetricFamily::Gauge {
                name: name.clone(),
                help,
                points: gauges.remove(&name).unwrap_or_default(),
            }),
            MetricKind::Histogram => {
                let build = hists.remove(&name).unwrap_or_default();
                let mut points = Vec::with_capacity(build.order.len());
                for key in build.order {
                    let accum = &build.points[&key];
                    let (count, sum) = match (accum.count, accum.sum) {
                        (Some(c), Some(s)) => (c, s),
                        _ => return Err(ParseError::BadHistogram { name: name.clone() }),
                    };
                    if accum.inf.is_some_and(|inf| inf != count) {
                        return Err(ParseError::BadHistogram { name: name.clone() });
                    }
                    points.push(HistogramPoint {
                        labels: accum.labels.clone(),
                        buckets: accum.buckets.clone(),
                        sum,
                        count,
                    });
                }
                families.push(MetricFamily::Histogram { name, help, points });
            }
        }
    }
    Ok(families)
}

impl HistogramBuild {
    fn accum(&mut self, labels: &[(String, String)]) -> &mut HistogramAccum {
        let key = labels_block(labels);
        if !self.points.contains_key(&key) {
            self.order.push(key.clone());
            self.points.insert(
                key.clone(),
                HistogramAccum { labels: labels.to_vec(), ..HistogramAccum::default() },
            );
        }
        self.points.get_mut(&key).expect("just inserted")
    }
}

/// Maps a sample line-name to its declared family, peeling histogram
/// suffixes. Plain counter/gauge names win over suffix interpretation, so
/// a counter literally named `x_count` still resolves to itself.
fn resolve_family(
    name: &str,
    declared: &BTreeMap<String, (MetricKind, String)>,
) -> (Option<String>, &'static str) {
    if declared.contains_key(name) {
        return (Some(name.to_string()), "");
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if declared.get(base).is_some_and(|(k, _)| *k == MetricKind::Histogram) {
                return (Some(base.to_string()), suffix);
            }
        }
    }
    (None, "")
}

fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_families() -> Vec<MetricFamily> {
        vec![
            MetricFamily::counter("fairgen_requests_total", "Total generation requests.", 42),
            MetricFamily::Counter {
                name: "fairgen_dedup_hits_total".into(),
                help: "Dedup cache hits per shard.".into(),
                points: vec![
                    CounterPoint { labels: vec![("shard".into(), "0".into())], value: 7 },
                    CounterPoint { labels: vec![("shard".into(), "1".into())], value: 9 },
                ],
            },
            MetricFamily::gauge("fairgen_queue_depth", "Jobs queued right now.", 3.0),
            MetricFamily::Gauge {
                name: "fairgen_store_bytes".into(),
                help: "Bytes on disk \\ \"quoted\"\nsecond line.".into(),
                points: vec![GaugePoint { labels: Vec::new(), value: 1536.5 }],
            },
            MetricFamily::Histogram {
                name: "fairgen_stage_latency_seconds".into(),
                help: "Per-stage serving latency.".into(),
                points: vec![HistogramPoint {
                    labels: vec![("stage".into(), "queue_wait".into())],
                    buckets: vec![(0.001, 2), (0.01, 5), (0.1, 5)],
                    sum: 0.0625,
                    count: 6,
                }],
            },
        ]
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let families = sample_families();
        let text = render(&families);
        let back = parse(&text).expect("parse rendered text");
        assert_eq!(back, families);
    }

    #[test]
    fn double_round_trip_is_stable() {
        let families = sample_families();
        let text = render(&families);
        let text2 = render(&parse(&text).expect("parse"));
        assert_eq!(text, text2, "render∘parse must be idempotent on rendered text");
    }

    #[test]
    fn renderer_emits_spec_shapes() {
        let text = render(&sample_families());
        assert!(text.contains("# TYPE fairgen_requests_total counter"));
        assert!(text.contains("fairgen_requests_total 42"));
        assert!(text.contains("fairgen_dedup_hits_total{shard=\"0\"} 7"));
        assert!(text.contains(
            "fairgen_stage_latency_seconds_bucket{stage=\"queue_wait\",le=\"0.001\"} 2"
        ));
        assert!(text.contains(
            "fairgen_stage_latency_seconds_bucket{stage=\"queue_wait\",le=\"+Inf\"} 6"
        ));
        assert!(text.contains("fairgen_stage_latency_seconds_sum{stage=\"queue_wait\"} 0.0625"));
        assert!(text.contains("fairgen_stage_latency_seconds_count{stage=\"queue_wait\"} 6"));
        // Help escaping: backslash doubled, newline as \n.
        assert!(text.contains(
            "# HELP fairgen_store_bytes Bytes on disk \\\\ \"quoted\"\\nsecond line."
        ));
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let families = vec![MetricFamily::Counter {
            name: "weird".into(),
            help: "h".into(),
            points: vec![CounterPoint {
                labels: vec![("tenant".into(), "a\"b\\c\nd".into())],
                value: 1,
            }],
        }];
        let text = render(&families);
        assert!(text.contains(r#"weird{tenant="a\"b\\c\nd"} 1"#));
        assert_eq!(parse(&text).expect("parse"), families);
    }

    #[test]
    fn inf_bucket_must_match_count() {
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 2\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1.0\n\
                   h_count 6\n";
        assert_eq!(parse(bad), Err(ParseError::BadHistogram { name: "h".into() }));
    }

    #[test]
    fn undeclared_sample_is_an_error() {
        assert_eq!(
            parse("mystery_metric 1\n"),
            Err(ParseError::Undeclared { name: "mystery_metric".into() })
        );
    }

    #[test]
    fn counter_named_like_histogram_suffix_resolves_to_itself() {
        let families = vec![MetricFamily::counter("jobs_count", "Not a histogram.", 3)];
        let text = render(&families);
        assert_eq!(parse(&text).expect("parse"), families);
    }

    #[test]
    fn gauge_values_round_trip_including_non_finite() {
        let families = vec![MetricFamily::Gauge {
            name: "g".into(),
            help: "h".into(),
            points: vec![
                GaugePoint { labels: Vec::new(), value: 0.1 + 0.2 }, // 0.30000000000000004
                GaugePoint { labels: vec![("k".into(), "inf".into())], value: f64::INFINITY },
            ],
        }];
        let back = parse(&render(&families)).expect("parse");
        assert_eq!(back, families);
    }
}
