//! Umbrella crate hosting the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). It re-exports the public
//! crates so downstream users can depend on one crate:
//!
//! ```
//! use fairgen_suite::prelude::*;
//! let lg = Dataset::Blog.generate(1);
//! assert_eq!(lg.num_classes, 6);
//! ```

pub use fairgen_baselines as baselines;
pub use fairgen_core as core;
pub use fairgen_data as data;
pub use fairgen_embed as embed;
pub use fairgen_graph as graph;
pub use fairgen_metrics as metrics;
pub use fairgen_nn as nn;
pub use fairgen_walks as walks;

/// Commonly used items in one import.
pub mod prelude {
    pub use fairgen_baselines::{
        BaGenerator, ErGenerator, FittedGenerator, GaeGenerator, GraphGenerator,
        NetGanGenerator, TagGenGenerator, TaskSpec, WalkLmBudget,
    };
    pub use fairgen_core::{
        CycleReport, FairGen, FairGenConfig, FairGenError, FairGenGenerator, FairGenVariant,
        NullObserver, Result, TrainObserver, TrainedFairGen,
    };
    pub use fairgen_data::{toy_two_community, Dataset, LabeledGraph};
    pub use fairgen_embed::{augment_graph, LogisticRegression, Node2Vec, Node2VecConfig};
    pub use fairgen_graph::{Graph, GraphBuilder, NodeId, NodeSet};
    pub use fairgen_metrics::{
        all_metrics, overall_discrepancies, protected_discrepancies, DiscrepancyReport, Metric,
    };
    pub use fairgen_walks::{
        ContextSampler, ContextSamplerConfig, Node2VecWalker, ScoreMatrix,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(Metric::ALL.len(), 9);
    }
}
