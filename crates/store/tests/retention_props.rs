//! Property tests for [`RetentionPolicy`] enforcement: under random
//! publish/touch interleavings the store must never exceed its byte
//! budget, never hold more generations per fingerprint than the cap, and
//! prune in exactly the documented order — newest-spared LRU by
//! `(fingerprint last_used, fingerprint, generation)`. A reference model
//! implements the policy *as documented on the type* and the retained
//! sets must match after every operation.

use std::collections::BTreeMap;

use fairgen_graph::{FingerprintBuilder, GraphFingerprint};
use fairgen_store::{ModelStore, RetentionPolicy};
use proptest::prelude::*;

static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn temp_dir(name: &str) -> std::path::PathBuf {
    let unique = CASE.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let dir = std::env::temp_dir()
        .join("fairgen-store-props")
        .join(format!("{name}-{}-{unique}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fp(tag: u64) -> GraphFingerprint {
    FingerprintBuilder::new().add_u64(tag).finish()
}

/// Reference implementation of the documented retention policy.
struct RetentionModel {
    policy: RetentionPolicy,
    clock: u64,
    /// fp -> (last_used, generation -> bytes)
    fps: BTreeMap<GraphFingerprint, (u64, BTreeMap<u64, u64>)>,
}

impl RetentionModel {
    fn new(policy: RetentionPolicy) -> Self {
        RetentionModel { policy, clock: 0, fps: BTreeMap::new() }
    }

    fn publish(&mut self, f: GraphFingerprint, bytes: u64) -> u64 {
        let generation =
            self.fps.get(&f).and_then(|(_, g)| g.keys().last().copied()).unwrap_or(0) + 1;
        self.clock += 1;
        let entry = self.fps.entry(f).or_insert((0, BTreeMap::new()));
        entry.0 = self.clock;
        entry.1.insert(generation, bytes);

        // Step 1: per-fingerprint cap, oldest first.
        let cap = self.policy.effective_generations();
        for (_, gens) in self.fps.values_mut() {
            while gens.len() > cap {
                let oldest = *gens.keys().next().expect("non-empty");
                gens.remove(&oldest);
            }
        }
        // Step 2: byte budget, ascending (last_used, fp, gen), sparing the
        // just-published file until it is the only candidate.
        if let Some(budget) = self.policy.max_total_bytes {
            loop {
                let total: u64 = self.fps.values().flat_map(|(_, g)| g.values()).copied().sum();
                if total <= budget {
                    break;
                }
                let victim = self
                    .fps
                    .iter()
                    .flat_map(|(&vf, (used, gens))| gens.keys().map(move |&g| (*used, vf, g)))
                    .filter(|&(_, vf, g)| (vf, g) != (f, generation))
                    .min()
                    .map(|(_, vf, g)| (vf, g))
                    .unwrap_or((f, generation));
                let gens = &mut self.fps.get_mut(&victim.0).expect("victim fp").1;
                gens.remove(&victim.1);
                if gens.is_empty() {
                    self.fps.remove(&victim.0);
                }
            }
        }
        generation
    }

    fn touch(&mut self, f: GraphFingerprint) {
        if let Some(entry) = self.fps.get_mut(&f) {
            self.clock += 1;
            entry.0 = self.clock;
        }
    }

    fn retained(&self, f: GraphFingerprint) -> Vec<u64> {
        self.fps.get(&f).map(|(_, g)| g.keys().copied().collect()).unwrap_or_default()
    }

    fn total_bytes(&self) -> u64 {
        self.fps.values().flat_map(|(_, g)| g.values()).copied().sum()
    }
}

const TAGS: u64 = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn budget_and_prune_order_match_the_documented_policy(
        ops in proptest::collection::vec((0u8..3, 0..TAGS, 1u64..1500), 1..40),
        max_generations in 1usize..4,
        budget_kb in 1u64..8,
    ) {
        let policy = RetentionPolicy {
            max_generations,
            max_total_bytes: Some(budget_kb * 1024),
        };
        let dir = temp_dir("retention");
        let store = ModelStore::open(&dir, policy).expect("open");
        let mut model = RetentionModel::new(policy);

        for &(kind, tag, size) in &ops {
            let f = fp(tag);
            if kind == 2 && model.fps.contains_key(&f) {
                store.touch(f);
                model.touch(f);
            } else {
                let payload = vec![tag as u8; size as usize];
                let got = store.publish(f, &payload).expect("publish");
                let want = model.publish(f, payload.len() as u64);
                prop_assert_eq!(got, want, "generation counters diverged");
            }

            // Invariant 1: never over the byte budget, strictly.
            let stats = store.stats();
            prop_assert!(
                stats.total_bytes <= budget_kb * 1024,
                "store over budget: {} > {}", stats.total_bytes, budget_kb * 1024
            );
            prop_assert_eq!(stats.total_bytes, model.total_bytes());

            // Invariant 2: per-fingerprint cap + exact retained-set match
            // (which pins the victim *order*, not just the count).
            for probe in 0..TAGS {
                let pf = fp(probe);
                let got = store.retained_generations(pf);
                prop_assert!(got.len() <= max_generations);
                prop_assert_eq!(
                    got, model.retained(pf),
                    "retained sets diverged for tag {}", probe
                );
            }
        }

        // On-disk reality matches the index: a fresh open adopts nothing
        // and sees the same retained sets (pruned files are really gone).
        drop(store);
        let successor = ModelStore::open(&dir, policy).expect("reopen");
        prop_assert_eq!(successor.stats().adopted, 0);
        for probe in 0..TAGS {
            let pf = fp(probe);
            prop_assert_eq!(successor.retained_generations(pf), model.retained(pf));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
