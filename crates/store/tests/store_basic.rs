//! Lifecycle tests for [`ModelStore`]: generations, manifest recovery,
//! legacy adoption, quarantine semantics, and the restart/crash drill —
//! a kill mid-spill must leave nothing a warm-start can trip over.

use fairgen_baselines::persist::{fitted_to_bytes, PersistableGraphGenerator};
use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::codec;
use fairgen_graph::{FairGenError, FingerprintBuilder, Graph, GraphFingerprint};
use fairgen_store::{checkpoint_file_name, ModelStore, RetentionPolicy, MANIFEST_FILE};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fairgen-store-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

fn fp(tag: u64) -> GraphFingerprint {
    FingerprintBuilder::new().add_u64(tag).finish()
}

/// Checkpoint bytes of a cheap fitted model (ER on a small ring).
fn model_bytes(n: u32, seed: u64) -> Vec<u8> {
    let model =
        ErGenerator.fit_persistable(&ring(n), &TaskSpec::unlabeled(), seed).expect("er fit");
    fitted_to_bytes(model.as_ref())
}

#[test]
fn publish_load_roundtrip_and_generations() {
    let dir = temp_dir("roundtrip");
    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
    let f = fp(1);
    assert!(!store.contains(f));
    assert!(store.load_latest(f).expect("load").is_none());

    let bytes1 = model_bytes(8, 1);
    assert_eq!(store.publish(f, &bytes1).expect("publish"), 1);
    let bytes2 = model_bytes(9, 2);
    assert_eq!(store.publish(f, &bytes2).expect("publish"), 2);

    assert_eq!(store.latest_generation(f), Some(2));
    assert_eq!(store.retained_generations(f), vec![1, 2]);
    let loaded = store.load_latest(f).expect("load").expect("present");
    assert_eq!(loaded.generation, 2);
    // Generation 2 was fitted on a 9-ring; drawing from it must give n=9.
    let mut model = loaded.model;
    assert_eq!(model.generate(0).expect("draw").n(), 9);

    let stats = store.stats();
    assert_eq!(stats.published, 2);
    assert_eq!(stats.loads, 1);
    assert_eq!(stats.generations, 2);
    assert_eq!(stats.fingerprints, 1);
    assert_eq!(stats.total_bytes, (bytes1.len() + bytes2.len()) as u64);
}

#[test]
fn reopen_restores_state_from_manifest() {
    let dir = temp_dir("reopen");
    let f = fp(2);
    {
        let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
        store.publish(f, &model_bytes(10, 3)).expect("publish");
        store.publish(f, &model_bytes(11, 4)).expect("publish");
    }
    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("reopen");
    assert_eq!(store.retained_generations(f), vec![1, 2]);
    assert_eq!(store.stats().adopted, 0, "manifest should index everything");
    let loaded = store.load_latest(f).expect("load").expect("present");
    assert_eq!(loaded.generation, 2);
}

#[test]
fn missing_manifest_rebuilds_from_scan() {
    let dir = temp_dir("rebuild");
    let f = fp(3);
    {
        let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
        store.publish(f, &model_bytes(8, 5)).expect("publish");
        store.publish(f, &model_bytes(8, 6)).expect("publish");
    }
    std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop manifest");
    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("reopen");
    assert_eq!(store.retained_generations(f), vec![1, 2]);
    assert_eq!(store.stats().adopted, 2);
    assert!(store.load_latest(f).expect("load").is_some());
}

#[test]
fn corrupt_manifest_is_quarantined_not_fatal() {
    let dir = temp_dir("bad-manifest");
    let f = fp(4);
    {
        let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
        store.publish(f, &model_bytes(8, 7)).expect("publish");
    }
    // Flip a byte in the manifest.
    let path = dir.join(MANIFEST_FILE);
    let mut bytes = std::fs::read(&path).expect("read manifest");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).expect("rewrite");

    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("reopen");
    assert_eq!(store.stats().corrupt_quarantined, 1);
    assert!(store.quarantined_files().expect("ls").iter().any(|n| n.starts_with("manifest")));
    // The checkpoint itself was re-adopted from the scan.
    assert_eq!(store.retained_generations(f), vec![1]);
    assert!(store.load_latest(f).expect("load").is_some());
}

#[test]
fn legacy_flat_checkpoints_adopt_as_generation_one() {
    let dir = temp_dir("legacy");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let f = fp(5);
    let legacy_path = dir.join(format!("fg-{}.ckpt", f.to_hex()));
    codec::write_file(&legacy_path, &model_bytes(12, 8)).expect("legacy write");

    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
    assert!(!legacy_path.exists(), "flat file should be renamed");
    assert_eq!(store.retained_generations(f), vec![1]);
    assert_eq!(store.stats().adopted, 1);
    let loaded = store.load_latest(f).expect("load").expect("present");
    assert_eq!(loaded.generation, 1);
}

#[test]
fn corrupt_generation_falls_back_to_older_intact_one() {
    let dir = temp_dir("fallback");
    let f = fp(6);
    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
    store.publish(f, &model_bytes(8, 9)).expect("publish g1");
    store.publish(f, &model_bytes(9, 10)).expect("publish g2");

    // Corrupt generation 2 in place.
    let g2 = dir.join(checkpoint_file_name(f, 2));
    let mut bytes = std::fs::read(&g2).expect("read g2");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&g2, &bytes).expect("rewrite");

    let loaded = store.load_latest(f).expect("load").expect("g1 intact");
    assert_eq!(loaded.generation, 1);
    let stats = store.stats();
    assert_eq!(stats.corrupt_quarantined, 1);
    assert!(!g2.exists(), "corrupt file must leave the store dir");
    let quarantined = store.quarantined_files().expect("ls");
    assert!(
        quarantined.contains(&checkpoint_file_name(f, 2)),
        "corrupt file must be moved, not deleted: {quarantined:?}"
    );
    // Strict load of the quarantined generation now reports absence.
    assert!(store.load_generation(f, 2).expect("strict").is_none());
}

#[test]
fn strict_load_surfaces_typed_corruption() {
    let dir = temp_dir("strict");
    let f = fp(7);
    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
    store.publish(f, &model_bytes(8, 11)).expect("publish");
    let g1 = dir.join(checkpoint_file_name(f, 1));
    let mut bytes = std::fs::read(&g1).expect("read");
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&g1, &bytes).expect("rewrite");

    match store.load_generation(f, 1) {
        Err(FairGenError::CorruptCheckpoint { .. }) => {}
        Err(other) => panic!("expected CorruptCheckpoint, got {other:?}"),
        Ok(model) => panic!("expected CorruptCheckpoint, got Ok(present={})", model.is_some()),
    }
    assert_eq!(store.stats().corrupt_quarantined, 1);
    assert!(store.quarantined_files().expect("ls").contains(&checkpoint_file_name(f, 1)));
}

/// The restart/crash drill at the store layer: a process killed mid-spill
/// leaves (a) a stray `.tmp` from the interrupted atomic write and (b) a
/// final-name file from an unluckier torn write. A successor must sweep
/// the former, quarantine the latter, and warm-start from the newest
/// intact generation.
#[test]
fn crash_drill_swept_tmp_and_quarantined_torn_file() {
    let dir = temp_dir("crash-drill");
    let f = fp(8);
    {
        let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
        store.publish(f, &model_bytes(10, 12)).expect("publish g1");
        store.publish(f, &model_bytes(11, 13)).expect("publish g2");
    }
    // Simulate the kill: a half-written tmp for generation 3…
    let g3 = dir.join(checkpoint_file_name(f, 3));
    let tmp = codec::tmp_path(&g3);
    std::fs::write(&tmp, b"partial garbage from a dying process").expect("tmp debris");
    // …and a torn final file for generation 2 (e.g. media corruption).
    let g2 = dir.join(checkpoint_file_name(f, 2));
    let mut torn = std::fs::read(&g2).expect("read g2");
    torn.truncate(torn.len() - 7);
    std::fs::write(&g2, &torn).expect("tear g2");

    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("successor open");
    assert_eq!(store.stats().tmp_swept, 1);
    assert!(!tmp.exists(), "tmp debris must be cleared at open");

    // Warm start: newest intact generation wins; the torn g2 is
    // quarantined (moved, never deleted), g1 serves.
    let loaded = store.load_latest(f).expect("load").expect("g1 intact");
    assert_eq!(loaded.generation, 1);
    let mut model = loaded.model;
    assert_eq!(model.generate(0).expect("draw").n(), 10);
    assert!(store.quarantined_files().expect("ls").contains(&checkpoint_file_name(f, 2)));
    assert!(!g2.exists());

    // And the post-recovery manifest is consistent: a third open sees
    // exactly one generation, no adoptions, no further quarantines.
    drop(store);
    let third = ModelStore::open(&dir, RetentionPolicy::default()).expect("third open");
    assert_eq!(third.retained_generations(f), vec![1]);
    assert_eq!(third.stats().adopted, 0);
    assert_eq!(third.stats().corrupt_quarantined, 0);
}

#[test]
fn quarantine_name_collisions_get_suffixes() {
    let dir = temp_dir("collide");
    let f = fp(9);
    let store = ModelStore::open(&dir, RetentionPolicy::unlimited()).expect("open");
    // Publish, corrupt, quarantine — twice for the same generation number
    // (the second publish re-uses generation numbers only after the first
    // was quarantined, so craft it manually).
    for round in 0..2u8 {
        store.publish(f, &model_bytes(8, 20 + round as u64)).expect("publish");
        let generation = store.latest_generation(f).expect("gen");
        let path = dir.join(checkpoint_file_name(f, generation));
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(store.load_latest(f).expect("load").is_none());
    }
    let names = store.quarantined_files().expect("ls");
    assert_eq!(names.len(), 2, "both corrupt files kept: {names:?}");
}

#[test]
fn publish_is_atomic_under_the_final_name() {
    // Nothing with the final checkpoint name may exist until the bytes are
    // complete: write_file stages in .tmp. We can't kill a thread
    // mid-write portably, but we can assert the invariant write_file
    // guarantees: after an error-free publish there is no .tmp, and a
    // pre-planted .tmp under the same name is replaced, not read.
    let dir = temp_dir("atomic");
    let f = fp(10);
    let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
    let final_path = dir.join(checkpoint_file_name(f, 1));
    std::fs::write(codec::tmp_path(&final_path), b"stale debris").expect("debris");
    store.publish(f, &model_bytes(8, 30)).expect("publish");
    assert!(!codec::tmp_path(&final_path).exists());
    assert!(store.load_latest(f).expect("load").is_some());
}
