//! Property tests for corruption handling: truncating or bit-flipping a
//! published checkpoint at a *random offset* must always yield the typed
//! [`CorruptCheckpoint`] on strict load, move the file to quarantine
//! (never delete it), and leave the manifest consistent — the lenient
//! path reports "nothing intact" so a registry can fall back to a fresh
//! fit.

use std::sync::OnceLock;

use fairgen_baselines::persist::{fitted_to_bytes, PersistableGraphGenerator};
use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::{FairGenError, FingerprintBuilder, Graph, GraphFingerprint};
use fairgen_store::{checkpoint_file_name, ModelStore, RetentionPolicy};
use proptest::prelude::*;

static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn temp_dir(name: &str) -> std::path::PathBuf {
    let unique = CASE.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let dir = std::env::temp_dir()
        .join("fairgen-store-props")
        .join(format!("{name}-{}-{unique}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One fitted-model checkpoint, built once (fit is deterministic, the
/// bytes are shared across cases read-only).
fn pristine_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let n = 24u32;
        let g = Graph::from_edges(
            n as usize,
            &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>(),
        );
        let model = ErGenerator.fit_persistable(&g, &TaskSpec::unlabeled(), 7).expect("er fit");
        fitted_to_bytes(model.as_ref())
    })
}

fn fp(tag: u64) -> GraphFingerprint {
    FingerprintBuilder::new().add_u64(tag).finish()
}

/// Corrupts `bytes` per the scripted mutation. `flip == None` truncates
/// at the offset instead.
fn mutate(bytes: &[u8], offset: usize, flip: Option<u8>) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let offset = offset % out.len();
    match flip {
        Some(bit) => out[offset] ^= 1 << (bit % 8),
        None => out.truncate(offset),
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_corruption_is_typed_quarantined_and_recoverable(
        offset in 0usize..4096,
        bit in 0u8..9, // 0..8 = flip that bit, 8 = truncate
    ) {
        let dir = temp_dir("corrupt");
        let f = fp(1);
        let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
        let pristine = pristine_bytes();
        store.publish(f, pristine).expect("publish");

        let corrupted = mutate(pristine, offset, (bit < 8).then_some(bit));
        prop_assume!(corrupted != pristine); // truncate at len is a no-op
        let path = dir.join(checkpoint_file_name(f, 1));
        std::fs::write(&path, &corrupted).expect("corrupt in place");

        // Strict load: typed error, file moved to quarantine.
        match store.load_generation(f, 1) {
            Err(FairGenError::CorruptCheckpoint { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "expected CorruptCheckpoint, got {other:?}"
                )));
            }
            Ok(model) => {
                return Err(TestCaseError::Fail(format!(
                    "corrupt bytes decoded (present={})", model.is_some()
                )));
            }
        }
        prop_assert!(!path.exists(), "corrupt file still in the store dir");
        let quarantined = store.quarantined_files().expect("ls quarantine");
        prop_assert!(
            quarantined.contains(&checkpoint_file_name(f, 1)),
            "file was deleted instead of quarantined: {quarantined:?}"
        );
        let stats = store.stats();
        prop_assert_eq!(stats.corrupt_quarantined, 1);
        prop_assert_eq!(stats.generations, 0, "manifest still lists the quarantined file");

        // Lenient load now reports nothing intact — the registry's cue to
        // fall back to a fresh fit.
        prop_assert!(store.load_latest(f).expect("lenient").is_none());

        // And a successor process agrees: no resurrection, no double
        // quarantine, manifest consistent.
        drop(store);
        let successor = ModelStore::open(&dir, RetentionPolicy::default()).expect("reopen");
        prop_assert!(successor.load_latest(f).expect("lenient").is_none());
        prop_assert_eq!(successor.stats().generations, 0);
        prop_assert_eq!(successor.stats().corrupt_quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_of_newest_falls_back_without_losing_the_file(
        offset in 0usize..4096,
        bit in 0u8..9,
    ) {
        let dir = temp_dir("fallback");
        let f = fp(2);
        let store = ModelStore::open(&dir, RetentionPolicy::default()).expect("open");
        let pristine = pristine_bytes();
        store.publish(f, pristine).expect("publish g1");
        store.publish(f, pristine).expect("publish g2");

        let corrupted = mutate(pristine, offset, (bit < 8).then_some(bit));
        prop_assume!(corrupted != pristine);
        std::fs::write(dir.join(checkpoint_file_name(f, 2)), &corrupted).expect("corrupt g2");

        // Lenient load quarantines g2 and serves g1.
        let loaded = store.load_latest(f).expect("load").expect("g1 intact");
        prop_assert_eq!(loaded.generation, 1);
        prop_assert!(store
            .quarantined_files()
            .expect("ls")
            .contains(&checkpoint_file_name(f, 2)));
        prop_assert_eq!(store.stats().corrupt_quarantined, 1);
        prop_assert_eq!(store.retained_generations(f), vec![1]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
