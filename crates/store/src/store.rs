//! The managed model store: generation-counted checkpoints behind one
//! versioned manifest.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use fairgen_baselines::persist::PersistableGenerator;
use fairgen_core::checkpoint;
use fairgen_graph::codec;
use fairgen_graph::{FairGenError, GraphFingerprint, Result};

use crate::manifest::{
    checkpoint_file_name, parse_checkpoint_file_name, parse_legacy_file_name, Manifest,
    ManifestEntry, MANIFEST_FILE,
};
use crate::retention::RetentionPolicy;

/// Name of the quarantine subdirectory inside a store directory.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Counters and gauges the store publishes through the serving stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Generations published (checkpoint files written).
    pub published: u64,
    /// Models successfully decoded from disk.
    pub loads: u64,
    /// Files that failed checksum/decode and were moved to quarantine —
    /// never silently deleted.
    pub corrupt_quarantined: u64,
    /// Generations deleted by retention (generation cap or byte budget).
    pub pruned_files: u64,
    /// Bytes reclaimed by retention.
    pub pruned_bytes: u64,
    /// Stray `.tmp` files (crashed atomic writes) cleared at open.
    pub tmp_swept: u64,
    /// Files adopted from a directory scan rather than the manifest
    /// (legacy flat checkpoints, or a lost/corrupt manifest).
    pub adopted: u64,
    /// Current retained bytes across all generations (gauge).
    pub total_bytes: u64,
    /// Distinct fingerprints with at least one retained generation (gauge).
    pub fingerprints: u64,
    /// Retained generation files (gauge).
    pub generations: u64,
}

/// One retained generation's bookkeeping.
#[derive(Clone, Copy, Debug)]
struct GenRecord {
    bytes: u64,
    published_at: u64,
}

/// Per-fingerprint state: retained generations plus the LRU stamp.
#[derive(Clone, Debug, Default)]
struct FpState {
    gens: BTreeMap<u64, GenRecord>,
    last_used: u64,
}

struct StoreInner {
    dir: PathBuf,
    quarantine: PathBuf,
    policy: RetentionPolicy,
    clock: u64,
    fps: BTreeMap<GraphFingerprint, FpState>,
    /// In-memory state (LRU stamps) newer than the persisted manifest.
    manifest_dirty: bool,
    published: u64,
    loads: u64,
    corrupt_quarantined: u64,
    pruned_files: u64,
    pruned_bytes: u64,
    tmp_swept: u64,
    adopted: u64,
}

/// A successfully loaded checkpoint: the model plus the generation it
/// came from.
pub struct LoadedModel {
    /// Which generation satisfied the load (newest intact).
    pub generation: u64,
    /// The decoded, ready-to-serve model.
    pub model: Box<dyn PersistableGenerator>,
}

/// The managed checkpoint store. Cheap to clone — all clones share one
/// directory, manifest, and stats, so every shard registry of a server
/// can hold the same store.
///
/// Layout of a store directory:
///
/// ```text
/// <dir>/manifest.fgm            versioned index (FGCK container)
/// <dir>/fg-<fp>.g<N>.ckpt       generation-counted checkpoints
/// <dir>/quarantine/             corrupt files, moved — never deleted
/// ```
///
/// All checkpoint and manifest writes go through the atomic
/// tmp + fsync + rename of [`fairgen_graph::codec::write_file`]; a crash
/// mid-publish leaves at worst a stray `*.tmp` that the next
/// [`ModelStore::open`] sweeps.
#[derive(Clone)]
pub struct ModelStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl std::fmt::Debug for ModelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("ModelStore")
            .field("dir", &inner.dir)
            .field("fingerprints", &inner.fps.len())
            .field("clock", &inner.clock)
            .finish()
    }
}

impl ModelStore {
    /// Opens (or initialises) the store rooted at `dir`.
    ///
    /// Recovery sequence, in order:
    ///
    /// 1. create `dir` and `dir/quarantine`;
    /// 2. delete stray `*.tmp` files — the only debris an interrupted
    ///    atomic write can leave, and invisible to every reader;
    /// 3. read `manifest.fgm`; if it fails to decode, move **it** to
    ///    quarantine and fall back to a directory scan;
    /// 4. reconcile manifest against disk: entries whose file vanished are
    ///    dropped, files the manifest missed are adopted, and legacy flat
    ///    `fg-<fp>.ckpt` files are renamed to generation 1.
    ///
    /// Corrupt *checkpoints* are not probed here — decode happens lazily
    /// on load, where failures quarantine the file and fall back to the
    /// next older generation.
    pub fn open(dir: impl AsRef<Path>, policy: RetentionPolicy) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let quarantine = dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&dir)?;
        std::fs::create_dir_all(&quarantine)?;

        let mut inner = StoreInner {
            dir,
            quarantine,
            policy,
            clock: 0,
            fps: BTreeMap::new(),
            manifest_dirty: false,
            published: 0,
            loads: 0,
            corrupt_quarantined: 0,
            pruned_files: 0,
            pruned_bytes: 0,
            tmp_swept: 0,
            adopted: 0,
        };
        inner.sweep_tmp()?;
        inner.load_or_rebuild_manifest()?;
        inner.reconcile_with_disk()?;
        if inner.manifest_dirty {
            inner.persist_manifest()?;
        }
        Ok(ModelStore { inner: Arc::new(Mutex::new(inner)) })
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// The store's root directory.
    pub fn dir(&self) -> PathBuf {
        self.lock().dir.clone()
    }

    /// The quarantine directory.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.lock().quarantine.clone()
    }

    /// The retention policy in force.
    pub fn policy(&self) -> RetentionPolicy {
        self.lock().policy
    }

    /// Publishes checkpoint `bytes` as the next generation of `fp` and
    /// returns the generation number. The write is atomic; retention is
    /// enforced and the manifest persisted before returning.
    pub fn publish(&self, fp: GraphFingerprint, bytes: &[u8]) -> Result<u64> {
        let mut inner = self.lock();
        let generation =
            inner.fps.get(&fp).and_then(|s| s.gens.keys().last().copied()).unwrap_or(0) + 1;
        let path = inner.dir.join(checkpoint_file_name(fp, generation));
        codec::write_file(&path, bytes)?;
        inner.clock += 1;
        let clock = inner.clock;
        let state = inner.fps.entry(fp).or_default();
        state
            .gens
            .insert(generation, GenRecord { bytes: bytes.len() as u64, published_at: clock });
        state.last_used = clock;
        inner.published += 1;
        inner.enforce_retention(Some((fp, generation)));
        inner.persist_manifest()?;
        Ok(generation)
    }

    /// [`publish`](ModelStore::publish) for a fitted model: seals it with
    /// [`fairgen_core::checkpoint::to_bytes`] first.
    pub fn publish_model(
        &self,
        fp: GraphFingerprint,
        model: &dyn PersistableGenerator,
    ) -> Result<u64> {
        self.publish(fp, &checkpoint::to_bytes(model))
    }

    /// Loads the newest intact generation of `fp`.
    ///
    /// **Lenient**: a generation that fails checksum/decode is moved to
    /// quarantine (counted, never deleted) and the next older one is
    /// tried; a missing file drops the stale manifest entry. `Ok(None)`
    /// means no intact generation remains — callers fall back to a fresh
    /// fit. Only environmental I/O failures surface as errors.
    pub fn load_latest(&self, fp: GraphFingerprint) -> Result<Option<LoadedModel>> {
        let mut inner = self.lock();
        loop {
            let Some(generation) =
                inner.fps.get(&fp).and_then(|s| s.gens.keys().last().copied())
            else {
                return Ok(None);
            };
            match inner.try_load(fp, generation)? {
                Some(model) => {
                    inner.clock += 1;
                    let clock = inner.clock;
                    if let Some(state) = inner.fps.get_mut(&fp) {
                        state.last_used = clock;
                    }
                    inner.loads += 1;
                    inner.manifest_dirty = true;
                    return Ok(Some(LoadedModel { generation, model }));
                }
                None => {
                    // Entry was quarantined or dropped; persist the new
                    // truth before trying the older generation.
                    inner.persist_manifest()?;
                }
            }
        }
    }

    /// Loads one specific generation, **strictly**: a corrupt file is
    /// quarantined *and* the typed
    /// [`CorruptCheckpoint`](FairGenError::CorruptCheckpoint) (or
    /// `UnknownCheckpointTag`) error is returned instead of falling back.
    /// `Ok(None)` means the generation is not retained.
    pub fn load_generation(
        &self,
        fp: GraphFingerprint,
        generation: u64,
    ) -> Result<Option<Box<dyn PersistableGenerator>>> {
        let mut inner = self.lock();
        if !inner.fps.get(&fp).is_some_and(|s| s.gens.contains_key(&generation)) {
            return Ok(None);
        }
        let path = inner.dir.join(checkpoint_file_name(fp, generation));
        let bytes = match codec::read_file(&path) {
            Ok(bytes) => bytes,
            Err(FairGenError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                inner.drop_entry(fp, generation);
                inner.persist_manifest()?;
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        match checkpoint::from_bytes(&bytes) {
            Ok(model) => {
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(state) = inner.fps.get_mut(&fp) {
                    state.last_used = clock;
                }
                inner.loads += 1;
                inner.manifest_dirty = true;
                Ok(Some(model))
            }
            Err(
                e @ (FairGenError::CorruptCheckpoint { .. }
                | FairGenError::UnknownCheckpointTag { .. }),
            ) => {
                inner.quarantine_file(fp, generation)?;
                inner.persist_manifest()?;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Whether any generation of `fp` is retained.
    pub fn contains(&self, fp: GraphFingerprint) -> bool {
        self.lock().fps.get(&fp).is_some_and(|s| !s.gens.is_empty())
    }

    /// The newest retained generation of `fp`, if any.
    pub fn latest_generation(&self, fp: GraphFingerprint) -> Option<u64> {
        self.lock().fps.get(&fp).and_then(|s| s.gens.keys().last().copied())
    }

    /// All retained generations of `fp`, ascending.
    pub fn retained_generations(&self, fp: GraphFingerprint) -> Vec<u64> {
        self.lock().fps.get(&fp).map(|s| s.gens.keys().copied().collect()).unwrap_or_default()
    }

    /// Bumps `fp`'s LRU stamp without touching disk (persisted with the
    /// next manifest write or [`flush`](ModelStore::flush)).
    pub fn touch(&self, fp: GraphFingerprint) {
        let mut inner = self.lock();
        if inner.fps.contains_key(&fp) {
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(state) = inner.fps.get_mut(&fp) {
                state.last_used = clock;
            }
            inner.manifest_dirty = true;
        }
    }

    /// Persists the manifest if in-memory state (LRU stamps) is newer
    /// than the file.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.lock();
        if inner.manifest_dirty {
            inner.persist_manifest()?;
        }
        Ok(())
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        let mut total_bytes = 0u64;
        let mut generations = 0u64;
        let mut fingerprints = 0u64;
        for state in inner.fps.values() {
            if state.gens.is_empty() {
                continue;
            }
            fingerprints += 1;
            for rec in state.gens.values() {
                generations += 1;
                total_bytes += rec.bytes;
            }
        }
        StoreStats {
            published: inner.published,
            loads: inner.loads,
            corrupt_quarantined: inner.corrupt_quarantined,
            pruned_files: inner.pruned_files,
            pruned_bytes: inner.pruned_bytes,
            tmp_swept: inner.tmp_swept,
            adopted: inner.adopted,
            total_bytes,
            fingerprints,
            generations,
        }
    }

    /// File names currently sitting in quarantine, sorted.
    pub fn quarantined_files(&self) -> Result<Vec<String>> {
        let inner = self.lock();
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&inner.quarantine)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }
}

impl StoreInner {
    /// Deletes stray `*.tmp` files from an interrupted atomic write.
    fn sweep_tmp(&mut self) -> Result<()> {
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") && entry.file_type()?.is_file() {
                std::fs::remove_file(entry.path())?;
                self.tmp_swept += 1;
            }
        }
        Ok(())
    }

    /// Reads the manifest into `fps`; a corrupt manifest is quarantined
    /// and state rebuilt from the directory scan in
    /// [`reconcile_with_disk`](Self::reconcile_with_disk).
    fn load_or_rebuild_manifest(&mut self) -> Result<()> {
        let path = self.dir.join(MANIFEST_FILE);
        let bytes = match codec::read_file(&path) {
            Ok(bytes) => bytes,
            Err(FairGenError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                self.manifest_dirty = true; // nothing on disk yet
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match Manifest::from_bytes(&bytes) {
            Ok(manifest) => {
                self.clock = manifest.clock;
                for e in manifest.entries {
                    let state = self.fps.entry(e.fingerprint).or_default();
                    state.gens.insert(
                        e.generation,
                        GenRecord { bytes: e.bytes, published_at: e.published_at },
                    );
                    state.last_used = state.last_used.max(e.last_used);
                    self.clock = self.clock.max(e.published_at).max(e.last_used);
                }
                Ok(())
            }
            Err(FairGenError::CorruptCheckpoint { .. }) => {
                self.move_to_quarantine(&path)?;
                self.corrupt_quarantined += 1;
                self.manifest_dirty = true;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Drops manifest entries whose files vanished, adopts files the
    /// manifest missed, and upgrades legacy flat checkpoints to
    /// generation 1.
    fn reconcile_with_disk(&mut self) -> Result<()> {
        let mut on_disk: BTreeMap<(GraphFingerprint, u64), u64> = BTreeMap::new();
        let mut legacy: Vec<(GraphFingerprint, PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((fp, generation)) = parse_checkpoint_file_name(name) {
                on_disk.insert((fp, generation), entry.metadata()?.len());
            } else if let Some(fp) = parse_legacy_file_name(name) {
                legacy.push((fp, entry.path(), entry.metadata()?.len()));
            }
        }
        // Legacy flat files become generation 1, unless generation-counted
        // files for the same fingerprint already exist (then the newer
        // layout wins and the flat file is left untouched).
        for (fp, path, len) in legacy {
            let has_gen = on_disk.keys().any(|&(f, _)| f == fp)
                || self.fps.get(&fp).is_some_and(|s| !s.gens.is_empty());
            if has_gen {
                continue;
            }
            let dest = self.dir.join(checkpoint_file_name(fp, 1));
            std::fs::rename(&path, &dest)?;
            on_disk.insert((fp, 1), len);
        }

        // Manifest entries whose file vanished are stale — drop them.
        let stale: Vec<(GraphFingerprint, u64)> = self
            .fps
            .iter()
            .flat_map(|(&fp, state)| state.gens.keys().map(move |&g| (fp, g)))
            .filter(|key| !on_disk.contains_key(key))
            .collect();
        for (fp, generation) in stale {
            self.drop_entry(fp, generation);
            self.manifest_dirty = true;
        }

        // Files the manifest missed (lost manifest, foreign copies) are
        // adopted; sizes are refreshed from disk either way so retention
        // accounting matches reality.
        for (&(fp, generation), &len) in &on_disk {
            let state = self.fps.entry(fp).or_default();
            match state.gens.get_mut(&generation) {
                Some(rec) => rec.bytes = len,
                None => {
                    self.clock += 1;
                    state
                        .gens
                        .insert(generation, GenRecord { bytes: len, published_at: self.clock });
                    state.last_used = state.last_used.max(self.clock);
                    self.adopted += 1;
                    self.manifest_dirty = true;
                }
            }
        }
        Ok(())
    }

    /// Applies the retention policy (documented on [`RetentionPolicy`]),
    /// sparing `just_published` from the byte budget until it is the only
    /// candidate left.
    fn enforce_retention(&mut self, just_published: Option<(GraphFingerprint, u64)>) {
        // 1. Per-fingerprint generation cap, oldest first.
        let cap = self.policy.effective_generations();
        let over: Vec<(GraphFingerprint, u64)> = self
            .fps
            .iter()
            .flat_map(|(&fp, state)| {
                let excess = state.gens.len().saturating_sub(cap);
                state.gens.keys().take(excess).map(move |&g| (fp, g)).collect::<Vec<_>>()
            })
            .collect();
        for (fp, generation) in over {
            self.prune_entry(fp, generation);
        }

        // 2. Byte budget: strict, deterministic victim order.
        let Some(budget) = self.policy.max_total_bytes else { return };
        loop {
            let total: u64 =
                self.fps.values().flat_map(|s| s.gens.values()).map(|r| r.bytes).sum();
            if total <= budget {
                return;
            }
            let victim = self
                .fps
                .iter()
                .flat_map(|(&fp, state)| {
                    let last_used = state.last_used;
                    state.gens.keys().map(move |&g| (last_used, fp, g))
                })
                .filter(|&(_, fp, g)| just_published != Some((fp, g)))
                .min()
                .map(|(_, fp, g)| (fp, g))
                .or(just_published);
            match victim {
                Some((fp, generation)) => self.prune_entry(fp, generation),
                None => return, // nothing retained at all
            }
        }
    }

    /// Deletes one generation's file and forgets it (retention path —
    /// this is the only place the store deletes checkpoints).
    fn prune_entry(&mut self, fp: GraphFingerprint, generation: u64) {
        let path = self.dir.join(checkpoint_file_name(fp, generation));
        let _ = std::fs::remove_file(path); // already-gone is still pruned
        if let Some(bytes) = self.drop_entry(fp, generation) {
            self.pruned_files += 1;
            self.pruned_bytes += bytes;
        }
    }

    /// Removes a generation from the in-memory index, returning its
    /// recorded size.
    fn drop_entry(&mut self, fp: GraphFingerprint, generation: u64) -> Option<u64> {
        let state = self.fps.get_mut(&fp)?;
        let rec = state.gens.remove(&generation)?;
        if state.gens.is_empty() {
            self.fps.remove(&fp);
        }
        Some(rec.bytes)
    }

    /// Reads and decodes one generation. `Ok(None)` means the entry was
    /// consumed (file missing → dropped, corrupt → quarantined) and the
    /// caller should retry with the next candidate.
    fn try_load(
        &mut self,
        fp: GraphFingerprint,
        generation: u64,
    ) -> Result<Option<Box<dyn PersistableGenerator>>> {
        let path = self.dir.join(checkpoint_file_name(fp, generation));
        let bytes = match codec::read_file(&path) {
            Ok(bytes) => bytes,
            Err(FairGenError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                self.drop_entry(fp, generation);
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        match checkpoint::from_bytes(&bytes) {
            Ok(model) => Ok(Some(model)),
            Err(
                FairGenError::CorruptCheckpoint { .. }
                | FairGenError::UnknownCheckpointTag { .. },
            ) => {
                self.quarantine_file(fp, generation)?;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Moves one generation's file into quarantine and forgets it.
    fn quarantine_file(&mut self, fp: GraphFingerprint, generation: u64) -> Result<()> {
        let path = self.dir.join(checkpoint_file_name(fp, generation));
        self.move_to_quarantine(&path)?;
        self.drop_entry(fp, generation);
        self.corrupt_quarantined += 1;
        Ok(())
    }

    /// Renames `path` into the quarantine directory, suffixing `.1`,
    /// `.2`, … if the name is already taken there.
    fn move_to_quarantine(&self, path: &Path) -> Result<()> {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("unnamed").to_string();
        let mut dest = self.quarantine.join(&name);
        let mut suffix = 0u32;
        while dest.exists() {
            suffix += 1;
            dest = self.quarantine.join(format!("{name}.{suffix}"));
        }
        std::fs::rename(path, &dest)?;
        Ok(())
    }

    /// Writes the manifest atomically.
    fn persist_manifest(&mut self) -> Result<()> {
        let mut entries = Vec::new();
        for (&fp, state) in &self.fps {
            for (&generation, rec) in &state.gens {
                entries.push(ManifestEntry {
                    fingerprint: fp,
                    generation,
                    bytes: rec.bytes,
                    published_at: rec.published_at,
                    last_used: state.last_used,
                });
            }
        }
        let manifest = Manifest { clock: self.clock, entries };
        codec::write_file(self.dir.join(MANIFEST_FILE), &manifest.to_bytes())?;
        self.manifest_dirty = false;
        Ok(())
    }
}
