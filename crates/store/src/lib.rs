//! Managed model store for the FairGen serving stack.
//!
//! Before this crate, the serving registry wrote checkpoints straight
//! into a flat pile of `fg-<fp>.ckpt` files: no retention, no
//! crash-safety story beyond the codec checksum, and corrupt files were
//! simply load errors. [`ModelStore`] replaces that with a managed
//! directory:
//!
//! * **Generations** — every publish of a fingerprint gets a fresh
//!   generation-counted file `fg-<fp>.g<N>.ckpt`; the newest intact one
//!   wins at load time, older ones are rollback candidates until
//!   retention ages them out.
//! * **Versioned manifest** — `manifest.fgm` (an FGCK container like the
//!   checkpoints themselves) indexes every retained generation with
//!   sizes, publish clocks and LRU stamps; it is rebuilt from a
//!   directory scan when missing or corrupt, and legacy flat checkpoints
//!   are adopted as generation 1.
//! * **Atomic publish** — all writes stage in `<path>.tmp`, fsync, then
//!   rename; interrupted writes leave debris no reader ever sees, and
//!   [`ModelStore::open`] sweeps it.
//! * **Retention** — [`RetentionPolicy`] caps generations per
//!   fingerprint and total bytes, pruning in a deterministic
//!   LRU-by-manifest order (documented on the type, proptested in this
//!   crate's test suite).
//! * **Quarantine** — files that fail checksum/decode are *moved* to
//!   `quarantine/`, never deleted, surface as typed
//!   [`CorruptCheckpoint`](fairgen_graph::FairGenError::CorruptCheckpoint)
//!   where strictness is wanted, and are counted in [`StoreStats`].
//!
//! The serving registry (`fairgen-serve`) holds one store per server —
//! shared across all shard registries via [`ModelStore`]'s cheap
//! `Clone` — and spills/warm-starts through it instead of raw paths.

pub mod manifest;
pub mod retention;
pub mod store;

pub use manifest::{
    checkpoint_file_name, parse_checkpoint_file_name, Manifest, ManifestEntry, MANIFEST_FILE,
    MANIFEST_TAG,
};
pub use retention::RetentionPolicy;
pub use store::{LoadedModel, ModelStore, StoreStats, QUARANTINE_DIR};
