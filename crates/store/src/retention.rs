//! Retention knobs for the model store.

/// How many checkpoint generations the store keeps, and under what byte
/// budget.
///
/// Enforcement order (deterministic, proptested in
/// `tests/retention_props.rs`):
///
/// 1. **Per-fingerprint generation cap** — after each publish, only the
///    newest [`max_generations`](RetentionPolicy::max_generations)
///    generations of that fingerprint survive; older ones are pruned
///    oldest-first.
/// 2. **Byte budget** — while the summed size of all retained files
///    exceeds [`max_total_bytes`](RetentionPolicy::max_total_bytes),
///    victims are pruned in ascending `(fingerprint last_used,
///    fingerprint, generation)` order: the least-recently-used
///    fingerprint loses its oldest generation first, ties broken by the
///    fingerprint value so the order is reproducible. The file just
///    published is spared until it is the only one left — and if it alone
///    exceeds the budget it is pruned too, so `total_bytes ≤
///    max_total_bytes` holds **strictly** after every publish (callers
///    keep the model in memory; the store never lies about its budget).
///
/// Pruning deletes files; **quarantine never does** — corrupt files move
/// to the quarantine directory and leave retention accounting entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Newest generations kept per fingerprint. Minimum effective value
    /// is 1 (a publish always survives the generation cap).
    pub max_generations: usize,
    /// Total on-disk byte budget across all fingerprints; `None` means
    /// unbounded.
    pub max_total_bytes: Option<u64>,
}

impl Default for RetentionPolicy {
    /// Two generations per fingerprint (current + one rollback), no byte
    /// budget.
    fn default() -> Self {
        RetentionPolicy { max_generations: 2, max_total_bytes: None }
    }
}

impl RetentionPolicy {
    /// Keeps everything forever — the behaviour of the pre-store flat
    /// checkpoint directory.
    pub fn unlimited() -> Self {
        RetentionPolicy { max_generations: usize::MAX, max_total_bytes: None }
    }

    /// The generation cap, clamped to at least 1.
    pub fn effective_generations(&self) -> usize {
        self.max_generations.max(1)
    }
}
