//! The store's on-disk index: one [`Manifest`] file per checkpoint
//! directory.
//!
//! The manifest is itself an FGCK container (tag `FairGenManifest`,
//! written atomically via [`fairgen_graph::codec::write_file`]), so it
//! gets the same framing, versioning, and checksum protection as the
//! checkpoints it indexes. Payload layout, all little-endian:
//!
//! ```text
//! clock: u64                  logical time; bumps on publish/touch
//! count: usize
//! count × entry:
//!   fingerprint: u64 hi, u64 lo
//!   generation:  u64          1-based, monotone per fingerprint
//!   bytes:       u64          file size as published
//!   published_at: u64         clock at publish
//!   last_used:   u64          fingerprint-level LRU stamp
//! ```
//!
//! The manifest is an **index, not the truth**: every fact in it can be
//! rebuilt from a directory scan (file names carry fingerprint and
//! generation, sizes come from the filesystem; only LRU stamps are
//! lost, defaulting to publish order). [`ModelStore::open`](crate::ModelStore::open)
//! (crate::ModelStore::open) does exactly that when the manifest is
//! missing or fails to decode.

use fairgen_graph::codec::{self, Codec, Decoder, Encoder};
use fairgen_graph::{GraphFingerprint, Result};

/// Container tag of the manifest file.
pub const MANIFEST_TAG: &str = "FairGenManifest";

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.fgm";

/// One retained checkpoint generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The fit identity this checkpoint belongs to.
    pub fingerprint: GraphFingerprint,
    /// 1-based generation counter, monotone per fingerprint.
    pub generation: u64,
    /// File size in bytes at publish time.
    pub bytes: u64,
    /// Logical clock value when this generation was published.
    pub published_at: u64,
    /// Fingerprint-level LRU stamp (same value on every generation of a
    /// fingerprint; the maximum wins on load).
    pub last_used: u64,
}

/// The decoded manifest: a logical clock plus the retained generations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Logical time; strictly increases across publishes and touches.
    pub clock: u64,
    /// Retained generations, in no guaranteed order.
    pub entries: Vec<ManifestEntry>,
}

impl Codec for Manifest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.clock);
        enc.put_usize(self.entries.len());
        for e in &self.entries {
            let v = e.fingerprint.as_u128();
            enc.put_u64((v >> 64) as u64);
            enc.put_u64(v as u64);
            enc.put_u64(e.generation);
            enc.put_u64(e.bytes);
            enc.put_u64(e.published_at);
            enc.put_u64(e.last_used);
        }
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        let clock = dec.take_u64()?;
        let count = dec.take_usize()?;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let hi = dec.take_u64()?;
            let lo = dec.take_u64()?;
            entries.push(ManifestEntry {
                fingerprint: GraphFingerprint::from_u128(((hi as u128) << 64) | lo as u128),
                generation: dec.take_u64()?,
                bytes: dec.take_u64()?,
                published_at: dec.take_u64()?,
                last_used: dec.take_u64()?,
            });
        }
        Ok(Manifest { clock, entries })
    }
}

impl Manifest {
    /// Seals the manifest into container bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::seal_value(MANIFEST_TAG, self)
    }

    /// Opens container bytes back into a manifest (typed
    /// `CorruptCheckpoint` on any framing/checksum/tag failure).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        codec::open_value(MANIFEST_TAG, bytes)
    }
}

/// The checkpoint file name for one generation:
/// `fg-<32-hex-fingerprint>.g<generation>.ckpt`.
pub fn checkpoint_file_name(fp: GraphFingerprint, generation: u64) -> String {
    format!("fg-{}.g{generation}.ckpt", fp.to_hex())
}

/// Parses a file name produced by [`checkpoint_file_name`]. Returns
/// `None` for anything else (including the legacy flat `fg-<fp>.ckpt`
/// form, which [`ModelStore::open`](crate::ModelStore::open) adopts
/// separately as generation 1).
pub fn parse_checkpoint_file_name(name: &str) -> Option<(GraphFingerprint, u64)> {
    let rest = name.strip_prefix("fg-")?.strip_suffix(".ckpt")?;
    let (hex, gen_part) = rest.split_at(rest.find(".g")?);
    let fp = GraphFingerprint::from_hex(hex)?;
    let digits = &gen_part[2..];
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let generation: u64 = digits.parse().ok()?;
    (generation >= 1).then_some((fp, generation))
}

/// Parses the **legacy** flat name `fg-<32-hex>.ckpt` from the pre-store
/// layout, so `open` can adopt old directories as generation 1.
pub fn parse_legacy_file_name(name: &str) -> Option<GraphFingerprint> {
    let hex = name.strip_prefix("fg-")?.strip_suffix(".ckpt")?;
    GraphFingerprint::from_hex(hex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_graph::FingerprintBuilder;

    fn fp(seed: u64) -> GraphFingerprint {
        FingerprintBuilder::new().add_u64(seed).finish()
    }

    #[test]
    fn manifest_roundtrips() {
        let m = Manifest {
            clock: 17,
            entries: vec![
                ManifestEntry {
                    fingerprint: fp(1),
                    generation: 3,
                    bytes: 1024,
                    published_at: 5,
                    last_used: 9,
                },
                ManifestEntry {
                    fingerprint: fp(2),
                    generation: 1,
                    bytes: 77,
                    published_at: 2,
                    last_used: 2,
                },
            ],
        };
        let back = Manifest::from_bytes(&m.to_bytes()).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn corrupt_manifest_is_typed() {
        let mut bytes = Manifest { clock: 1, entries: vec![] }.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Manifest::from_bytes(&bytes),
            Err(fairgen_graph::FairGenError::CorruptCheckpoint { .. })
        ));
    }

    #[test]
    fn file_name_roundtrips() {
        let f = fp(3);
        let name = checkpoint_file_name(f, 12);
        assert_eq!(name, format!("fg-{}.g12.ckpt", f.to_hex()));
        assert_eq!(parse_checkpoint_file_name(&name), Some((f, 12)));
    }

    #[test]
    fn foreign_names_rejected() {
        assert_eq!(parse_checkpoint_file_name("manifest.fgm"), None);
        assert_eq!(parse_checkpoint_file_name("fg-zzzz.g1.ckpt"), None);
        assert_eq!(parse_checkpoint_file_name("fg-00.g1.ckpt"), None);
        let f = fp(4);
        assert_eq!(parse_checkpoint_file_name(&format!("fg-{}.ckpt", f.to_hex())), None);
        assert_eq!(parse_checkpoint_file_name(&format!("fg-{}.g0.ckpt", f.to_hex())), None);
        assert_eq!(parse_checkpoint_file_name(&format!("fg-{}.gx.ckpt", f.to_hex())), None);
        assert_eq!(parse_checkpoint_file_name(&format!("fg-{}.g1.ckpt.tmp", f.to_hex())), None);
        assert_eq!(parse_legacy_file_name(&format!("fg-{}.ckpt", f.to_hex())), Some(f));
        assert_eq!(parse_legacy_file_name(&format!("fg-{}.g1.ckpt", f.to_hex())), None);
    }
}
