//! A small closable MPMC queue — the primitive under the serving layer's
//! per-shard work queues.
//!
//! [`Channel`] is deliberately minimal: an unbounded FIFO guarded by one
//! mutex, with blocking consumers parked on a condvar. Any number of
//! producers [`push`](Channel::push) and any number of consumers
//! [`pop`](Channel::pop) or [`drain`](Channel::drain); closing wakes every
//! blocked consumer and makes further pushes fail (handing the rejected
//! item back to the producer, so nothing is silently dropped).
//!
//! [`Channel::drain`] is the batch-consumption primitive a coalescing
//! server wants: it blocks until at least one item is queued, then takes
//! *everything* queued at that instant in FIFO order — so items that
//! accumulated while the consumer was busy arrive as one batch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// An unbounded, closable multi-producer/multi-consumer FIFO queue.
pub struct Channel<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

impl<T> Channel<T> {
    /// An open, empty channel.
    pub fn new() -> Self {
        Channel {
            state: Mutex::new(State { queue: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item` and wakes one blocked consumer. Fails on a closed
    /// channel, returning the item to the caller.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("channel lock");
        if state.closed {
            return Err(item);
        }
        state.queue.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// only when the channel is closed **and** fully drained — items queued
    /// before [`close`](Channel::close) are still delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("channel lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("channel lock");
        }
    }

    /// Blocks until at least one item is queued, then dequeues **all** of
    /// them in FIFO order. An empty result means the channel is closed and
    /// drained.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("channel lock");
        loop {
            if !state.queue.is_empty() {
                return state.queue.drain(..).collect();
            }
            if state.closed {
                return Vec::new();
            }
            state = self.ready.wait(state).expect("channel lock");
        }
    }

    /// Dequeues everything currently queued without blocking (possibly
    /// nothing).
    pub fn try_drain(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("channel lock");
        state.queue.drain(..).collect()
    }

    /// Closes the channel: further pushes fail, blocked consumers wake, and
    /// already-queued items remain deliverable. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("channel lock");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Whether [`close`](Channel::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("channel lock").closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("channel lock").queue.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("channel lock");
        f.debug_struct("Channel")
            .field("queued", &state.queue.len())
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let ch = Channel::new();
        for i in 0..5 {
            ch.push(i).expect("open");
        }
        assert_eq!(ch.len(), 5);
        assert_eq!(ch.pop(), Some(0));
        assert_eq!(ch.drain(), vec![1, 2, 3, 4]);
        assert!(ch.is_empty());
    }

    #[test]
    fn close_rejects_pushes_but_delivers_backlog() {
        let ch = Channel::new();
        ch.push(1).expect("open");
        ch.push(2).expect("open");
        ch.close();
        assert!(ch.is_closed());
        assert_eq!(ch.push(3), Err(3), "push after close hands the item back");
        assert_eq!(ch.pop(), Some(1));
        assert_eq!(ch.pop(), Some(2));
        assert_eq!(ch.pop(), None);
        assert_eq!(ch.drain(), Vec::<i32>::new());
    }

    #[test]
    fn drain_takes_the_whole_backlog_as_one_batch() {
        let ch = Arc::new(Channel::new());
        let consumer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.drain())
        };
        // Give the consumer a chance to block, then land a burst.
        std::thread::sleep(std::time::Duration::from_millis(10));
        for i in 0..4 {
            ch.push(i).expect("open");
        }
        let batch = consumer.join().expect("consumer");
        // The consumer wakes on the first push; it may observe 1..=4 items
        // depending on scheduling, but they must be a FIFO prefix.
        assert!(!batch.is_empty());
        assert_eq!(batch, (0..batch.len() as i32).collect::<Vec<_>>());
        let mut rest = ch.try_drain();
        let mut all = batch;
        all.append(&mut rest);
        assert_eq!(all, vec![0, 1, 2, 3], "nothing lost, order preserved");
    }

    #[test]
    fn many_producers_many_consumers_deliver_exactly_once() {
        let ch = Arc::new(Channel::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ch = Arc::clone(&ch);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        ch.push(p * 100 + i).expect("open");
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let ch = Arc::clone(&ch);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = ch.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        ch.close();
        let mut all: Vec<i32> =
            consumers.into_iter().flat_map(|c| c.join().expect("consumer")).collect();
        all.sort_unstable();
        let mut expected: Vec<i32> =
            (0..4).flat_map(|p| (0..25).map(move |i| p * 100 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected, "every item delivered exactly once");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let ch: Arc<Channel<i32>> = Arc::new(Channel::new());
        let blocked = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        ch.close();
        assert_eq!(blocked.join().expect("consumer"), None);
    }
}
