//! A bounded, two-lane, closable MPMC queue — the priority-aware sibling of
//! [`Channel`](crate::Channel).
//!
//! [`Channel`](crate::Channel) is a single unbounded FIFO: the right primitive when every
//! producer is trusted and backlog is free. A serving front-end facing
//! untrusted load wants two properties it cannot provide:
//!
//! * **A capacity bound.** [`LaneChannel::push`] fails with
//!   [`PushError::Full`] once `capacity` items are queued across both
//!   lanes, handing the rejected item back so the producer can answer its
//!   client with a typed rejection instead of growing the backlog without
//!   limit.
//! * **Priority lanes.** Items are tagged [`Lane::Interactive`] or
//!   [`Lane::Bulk`] at push time and kept in per-lane FIFO order.
//!   [`LaneChannel::drain`] hands both lanes back *separately* — ordering
//!   *between* lanes (strict priority, weighted interleave, aging) is
//!   policy, and policy lives in the caller (`fairgen-admission` implements
//!   the anti-starvation interleave), not in the primitive.
//!
//! Close semantics match [`Channel`](crate::Channel): closing wakes every blocked consumer,
//! makes further pushes fail with [`PushError::Closed`], and leaves
//! already-queued items deliverable.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Which priority lane an item travels in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive work — drains ahead of bulk (subject to the
    /// caller's anti-starvation policy).
    Interactive,
    /// Throughput work — may be queued behind interactive items.
    Bulk,
}

impl Lane {
    /// A stable lowercase name (`"interactive"` / `"bulk"`) for logs and
    /// wire formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Bulk => "bulk",
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a push was refused; the rejected item is handed back in either case
/// so nothing is silently dropped.
#[derive(Debug)]
pub enum PushError<T> {
    /// The channel holds `capacity` items; the producer should shed.
    Full(T),
    /// The channel is closed; the producer should stop.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item, whatever the reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// One drain's worth of items, per-lane, each lane in FIFO order.
#[derive(Debug)]
pub struct Drained<T> {
    /// The interactive lane's backlog at drain time.
    pub interactive: Vec<T>,
    /// The bulk lane's backlog at drain time.
    pub bulk: Vec<T>,
}

impl<T> Drained<T> {
    /// Whether both lanes came back empty (the channel is closed and
    /// drained).
    pub fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.bulk.is_empty()
    }

    /// Items across both lanes.
    pub fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }
}

struct State<T> {
    interactive: VecDeque<T>,
    bulk: VecDeque<T>,
    closed: bool,
}

impl<T> State<T> {
    fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }
}

/// A bounded, closable, two-lane MPMC queue. See the [module docs](self).
pub struct LaneChannel<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    /// `None` = unbounded (the permissive default the pre-admission serving
    /// stack behaves as).
    capacity: Option<usize>,
}

impl<T> LaneChannel<T> {
    /// An open, empty channel holding at most `capacity` items across both
    /// lanes (`None` = unbounded).
    pub fn new(capacity: Option<usize>) -> Self {
        LaneChannel {
            state: Mutex::new(State {
                interactive: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Enqueues `item` on `lane` and wakes one blocked consumer. The
    /// closed/full checks and the enqueue are one critical section, so two
    /// producers racing for the last slot can never both win.
    pub fn push(&self, lane: Lane, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("lane channel lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if let Some(cap) = self.capacity {
            if state.len() >= cap {
                return Err(PushError::Full(item));
            }
        }
        match lane {
            Lane::Interactive => state.interactive.push_back(item),
            Lane::Bulk => state.bulk.push_back(item),
        }
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is queued on either lane, then
    /// dequeues **everything**, per lane in FIFO order. An empty result
    /// means the channel is closed and drained.
    pub fn drain(&self) -> Drained<T> {
        let mut state = self.state.lock().expect("lane channel lock");
        loop {
            if state.len() > 0 {
                return Drained {
                    interactive: state.interactive.drain(..).collect(),
                    bulk: state.bulk.drain(..).collect(),
                };
            }
            if state.closed {
                return Drained { interactive: Vec::new(), bulk: Vec::new() };
            }
            state = self.ready.wait(state).expect("lane channel lock");
        }
    }

    /// Dequeues everything currently queued without blocking (possibly
    /// nothing).
    pub fn try_drain(&self) -> Drained<T> {
        let mut state = self.state.lock().expect("lane channel lock");
        Drained {
            interactive: state.interactive.drain(..).collect(),
            bulk: state.bulk.drain(..).collect(),
        }
    }

    /// Closes the channel: further pushes fail, blocked consumers wake, and
    /// already-queued items remain deliverable. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("lane channel lock");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Whether [`close`](LaneChannel::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("lane channel lock").closed
    }

    /// Items currently queued across both lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("lane channel lock").len()
    }

    /// Items currently queued on one lane.
    pub fn lane_len(&self, lane: Lane) -> usize {
        let state = self.state.lock().expect("lane channel lock");
        match lane {
            Lane::Interactive => state.interactive.len(),
            Lane::Bulk => state.bulk.len(),
        }
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for LaneChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("lane channel lock");
        f.debug_struct("LaneChannel")
            .field("interactive", &state.interactive.len())
            .field("bulk", &state.bulk.len())
            .field("capacity", &self.capacity)
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lanes_keep_fifo_order_independently() {
        let ch = LaneChannel::new(None);
        ch.push(Lane::Bulk, 10).expect("open");
        ch.push(Lane::Interactive, 1).expect("open");
        ch.push(Lane::Bulk, 11).expect("open");
        ch.push(Lane::Interactive, 2).expect("open");
        assert_eq!(ch.len(), 4);
        assert_eq!(ch.lane_len(Lane::Interactive), 2);
        let drained = ch.drain();
        assert_eq!(drained.interactive, vec![1, 2]);
        assert_eq!(drained.bulk, vec![10, 11]);
        assert!(ch.is_empty());
    }

    #[test]
    fn capacity_bound_spans_both_lanes_and_hands_the_item_back() {
        let ch = LaneChannel::new(Some(2));
        ch.push(Lane::Interactive, 1).expect("open");
        ch.push(Lane::Bulk, 2).expect("open");
        match ch.push(Lane::Interactive, 3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining frees the slots.
        let _ = ch.try_drain();
        ch.push(Lane::Bulk, 4).expect("slot free again");
    }

    #[test]
    fn close_rejects_pushes_but_delivers_backlog() {
        let ch = LaneChannel::new(Some(8));
        ch.push(Lane::Bulk, 1).expect("open");
        ch.close();
        assert!(ch.is_closed());
        match ch.push(Lane::Bulk, 2) {
            Err(PushError::Closed(item)) => assert_eq!(item, 2),
            other => panic!("expected Closed, got {other:?}"),
        }
        let drained = ch.drain();
        assert_eq!(drained.bulk, vec![1]);
        assert!(ch.drain().is_empty(), "closed and drained");
    }

    #[test]
    fn full_and_closed_are_distinct_rejections() {
        let ch = LaneChannel::new(Some(1));
        ch.push(Lane::Bulk, 1).expect("open");
        assert!(matches!(ch.push(Lane::Bulk, 2), Err(PushError::Full(_))));
        ch.close();
        // Closed wins over full once close happens — the producer must stop,
        // not retry.
        assert!(matches!(ch.push(Lane::Bulk, 3), Err(PushError::Closed(_))));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let ch: Arc<LaneChannel<i32>> = Arc::new(LaneChannel::new(None));
        let blocked = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.drain())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        ch.close();
        assert!(blocked.join().expect("consumer").is_empty());
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let ch = Arc::new(LaneChannel::new(Some(16)));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ch = Arc::clone(&ch);
                std::thread::spawn(move || {
                    let mut accepted = 0usize;
                    for i in 0..32 {
                        let lane = if i % 2 == 0 { Lane::Interactive } else { Lane::Bulk };
                        if ch.push(lane, p * 100 + i).is_ok() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: usize = producers.into_iter().map(|p| p.join().expect("producer")).sum();
        assert!(accepted >= 16, "at least capacity items must have been accepted");
        assert!(ch.len() <= 16, "the bound holds under contention");
        let drained = ch.try_drain();
        assert_eq!(drained.len(), ch.capacity().unwrap().min(accepted));
    }
}
