//! A vendored, rayon-style work-stealing thread pool plus the deterministic
//! RNG-stream machinery the parallel sampling paths are built on.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for `rayon`'s data-parallel subset the workspace needs:
//!
//! * [`ThreadPool`] — a fixed set of persistent workers. [`ThreadPool::new`]
//!   picks an explicit width, [`ThreadPool::global`] reads the
//!   `FAIRGEN_THREADS` environment variable (falling back to the machine's
//!   available parallelism) and is shared process-wide. A width of 1 runs
//!   everything inline on the caller with no worker threads at all — the
//!   single-thread fallback.
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_map_init`] — parallel map
//!   over an index range `0..len` with **range stealing**: the range is
//!   pre-partitioned one contiguous slice per participant, each participant
//!   pops from the bottom of its own slice, and a participant that runs dry
//!   CASes away the top half of the largest remaining peer slice (the
//!   classic split-half stealing discipline, on packed `AtomicU64` ranges
//!   instead of per-task deques). Results land in their index's output slot,
//!   so the returned `Vec` is **identical for any worker count and any
//!   steal schedule** — determinism is positional, not temporal.
//! * [`ThreadPool::scope`] — rayon-style scoped spawning of heterogeneous
//!   closures that may borrow from the caller's stack frame; every spawned
//!   task completes before `scope` returns.
//! * [`Channel`] — a closable MPMC queue with batch draining, the
//!   primitive under `fairgen-serve`'s per-shard work queues.
//! * [`LaneChannel`] — its bounded, two-priority-lane sibling: pushes fail
//!   typed ([`PushError::Full`] / [`PushError::Closed`]) instead of growing
//!   without limit, and drains hand the lanes back separately so an
//!   admission layer can apply its own interleave policy
//!   (`fairgen-admission` builds on it).
//!
//! # Deterministic parallel sampling
//!
//! Every token sampler in `fairgen-nn` consumes **exactly one** `u64` from
//! its RNG per generated token. That contract makes sequential sampling
//! parallelizable *bit-identically*: [`predraw`] advances the master RNG by
//! the exact number of draws the sequential loop would have consumed, and
//! each walk replays its own slice of that stream through a [`ReplayRng`].
//! Worker count, steal order, and chunking then cannot change a single
//! token — the parity suites in `nn`, `walks`, and `core` assert it at
//! widths {1, 2, 8}. [`stream_seed`] is the alternative (keyed, splittable)
//! scheme for workloads without a fixed per-item draw count.

pub mod channel;
pub mod lanes;

pub use channel::Channel;
pub use lanes::{Drained, Lane, LaneChannel, PushError};

use std::any::Any;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable naming the worker count of the process-wide pool
/// (read once, by the first [`ThreadPool::global`] call). Unset, empty, `0`,
/// or unparsable values fall back to the machine's available parallelism;
/// `1` disables worker threads entirely.
pub const THREADS_ENV: &str = "FAIRGEN_THREADS";

// ---------------------------------------------------------------------------
// Job broadcast plumbing.
// ---------------------------------------------------------------------------

/// A type-erased pointer to the current job closure. The caller that
/// installed it blocks until every worker has finished running it, so the
/// pointee strictly outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` and outlives all uses (see `Job` docs).
unsafe impl Send for Job {}

struct JobSlot {
    /// Bumped once per broadcast; workers run a job exactly once per epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current job.
    pending: usize,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    work: Condvar,
    done: Condvar,
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    break slot.job.expect("epoch bumped with a job installed");
                }
                slot = shared.work.wait(slot).expect("pool lock");
            }
        };
        // The broadcast wrapper catches panics itself, so this call never
        // unwinds past us (see `ThreadPool::run`).
        // SAFETY: the installing caller waits for `pending == 0` before its
        // closure goes out of scope.
        (unsafe { &*job.0 })(id);
        let mut slot = shared.slot.lock().expect("pool lock");
        slot.pending -= 1;
        if slot.pending == 0 {
            shared.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

/// A fixed-width work-stealing thread pool; see the crate docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes broadcasts so concurrent callers (e.g. parallel tests over
    /// the global pool) queue instead of corrupting the job slot.
    run_lock: Mutex<()>,
    threads: usize,
}

impl ThreadPool {
    /// A pool with `threads` participants: the calling thread plus
    /// `threads − 1` workers. `threads == 1` spawns nothing and runs every
    /// parallel call inline — the sequential fallback.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least the calling thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot { epoch: 0, job: None, pending: 0, shutdown: false }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fairgen-par-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers, run_lock: Mutex::new(()), threads }
    }

    /// The process-wide pool, created on first use with the width named by
    /// [`THREADS_ENV`] (default: the machine's available parallelism).
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(env_threads()))
    }

    /// Number of participants (callers + workers) a parallel call fans out
    /// over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Broadcasts `f` to every participant (worker ids `1..threads`, the
    /// caller as id `0`) and blocks until all of them return. Panics from
    /// any participant are captured and re-raised on the caller — after all
    /// participants have quiesced, so borrowed data is never observed by a
    /// running worker past this frame.
    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let wrapper = |id: usize| {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(id))) {
                let mut slot = panic_slot.lock().expect("panic slot");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        };
        if self.workers.is_empty() {
            wrapper(0);
        } else {
            let _serial = self.run_lock.lock().expect("run lock");
            // SAFETY: the lifetime erasure is sound because this frame waits
            // for `pending == 0` before `wrapper` goes out of scope.
            let raw: *const (dyn Fn(usize) + Sync) =
                unsafe { std::mem::transmute(&wrapper as *const (dyn Fn(usize) + Sync + '_)) };
            {
                let mut slot = self.shared.slot.lock().expect("pool lock");
                slot.epoch += 1;
                slot.job = Some(Job(raw));
                slot.pending = self.workers.len();
                self.shared.work.notify_all();
            }
            wrapper(0);
            let mut slot = self.shared.slot.lock().expect("pool lock");
            while slot.pending > 0 {
                slot = self.shared.done.wait(slot).expect("pool lock");
            }
            slot.job = None;
        }
        let payload = panic_slot.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Parallel map over `0..len`: returns `vec![f(0), f(1), …]`, computed
    /// across the pool with range stealing. The output is identical to the
    /// sequential map for every worker count.
    ///
    /// If any invocation of `f` panics, the panic is re-raised on the caller
    /// once the pool has quiesced (results completed by other participants
    /// meanwhile are leaked, not dropped).
    pub fn par_map<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.par_map_init(len, || (), |(), i| f(i))
    }

    /// [`ThreadPool::par_map`] with per-worker state: `init` runs once per
    /// participant per call and the resulting state is threaded through
    /// every index that participant processes — the hook for one
    /// decode-state / one model replica per worker. `f` must not let the
    /// state influence its result (states migrate with stealing); the
    /// parity suites assert the output is schedule-independent.
    pub fn par_map_init<S, T, I, F>(&self, len: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if self.threads == 1 || len <= 1 {
            let mut state = init();
            return (0..len).map(|i| f(&mut state, i)).collect();
        }
        assert!(len < u32::MAX as usize, "par_map range exceeds u32 packing");
        let mut out: Vec<MaybeUninit<T>> = (0..len).map(|_| MaybeUninit::uninit()).collect();
        let slots = SlotWriter { ptr: out.as_mut_ptr() };
        let parts = self.threads;
        let ranges: Vec<AtomicU64> = (0..parts)
            .map(|w| AtomicU64::new(pack(len * w / parts, len * (w + 1) / parts)))
            .collect();
        self.run(&|id| {
            // Built lazily on the first popped index: a participant whose
            // initial range is empty and that steals nothing never pays for
            // its state (which may be a whole model replica).
            let mut state: Option<S> = None;
            loop {
                if let Some(i) = pop(&ranges[id]) {
                    let value = f(state.get_or_insert_with(&init), i);
                    // SAFETY: index `i` is popped exactly once across all
                    // participants (ranges partition `0..len`; pop/steal are
                    // CAS-linearized), so each slot is written once.
                    unsafe { slots.write(i, value) };
                } else if let Some((s, e)) = steal(&ranges, id) {
                    // Own range is empty, so no concurrent CAS can target it
                    // and a plain store is race-free.
                    ranges[id].store(pack(s, e), Ordering::Release);
                } else {
                    return;
                }
            }
        });
        // SAFETY: `run` returned without re-raising a panic, so every slot
        // in `0..len` was written exactly once.
        unsafe {
            let mut out = ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr() as *mut T, out.len(), out.capacity())
        }
    }

    /// Runs `body` with a [`Scope`] collecting spawned closures, then
    /// executes every spawned closure on the pool and waits for all of them
    /// before returning (so spawns may borrow from the enclosing frame).
    /// Tasks start only after `body` returns — spawn everything, then the
    /// scope fans out.
    pub fn scope<'scope, R>(&self, body: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope { tasks: Mutex::new(Vec::new()) };
        let result = body(&scope);
        let tasks = scope.tasks.into_inner().expect("scope lock");
        if !tasks.is_empty() {
            let slots: Vec<Mutex<Option<Task<'scope>>>> =
                tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
            let next = AtomicUsize::new(0);
            self.run(&|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    return;
                }
                if let Some(task) = slots[i].lock().expect("task slot").take() {
                    task();
                }
            });
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Collector of scoped tasks; see [`ThreadPool::scope`].
pub struct Scope<'scope> {
    tasks: Mutex<Vec<Task<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Registers `f` to run on the pool before the enclosing
    /// [`ThreadPool::scope`] returns.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'scope) {
        self.tasks.lock().expect("scope lock").push(Box::new(f));
    }
}

/// Shared pointer into the output buffer; each index is written by exactly
/// one participant (see the safety comments at the write site).
struct SlotWriter<T> {
    ptr: *mut MaybeUninit<T>,
}

unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and written at most once across all threads.
    unsafe fn write(&self, i: usize, value: T) {
        (*self.ptr.add(i)).write(value);
    }
}

#[inline]
fn pack(start: usize, end: usize) -> u64 {
    ((start as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

/// Pops the bottom index of `range`, or `None` when it is empty.
fn pop(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        match range.compare_exchange_weak(
            cur,
            pack(s + 1, e),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(s),
            Err(actual) => cur = actual,
        }
    }
}

/// Steals the top half of the largest peer range (victims keep the ceiling
/// half; single-index ranges are left to their owner). Returns the stolen
/// `[start, end)` or `None` when no peer has two or more indices left.
fn steal(ranges: &[AtomicU64], me: usize) -> Option<(usize, usize)> {
    loop {
        let mut best: Option<(usize, u64, usize)> = None;
        for (i, range) in ranges.iter().enumerate() {
            if i == me {
                continue;
            }
            let cur = range.load(Ordering::Acquire);
            let (s, e) = unpack(cur);
            let remaining = e.saturating_sub(s);
            if remaining >= 2 && best.is_none_or(|(_, _, n)| remaining > n) {
                best = Some((i, cur, remaining));
            }
        }
        let (victim, cur, remaining) = best?;
        let (s, e) = unpack(cur);
        let mid = s + remaining / 2 + remaining % 2;
        if ranges[victim]
            .compare_exchange(cur, pack(s, mid), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return Some((mid, e));
        }
        // Raced with the victim (or another thief); rescan.
    }
}

fn env_threads() -> usize {
    let fallback = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var(THREADS_ENV) {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(fallback),
        Err(_) => fallback(),
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG-stream splitting.
// ---------------------------------------------------------------------------

/// Draws `n` raw `u64`s from `rng` — the exact stream a sequential sampling
/// loop of `n` single-draw steps would consume, leaving `rng` in the same
/// state that loop would have. Slice the result per walk and replay each
/// slice through a [`ReplayRng`] to parallelize the loop bit-identically.
pub fn predraw<R: rand::RngCore + ?Sized>(rng: &mut R, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

/// An RNG that replays a pre-drawn slice of `u64`s (see [`predraw`]).
///
/// # Panics
///
/// Panics when asked for more draws than the slice holds — a consumer that
/// overdraws its budget is a bug in the per-walk draw accounting.
#[derive(Clone, Debug)]
pub struct ReplayRng<'a> {
    draws: &'a [u64],
    pos: usize,
}

impl<'a> ReplayRng<'a> {
    /// A replay over `draws`.
    pub fn new(draws: &'a [u64]) -> Self {
        ReplayRng { draws, pos: 0 }
    }

    /// Draws consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl rand::RngCore for ReplayRng<'_> {
    fn next_u64(&mut self) -> u64 {
        let v = *self
            .draws
            .get(self.pos)
            .unwrap_or_else(|| panic!("ReplayRng exhausted after {} draws", self.pos));
        self.pos += 1;
        v
    }
}

/// Derives a decorrelated per-stream seed from a master seed and a stream
/// index (double SplitMix64 finalization). For workloads whose per-item
/// draw count is not fixed — where [`predraw`] cannot apply — key each
/// item's own RNG as `StdRng::seed_from_u64(stream_seed(master, i))`.
pub fn stream_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn par_map_matches_sequential_at_every_width() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.par_map(257, |i| i * i), expected, "width {threads}");
        }
    }

    #[test]
    fn par_map_init_state_is_per_worker_and_output_positional() {
        // States accumulate locally; the *output* must still be positional
        // and schedule-independent.
        let pool = ThreadPool::new(4);
        let out = pool.par_map_init(
            100,
            || 0usize,
            |state, i| {
                *state += 1;
                i
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.par_map(1, |i| i + 7), vec![7]);
        assert_eq!(pool.par_map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Front-loaded work: without stealing the first participant would do
        // ~all of it. We only assert completeness/positional correctness —
        // the schedule itself is unobservable by design.
        let pool = ThreadPool::new(8);
        let out = pool.par_map(64, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(32, |i| {
                if i == 17 {
                    panic!("boom at 17");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "unexpected payload {msg:?}");
        // The pool must stay usable after a propagated panic.
        assert_eq!(pool.par_map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_runs_every_spawn_with_borrows() {
        let pool = ThreadPool::new(4);
        let results: Vec<Mutex<usize>> = (0..16).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, slot) in results.iter().enumerate() {
                s.spawn(move || *slot.lock().unwrap() = i + 1);
            }
        });
        for (i, slot) in results.iter().enumerate() {
            assert_eq!(*slot.lock().unwrap(), i + 1);
        }
    }

    #[test]
    fn replay_rng_reproduces_the_master_stream() {
        let mut master = StdRng::seed_from_u64(9);
        let mut reference = StdRng::seed_from_u64(9);
        let draws = predraw(&mut master, 40);
        let mut replay = ReplayRng::new(&draws);
        for _ in 0..40 {
            assert_eq!(replay.next_u64(), reference.next_u64());
        }
        assert_eq!(replay.consumed(), 40);
        // The master advanced exactly 40 draws.
        assert_eq!(master.next_u64(), reference.next_u64());
    }

    #[test]
    fn replay_rng_drives_the_rand_trait_surface() {
        let mut src = StdRng::seed_from_u64(3);
        let draws = predraw(&mut src, 8);
        let mut a = ReplayRng::new(&draws);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn replay_rng_overdraw_panics() {
        let draws = [1u64, 2];
        let mut rng = ReplayRng::new(&draws);
        rng.next_u64();
        rng.next_u64();
        rng.next_u64();
    }

    #[test]
    fn stream_seeds_decorrelate() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stability: the derivation is part of the determinism contract.
        assert_eq!(a, stream_seed(42, 0));
    }

    #[test]
    fn global_pool_is_shared_and_nonzero() {
        let p = ThreadPool::global();
        assert!(p.threads() >= 1);
        assert!(std::ptr::eq(p, ThreadPool::global()));
    }

    #[test]
    fn concurrent_callers_serialize_safely() {
        let pool = Arc::new(ThreadPool::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let out = pool.par_map(50, move |i| i + t);
                    assert_eq!(out, (0..50).map(|i| i + t).collect::<Vec<_>>());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread");
        }
    }
}
