//! The nine network statistics of FairGen's Table II and the discrepancy
//! measures of Eqs. 15–16.
//!
//! * [`Metric`] — the nine statistics: Average Degree, LCC, Triangle Count,
//!   Power-Law Exponent, Gini, Edge-Distribution Entropy, ASPL, NCC, and
//!   Clustering Coefficient.
//! * [`stats`] — their implementations.
//! * [`discrepancy`] — overall discrepancy `R(G, G̃, f)` and protected-group
//!   discrepancy `R⁺(G, G̃, S⁺, f)` computed on 1-hop ego networks of the
//!   protected group, exactly as the paper's evaluation section specifies.

pub mod discrepancy;
pub mod groupwise;
pub mod stats;

pub use discrepancy::{
    overall_discrepancies, overall_discrepancy, protected_discrepancies, protected_discrepancy,
    DiscrepancyReport,
};
pub use groupwise::GroupwiseReport;
pub use stats::{
    all_metrics, aspl_exact, aspl_sampled, avg_clustering_coefficient, avg_degree,
    compute_metric, edge_distribution_entropy, gini_coefficient, largest_cc_size,
    num_connected_components, power_law_exponent, triangle_count, MetricReport,
};

/// One of the nine graph statistics reported in the paper (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Average node degree `E[d(v)]`.
    AvgDegree,
    /// Size of the largest connected component.
    Lcc,
    /// Number of triangles.
    TriangleCount,
    /// Exponent of the power-law degree distribution.
    Ple,
    /// Gini coefficient of the degree distribution.
    Gini,
    /// Relative edge-distribution entropy.
    Ede,
    /// Average shortest path length.
    Aspl,
    /// Number of connected components.
    Ncc,
    /// Average local clustering coefficient.
    Cc,
}

impl Metric {
    /// All nine metrics in the paper's presentation order
    /// (Fig. 4a–4i / Fig. 5a–5i).
    pub const ALL: [Metric; 9] = [
        Metric::AvgDegree,
        Metric::Lcc,
        Metric::TriangleCount,
        Metric::Ple,
        Metric::Gini,
        Metric::Ede,
        Metric::Aspl,
        Metric::Ncc,
        Metric::Cc,
    ];

    /// The abbreviation used in the paper's tables ("AD", "LCC", ...).
    pub fn abbrev(self) -> &'static str {
        match self {
            Metric::AvgDegree => "AD",
            Metric::Lcc => "LCC",
            Metric::TriangleCount => "TC",
            Metric::Ple => "PLE",
            Metric::Gini => "Gini",
            Metric::Ede => "EDE",
            Metric::Aspl => "ASPL",
            Metric::Ncc => "NCC",
            Metric::Cc => "CC",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_nine_distinct() {
        let mut seen = std::collections::HashSet::new();
        for m in Metric::ALL {
            assert!(seen.insert(m.abbrev()));
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn display_matches_abbrev() {
        assert_eq!(Metric::AvgDegree.to_string(), "AD");
        assert_eq!(Metric::Cc.to_string(), "CC");
    }
}
