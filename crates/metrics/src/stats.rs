//! Implementations of the nine statistics (paper Table II).

use fairgen_graph::{connected_components, num_components, traversal, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Metric;

/// Exact ASPL is O(n·m); above this node count [`compute_metric`] switches to
/// the sampled estimator with [`DEFAULT_ASPL_SAMPLES`] sources.
pub const ASPL_EXACT_LIMIT: usize = 3000;

/// Number of BFS sources used by the sampled ASPL estimator.
pub const DEFAULT_ASPL_SAMPLES: usize = 256;

/// Average node degree `2m / n`.
pub fn avg_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    2.0 * g.m() as f64 / g.n() as f64
}

/// Size of the largest connected component.
pub fn largest_cc_size(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let (_, sizes) = connected_components(g);
    sizes.into_iter().max().unwrap_or(0)
}

/// Number of triangles.
pub fn triangle_count(g: &Graph) -> usize {
    g.triangle_count()
}

/// Power-law exponent via the Hill/MLE estimator of Table II:
/// `1 + n' (Σ_u log(d(u)/d_min))⁻¹` over nodes with positive degree, where
/// `d_min` is the smallest positive degree.
///
/// Returns `f64::NAN` if fewer than two distinct positive degrees exist
/// (the estimator is undefined on regular graphs).
pub fn power_law_exponent(g: &Graph) -> f64 {
    let degs: Vec<usize> = g.degrees().into_iter().filter(|&d| d > 0).collect();
    if degs.is_empty() {
        return f64::NAN;
    }
    let dmin = *degs.iter().min().expect("non-empty") as f64;
    let log_sum: f64 = degs.iter().map(|&d| (d as f64 / dmin).ln()).sum();
    if log_sum <= 0.0 {
        return f64::NAN;
    }
    1.0 + degs.len() as f64 / log_sum
}

/// Gini coefficient of the degree distribution (Table II):
/// `2 Σ_i i·d̂_i / (n Σ_i d̂_i) − (n+1)/n` with degrees sorted ascending and
/// `i` 1-based.
pub fn gini_coefficient(g: &Graph) -> f64 {
    let mut degs: Vec<usize> = g.degrees();
    let n = degs.len();
    if n == 0 {
        return 0.0;
    }
    degs.sort_unstable();
    let total: usize = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: f64 =
        degs.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
    2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Relative edge-distribution entropy (Table II):
/// `(1/ln n) Σ_v −(d(v)/2m) ln(d(v)/2m)`, using the probability-normalized
/// degree shares (`Σ_v d(v) = 2m`), so the value lies in `[0, 1]` and equals
/// 1 for regular graphs.
pub fn edge_distribution_entropy(g: &Graph) -> f64 {
    let n = g.n();
    if n <= 1 || g.m() == 0 {
        return 0.0;
    }
    let two_m = g.total_volume() as f64;
    let h: f64 = g
        .degrees()
        .into_iter()
        .filter(|&d| d > 0)
        .map(|d| {
            let p = d as f64 / two_m;
            -p * p.ln()
        })
        .sum();
    h / (n as f64).ln()
}

/// Exact average shortest path length over all connected ordered pairs.
///
/// Returns 0.0 when no pair is connected.
pub fn aspl_exact(g: &Graph) -> f64 {
    let mut sum = 0usize;
    let mut cnt = 0usize;
    for v in 0..g.n() as NodeId {
        let (s, c) = traversal::distance_sum_from(g, v);
        sum += s;
        cnt += c;
    }
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

/// Sampled ASPL: BFS from `samples` random sources (deterministic in `seed`).
pub fn aspl_sampled(g: &Graph, samples: usize, seed: u64) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(samples.max(1).min(g.n()));
    let mut sum = 0usize;
    let mut cnt = 0usize;
    for &v in &nodes {
        let (s, c) = traversal::distance_sum_from(g, v);
        sum += s;
        cnt += c;
    }
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

/// Number of connected components (isolated nodes count).
pub fn num_connected_components(g: &Graph) -> usize {
    num_components(g)
}

/// Average local clustering coefficient (Watts–Strogatz):
/// mean over nodes of `2·t(v) / (d(v)(d(v)−1))`, where `t(v)` is the number
/// of triangles through `v`; nodes with degree < 2 contribute 0.
pub fn avg_clustering_coefficient(g: &Graph) -> f64 {
    let n = g.n();
    if n == 0 {
        return 0.0;
    }
    let tri = g.triangles_per_node();
    let mut acc = 0.0;
    for (v, &t) in tri.iter().enumerate() {
        let d = g.degree(v as NodeId);
        if d >= 2 {
            acc += 2.0 * t as f64 / (d as f64 * (d as f64 - 1.0));
        }
    }
    acc / n as f64
}

/// Computes a single metric. ASPL switches to sampling above
/// [`ASPL_EXACT_LIMIT`] nodes (seeded deterministically).
pub fn compute_metric(g: &Graph, metric: Metric) -> f64 {
    match metric {
        Metric::AvgDegree => avg_degree(g),
        Metric::Lcc => largest_cc_size(g) as f64,
        Metric::TriangleCount => triangle_count(g) as f64,
        Metric::Ple => power_law_exponent(g),
        Metric::Gini => gini_coefficient(g),
        Metric::Ede => edge_distribution_entropy(g),
        Metric::Aspl => {
            if g.n() <= ASPL_EXACT_LIMIT {
                aspl_exact(g)
            } else {
                aspl_sampled(g, DEFAULT_ASPL_SAMPLES, 0x5eed)
            }
        }
        Metric::Ncc => num_connected_components(g) as f64,
        Metric::Cc => avg_clustering_coefficient(g),
    }
}

/// All nine statistics of a graph, in [`Metric::ALL`] order.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricReport {
    /// Values indexed in `Metric::ALL` order.
    pub values: [f64; 9],
}

impl MetricReport {
    /// The value of one metric.
    pub fn get(&self, m: Metric) -> f64 {
        let idx = Metric::ALL.iter().position(|&x| x == m).expect("metric in ALL");
        self.values[idx]
    }

    /// `(metric, value)` pairs in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (Metric, f64)> + '_ {
        Metric::ALL.iter().copied().zip(self.values.iter().copied())
    }
}

impl std::fmt::Display for MetricReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (m, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{m}={v:.4}")?;
        }
        Ok(())
    }
}

/// Computes all nine statistics.
pub fn all_metrics(g: &Graph) -> MetricReport {
    let mut values = [0.0; 9];
    for (i, m) in Metric::ALL.iter().enumerate() {
        values[i] = compute_metric(g, *m);
    }
    MetricReport { values }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn avg_degree_k4() {
        assert!((avg_degree(&k4()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn avg_degree_empty() {
        assert_eq!(avg_degree(&Graph::empty(0)), 0.0);
        assert_eq!(avg_degree(&Graph::empty(5)), 0.0);
    }

    #[test]
    fn lcc_sizes() {
        assert_eq!(largest_cc_size(&k4()), 4);
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(largest_cc_size(&g), 3);
        assert_eq!(largest_cc_size(&Graph::empty(0)), 0);
    }

    #[test]
    fn ple_regular_graph_is_nan() {
        // All degrees equal: log-sum is zero, estimator undefined.
        assert!(power_law_exponent(&k4()).is_nan());
    }

    #[test]
    fn ple_star_graph() {
        // Star K_{1,5}: hub degree 5, leaves 1; PLE = 1 + 6/ln 5.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let expected = 1.0 + 6.0 / (5.0f64).ln();
        assert!((power_law_exponent(&g) - expected).abs() < 1e-9);
    }

    #[test]
    fn gini_regular_is_zero() {
        assert!(gini_coefficient(&k4()).abs() < 1e-12);
    }

    #[test]
    fn gini_star_positive() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let gini = gini_coefficient(&g);
        assert!(gini > 0.0 && gini < 1.0);
    }

    #[test]
    fn gini_monotone_in_inequality() {
        // A star is more unequal than a cycle on the same nodes.
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cycle = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(gini_coefficient(&star) > gini_coefficient(&cycle));
    }

    #[test]
    fn ede_regular_is_one() {
        assert!((edge_distribution_entropy(&k4()) - 1.0).abs() < 1e-12);
        let cycle = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!((edge_distribution_entropy(&cycle) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ede_in_unit_interval() {
        let star = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let e = edge_distribution_entropy(&star);
        assert!(e > 0.0 && e < 1.0, "ede={e}");
    }

    #[test]
    fn aspl_path() {
        // Path 0-1-2-3: pair distances 1,2,3,1,2,1 → mean 10/6.
        assert!((aspl_exact(&path4()) - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn aspl_complete_is_one() {
        assert!((aspl_exact(&k4()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aspl_sampled_full_equals_exact() {
        let g = path4();
        assert!((aspl_sampled(&g, 4, 7) - aspl_exact(&g)).abs() < 1e-12);
    }

    #[test]
    fn aspl_no_edges_zero() {
        assert_eq!(aspl_exact(&Graph::empty(4)), 0.0);
    }

    #[test]
    fn ncc_counts() {
        assert_eq!(num_connected_components(&k4()), 1);
        assert_eq!(num_connected_components(&Graph::empty(3)), 3);
    }

    #[test]
    fn clustering_complete_is_one() {
        assert!((avg_clustering_coefficient(&k4()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_tree_is_zero() {
        assert_eq!(avg_clustering_coefficient(&path4()), 0.0);
    }

    #[test]
    fn clustering_mixed() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        // c(0)=c(1)=1, c(2)=2*1/(3*2)=1/3, c(3)=0 → mean = (1+1+1/3)/4.
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 4.0;
        assert!((avg_clustering_coefficient(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn report_roundtrip() {
        let r = all_metrics(&k4());
        assert_eq!(r.get(Metric::AvgDegree), 3.0);
        assert_eq!(r.get(Metric::TriangleCount), 4.0);
        assert_eq!(r.get(Metric::Ncc), 1.0);
        assert_eq!(r.iter().count(), 9);
    }

    #[test]
    fn compute_metric_dispatch() {
        let g = k4();
        for m in Metric::ALL {
            let v = compute_metric(&g, m);
            if m == Metric::Ple {
                assert!(v.is_nan());
            } else {
                assert!(v.is_finite());
            }
        }
    }
}
