//! Discrepancy between an original and a generated graph (Eqs. 15–16).

use fairgen_graph::{ego_network, Graph, NodeSet};

use crate::stats::compute_metric;
use crate::Metric;

/// Relative discrepancy `|f(a) − f(b)| / |f(a)|` with guards:
/// * both values NaN (e.g. PLE of a regular graph) → 0.0 (no disagreement);
/// * one value NaN → 1.0 (maximal disagreement);
/// * `f(a) = 0` → absolute difference `|f(b)|`.
fn relative_discrepancy(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        _ => {}
    }
    if a == 0.0 {
        b.abs()
    } else {
        (a - b).abs() / a.abs()
    }
}

/// Overall discrepancy `R(G, G̃, f_m)` of Eq. 15 for one metric.
pub fn overall_discrepancy(original: &Graph, generated: &Graph, metric: Metric) -> f64 {
    relative_discrepancy(compute_metric(original, metric), compute_metric(generated, metric))
}

/// Overall discrepancy for all nine metrics, in [`Metric::ALL`] order.
pub fn overall_discrepancies(original: &Graph, generated: &Graph) -> [f64; 9] {
    let mut out = [0.0; 9];
    for (i, m) in Metric::ALL.iter().enumerate() {
        out[i] = overall_discrepancy(original, generated, *m);
    }
    out
}

/// Protected-group discrepancy `R⁺(G, G̃, S⁺, f_m)` of Eq. 16 for one metric.
///
/// Following the paper's evaluation section, `G_{S+}` and `G̃_{S+}` are the
/// 1-hop ego networks anchored at the protected-group vertices in the
/// respective graphs (node ids are shared between the graphs, as is the case
/// for all generators in this workspace: they preserve the vertex set).
pub fn protected_discrepancy(
    original: &Graph,
    generated: &Graph,
    protected: &NodeSet,
    metric: Metric,
) -> f64 {
    let (orig_ego, _) = ego_network(original, protected.members());
    let (gen_ego, _) = ego_network(generated, protected.members());
    relative_discrepancy(compute_metric(&orig_ego, metric), compute_metric(&gen_ego, metric))
}

/// Protected-group discrepancy for all nine metrics.
pub fn protected_discrepancies(
    original: &Graph,
    generated: &Graph,
    protected: &NodeSet,
) -> [f64; 9] {
    let (orig_ego, _) = ego_network(original, protected.members());
    let (gen_ego, _) = ego_network(generated, protected.members());
    let mut out = [0.0; 9];
    for (i, m) in Metric::ALL.iter().enumerate() {
        out[i] =
            relative_discrepancy(compute_metric(&orig_ego, *m), compute_metric(&gen_ego, *m));
    }
    out
}

/// Overall and protected discrepancies of one generated graph, with simple
/// aggregation helpers for the experiment harnesses.
#[derive(Clone, Debug)]
pub struct DiscrepancyReport {
    /// `R(G, G̃, f)` per metric in [`Metric::ALL`] order.
    pub overall: [f64; 9],
    /// `R⁺(G, G̃, S⁺, f)` per metric; `None` when no protected group exists.
    pub protected: Option<[f64; 9]>,
}

impl DiscrepancyReport {
    /// Computes both discrepancy families.
    pub fn compute(original: &Graph, generated: &Graph, protected: Option<&NodeSet>) -> Self {
        DiscrepancyReport {
            overall: overall_discrepancies(original, generated),
            protected: protected.map(|s| protected_discrepancies(original, generated, s)),
        }
    }

    /// Mean overall discrepancy across the nine metrics.
    pub fn mean_overall(&self) -> f64 {
        self.overall.iter().sum::<f64>() / 9.0
    }

    /// Mean protected discrepancy across the nine metrics, if available.
    pub fn mean_protected(&self) -> Option<f64> {
        self.protected.map(|p| p.iter().sum::<f64>() / 9.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_communities() -> (Graph, NodeSet) {
        // Dense community 0-3, sparse protected community 4-6, one bridge.
        let g = Graph::from_edges(
            7,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5), (5, 6), (3, 4)],
        );
        let s = NodeSet::from_members(7, &[4, 5, 6]);
        (g, s)
    }

    #[test]
    fn identical_graphs_zero_discrepancy() {
        let (g, s) = two_communities();
        let r = DiscrepancyReport::compute(&g, &g, Some(&s));
        for v in r.overall {
            assert!(v.abs() < 1e-12, "overall {v}");
        }
        for v in r.protected.unwrap() {
            assert!(v.abs() < 1e-12, "protected {v}");
        }
        assert_eq!(r.mean_overall(), 0.0);
        assert_eq!(r.mean_protected(), Some(0.0));
    }

    #[test]
    fn dropping_protected_edges_shows_in_r_plus() {
        let (g, s) = two_communities();
        // Generated graph keeps the dense community perfectly but loses the
        // protected community's internal edges.
        let gen =
            Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let r = DiscrepancyReport::compute(&g, &gen, Some(&s));
        let r_plus = r.protected.unwrap();
        // The protected ego-network discrepancy must exceed the overall mean
        // per-metric signal on average: the damage is concentrated in S+.
        assert!(
            r.mean_protected().unwrap() > r.mean_overall(),
            "protected {:?} overall {:?}",
            r_plus,
            r.overall
        );
    }

    #[test]
    fn relative_discrepancy_guards() {
        assert_eq!(relative_discrepancy(f64::NAN, f64::NAN), 0.0);
        assert_eq!(relative_discrepancy(f64::NAN, 1.0), 1.0);
        assert_eq!(relative_discrepancy(2.0, f64::NAN), 1.0);
        assert_eq!(relative_discrepancy(0.0, 3.0), 3.0);
        assert!((relative_discrepancy(4.0, 3.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn discrepancy_is_scale_free() {
        // Doubling a metric value gives discrepancy 1 regardless of scale.
        assert!((relative_discrepancy(10.0, 20.0) - 1.0).abs() < 1e-12);
        assert!((relative_discrepancy(0.1, 0.2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_protected_group_reports_none() {
        let (g, _) = two_communities();
        let r = DiscrepancyReport::compute(&g, &g, None);
        assert!(r.protected.is_none());
        assert!(r.mean_protected().is_none());
    }

    #[test]
    fn overall_matches_single_metric_calls() {
        let (g, _) = two_communities();
        let gen = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let all = overall_discrepancies(&g, &gen);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(all[i], overall_discrepancy(&g, &gen, *m));
        }
    }
}
