//! Group-wise metric breakdowns.
//!
//! Beyond the paper's R⁺ on ego networks, fairness audits often want the
//! raw statistics of each group's *own* subgraph (protected vs. unprotected
//! induced subgraphs) side by side, plus volume shares. This module packages
//! that view.

use fairgen_graph::{induced_subgraph, volume, Graph, NodeSet};

use crate::stats::{all_metrics, MetricReport};

/// The nine statistics computed on the full graph and on the two groups'
/// induced subgraphs, plus volume shares.
#[derive(Clone, Debug)]
pub struct GroupwiseReport {
    /// Statistics of the whole graph.
    pub overall: MetricReport,
    /// Statistics of the subgraph induced by `S⁺`.
    pub protected: MetricReport,
    /// Statistics of the subgraph induced by `S⁻`.
    pub unprotected: MetricReport,
    /// `vol(S⁺) / vol(V)` — the protected group's share of edge endpoints.
    pub protected_volume_share: f64,
    /// Number of edges with exactly one endpoint in `S⁺`.
    pub bridge_edges: usize,
}

impl GroupwiseReport {
    /// Computes the breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `protected`'s universe does not match the graph.
    pub fn compute(g: &Graph, protected: &NodeSet) -> Self {
        assert_eq!(protected.universe(), g.n(), "universe mismatch");
        let (sub_p, _) = induced_subgraph(g, protected.members());
        let complement = protected.complement();
        let (sub_u, _) = induced_subgraph(g, complement.members());
        let total_volume = g.total_volume().max(1);
        let bridge_edges =
            g.edges().filter(|&(u, v)| protected.contains(u) != protected.contains(v)).count();
        GroupwiseReport {
            overall: all_metrics(g),
            protected: all_metrics(&sub_p),
            unprotected: all_metrics(&sub_u),
            protected_volume_share: volume(g, protected) as f64 / total_volume as f64,
            bridge_edges,
        }
    }

    /// Ratio of the protected group's average degree (within its own
    /// subgraph) to the unprotected group's — a quick structural-inequality
    /// indicator (1.0 = both groups equally dense internally).
    pub fn internal_degree_ratio(&self) -> f64 {
        let up = self.unprotected.get(crate::Metric::AvgDegree);
        if up == 0.0 {
            f64::NAN
        } else {
            self.protected.get(crate::Metric::AvgDegree) / up
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    /// Dense unprotected triangle block + sparse protected pair + 1 bridge.
    fn setup() -> (Graph, NodeSet) {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (4, 5), (3, 4)]);
        let s = NodeSet::from_members(6, &[4, 5]);
        (g, s)
    }

    #[test]
    fn subgraph_metrics_computed_separately() {
        let (g, s) = setup();
        let r = GroupwiseReport::compute(&g, &s);
        assert_eq!(r.protected.get(Metric::AvgDegree), 1.0); // one edge, two nodes
        assert!(r.unprotected.get(Metric::TriangleCount) >= 1.0);
        assert_eq!(r.overall.get(Metric::Ncc), 1.0);
    }

    #[test]
    fn volume_share_and_bridges() {
        let (g, s) = setup();
        let r = GroupwiseReport::compute(&g, &s);
        // vol(S+) = deg(4)+deg(5) = 2+1 = 3; total volume = 12.
        assert!((r.protected_volume_share - 3.0 / 12.0).abs() < 1e-12);
        assert_eq!(r.bridge_edges, 1);
    }

    #[test]
    fn degree_ratio_flags_sparse_minority() {
        let (g, s) = setup();
        let r = GroupwiseReport::compute(&g, &s);
        assert!(
            r.internal_degree_ratio() < 1.0,
            "minority is internally sparser: {}",
            r.internal_degree_ratio()
        );
    }

    #[test]
    fn balanced_groups_ratio_near_one() {
        // Two identical triangles.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let s = NodeSet::from_members(6, &[3, 4, 5]);
        let r = GroupwiseReport::compute(&g, &s);
        assert!((r.internal_degree_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(r.bridge_edges, 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let (g, _) = setup();
        let wrong = NodeSet::from_members(4, &[0]);
        let _ = GroupwiseReport::compute(&g, &wrong);
    }
}
