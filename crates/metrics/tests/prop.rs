//! Property-based tests for the nine statistics and the discrepancies.

use fairgen_graph::{Graph, NodeSet};
use fairgen_metrics::{
    all_metrics, aspl_exact, avg_clustering_coefficient, avg_degree, edge_distribution_entropy,
    gini_coefficient, largest_cc_size, num_connected_components, overall_discrepancies,
    protected_discrepancies, Metric,
};
use proptest::prelude::*;

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gini_in_unit_interval(g in arb_graph(24, 80)) {
        let gini = gini_coefficient(&g);
        prop_assert!((0.0..=1.0).contains(&gini), "gini = {}", gini);
    }

    #[test]
    fn ede_in_unit_interval(g in arb_graph(24, 80)) {
        let e = edge_distribution_entropy(&g);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&e), "ede = {}", e);
    }

    #[test]
    fn clustering_in_unit_interval(g in arb_graph(20, 60)) {
        let cc = avg_clustering_coefficient(&g);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&cc), "cc = {}", cc);
    }

    #[test]
    fn lcc_and_ncc_consistency(g in arb_graph(24, 80)) {
        let lcc = largest_cc_size(&g);
        let ncc = num_connected_components(&g);
        prop_assert!(lcc >= 1 && lcc <= g.n());
        prop_assert!(ncc >= 1 && ncc <= g.n());
        // The largest component plus the remaining components cover n.
        prop_assert!(lcc + (ncc - 1) <= g.n());
    }

    #[test]
    fn aspl_at_least_one_when_edges_exist(g in arb_graph(16, 50)) {
        prop_assume!(g.m() > 0);
        let aspl = aspl_exact(&g);
        prop_assert!(aspl >= 1.0, "aspl = {}", aspl);
        // Diameter bound: at most n-1.
        prop_assert!(aspl <= (g.n() - 1) as f64);
    }

    #[test]
    fn avg_degree_matches_handshake(g in arb_graph(24, 80)) {
        prop_assert!((avg_degree(&g) - 2.0 * g.m() as f64 / g.n() as f64).abs() < 1e-12);
    }

    #[test]
    fn self_discrepancy_is_zero(g in arb_graph(16, 50)) {
        let r = overall_discrepancies(&g, &g);
        for (m, v) in Metric::ALL.iter().zip(r.iter()) {
            prop_assert!(v.abs() < 1e-12, "{} self-discrepancy {}", m, v);
        }
    }

    #[test]
    fn protected_self_discrepancy_is_zero(g in arb_graph(16, 50)) {
        let members: Vec<u32> = (0..g.n() as u32 / 3).collect();
        prop_assume!(!members.is_empty());
        let s = NodeSet::from_members(g.n(), &members);
        let r = protected_discrepancies(&g, &g, &s);
        for v in r {
            prop_assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn discrepancies_nonnegative(a in arb_graph(14, 40), b in arb_graph(14, 40)) {
        prop_assume!(a.n() == b.n());
        let r = overall_discrepancies(&a, &b);
        for v in r {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn report_values_match_singletons(g in arb_graph(14, 40)) {
        let report = all_metrics(&g);
        for (m, v) in report.iter() {
            let direct = fairgen_metrics::compute_metric(&g, m);
            if v.is_nan() {
                prop_assert!(direct.is_nan());
            } else {
                prop_assert_eq!(v, direct);
            }
        }
    }
}
