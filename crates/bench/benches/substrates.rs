//! Criterion microbenchmarks for the hot substrates: walk sampling, metric
//! computation, assembly, and one training step of each neural model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fairgen_data::Dataset;
use fairgen_graph::{NodeSet, TransitionOp};
use fairgen_metrics::all_metrics;
use fairgen_nn::param::HasParams;
use fairgen_nn::{Activation, Adam, LstmLm, Mat, Mlp, TransformerConfig, TransformerLm};
use fairgen_walks::{diffusion_core, Node2VecWalker, ScoreMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_walks(c: &mut Criterion) {
    let lg = Dataset::Ca.generate(1);
    let g = lg.graph;
    let walker = Node2VecWalker::new(1.0, 2.0);
    c.bench_function("node2vec_walk_T10", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| walker.walk(&g, 0, 10, &mut rng))
    });
    c.bench_function("walk_corpus_100xT10", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| walker.walk_corpus(&g, 100, 10, &mut rng))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let lg = Dataset::Ca.generate(1);
    let g = lg.graph;
    c.bench_function("all_nine_metrics_CA", |b| b.iter(|| all_metrics(&g)));
    c.bench_function("triangle_count_CA", |b| b.iter(|| g.triangle_count()));
}

fn bench_assembly(c: &mut Criterion) {
    let lg = Dataset::Ca.generate(1);
    let g = lg.graph;
    let walker = Node2VecWalker::default();
    let mut rng = StdRng::seed_from_u64(3);
    let walks = walker.walk_corpus(&g, 2000, 10, &mut rng);
    c.bench_function("assemble_CA", |b| {
        b.iter_batched(
            || {
                let mut s = ScoreMatrix::new(g.n());
                s.add_walks(&walks);
                (s, StdRng::seed_from_u64(4))
            },
            |(s, mut rng)| s.assemble(g.m(), &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_diffusion(c: &mut Criterion) {
    let lg = Dataset::Blog.generate(1);
    let g = lg.graph;
    let s = lg.protected.unwrap();
    c.bench_function("diffusion_core_BLOG", |b| b.iter(|| diffusion_core(&g, &s, 0.9, 3)));
    let op = TransitionOp::new(&g);
    let full = NodeSet::full(g.n());
    c.bench_function("transition_matvec_BLOG", |b| {
        let v = vec![1.0 / g.n() as f64; g.n()];
        b.iter(|| op.apply_restricted(&v, &full))
    });
}

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = TransformerConfig { vocab: 400, d_model: 32, heads: 4, layers: 1, max_len: 12 };
    let mut lm = TransformerLm::new(cfg, &mut rng);
    let mut opt = Adam::new(0.01);
    let seq: Vec<usize> = (0..10).map(|i| (i * 37) % 400).collect();
    c.bench_function("transformer_train_step_n400", |b| {
        b.iter(|| {
            lm.zero_grad();
            lm.train_step(&seq, 1.0);
            opt.step(&mut lm);
        })
    });
    c.bench_function("transformer_sample_T10", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| lm.sample(10, 1.0, &mut rng).expect("sample"))
    });
    let mut lstm = LstmLm::new(400, 32, 48, &mut rng);
    let mut opt2 = Adam::new(0.01);
    c.bench_function("lstm_train_step_n400", |b| {
        b.iter(|| {
            lstm.zero_grad();
            lstm.train_step(&seq, 1.0);
            opt2.step(&mut lstm);
        })
    });
    let mut mlp = Mlp::new(&[32, 64, 64, 9], Activation::Tanh, &mut rng);
    let x = Mat::from_fn(128, 32, |r, c| ((r + c) as f64 * 0.1).sin());
    let targets: Vec<usize> = (0..128).map(|i| i % 9).collect();
    c.bench_function("mlp_batch128_step", |b| {
        b.iter(|| {
            mlp.zero_grad();
            let logits = mlp.forward(&x);
            let (_, d) = fairgen_nn::cross_entropy(&logits, &targets, None);
            mlp.backward(&d);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_walks, bench_metrics, bench_assembly, bench_diffusion, bench_models
}
criterion_main!(benches);
