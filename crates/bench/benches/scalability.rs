//! Criterion re-expression of the Figure-8 scalability series (training-step
//! cost versus node count / edge density) and Table-IV-style end-to-end
//! fit+generate timings at a micro budget. The full wall-clock artifacts are
//! produced by the `fig8_scalability` and `tab4_runtime` binaries; these
//! groups track the same shapes with statistical rigor at a size Criterion
//! can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairgen_baselines::{BaGenerator, ErGenerator, GraphGenerator, TaskSpec};
use fairgen_core::{FairGen, FairGenConfig};
use fairgen_data::er_by_density;
use fairgen_nn::param::HasParams;
use fairgen_nn::{Adam, TransformerConfig, TransformerLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator step cost grows ~linearly with the vocabulary (node count):
/// the Figure-8(a) shape at the model level.
fn bench_step_vs_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_train_step_vs_nodes");
    for n in [250usize, 500, 1000, 2000] {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TransformerConfig { vocab: n, d_model: 16, heads: 2, layers: 1, max_len: 12 };
        let mut lm = TransformerLm::new(cfg, &mut rng);
        let mut opt = Adam::new(0.01);
        let seq: Vec<usize> = (0..10).map(|i| (i * 31) % n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                lm.zero_grad();
                lm.train_step(&seq, 1.0);
                opt.step(&mut lm);
            })
        });
    }
    group.finish();
}

/// End-to-end micro-budget fit+generate: the Table-IV ordering
/// (ER ≈ BA ≪ FairGen) at Criterion scale.
fn bench_fit_generate(c: &mut Criterion) {
    let g = er_by_density(300, 0.02, 3);
    let task = TaskSpec::unlabeled();
    let mut group = c.benchmark_group("tab4_fit_generate_micro");
    group.sample_size(10);
    group.bench_function("ER", |b| {
        b.iter(|| ErGenerator.fit_generate(&g, &task, 1).expect("valid"))
    });
    group.bench_function("BA", |b| {
        b.iter(|| BaGenerator.fit_generate(&g, &task, 1).expect("valid"))
    });
    let cfg = FairGenConfig {
        num_walks: 50,
        cycles: 1,
        gen_epochs: 1,
        pool_cap: 100,
        gen_multiplier: 1,
        d_model: 16,
        heads: 2,
        walk_len: 6,
        ..Default::default()
    };
    group.bench_function("FairGen_micro", |b| {
        b.iter(|| {
            let t = FairGen::new(cfg).train(&g, &task, 1).expect("valid");
            t.generate(2).expect("generate")
        })
    });
    // The fit-once/generate-many split the two-phase API exists for: one
    // trained model amortizing across draws.
    let trained = FairGen::new(cfg).train(&g, &task, 1).expect("valid");
    group.bench_function("FairGen_generate_only", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            trained.generate(seed).expect("generate")
        })
    });
    group.finish();
}

/// Walk-corpus sampling versus edge density: the Figure-8(b) shape at the
/// substrate level.
fn bench_corpus_vs_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_corpus_vs_density");
    for (i, density) in [0.005f64, 0.02, 0.05].iter().enumerate() {
        let g = er_by_density(800, *density, 11 + i as u64);
        let walker = fairgen_walks::Node2VecWalker::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{density}")),
            density,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| walker.walk_corpus(&g, 200, 10, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_step_vs_nodes, bench_fit_generate, bench_corpus_vs_density
}
criterion_main!(benches);
