//! Criterion microbenchmarks for the multi-core fan-outs: batch walk
//! sampling across pool widths and parallel score-matrix assembly. On a
//! single-core container the widths collapse to time-slicing — run on a
//! multi-core box for real scaling curves (see `BENCH_sampling.json`'s
//! `parallel` section for the tracked numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairgen_nn::sample::{predraw_walks, sample_walk_batch};
use fairgen_nn::{TransformerConfig, TransformerLm};
use fairgen_par::ThreadPool;
use fairgen_walks::ScoreMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quickstart_lm() -> TransformerLm {
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = TransformerConfig { vocab: 400, d_model: 32, heads: 4, layers: 1, max_len: 256 };
    TransformerLm::new(cfg, &mut rng)
}

fn bench_batch_sampling(c: &mut Criterion) {
    let lm = quickstart_lm();
    let (count, len) = (64usize, 50usize);
    let mut group = c.benchmark_group("parallel_sample_batch");
    for &threads in &[1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let draws = predraw_walks(&mut rng, count, len);
                sample_walk_batch(&pool, &lm, count, len, 1.0, &draws).expect("batch")
            })
        });
    }
    group.finish();
}

fn bench_parallel_assembly(c: &mut Criterion) {
    let n = 400usize;
    let mut rng = StdRng::seed_from_u64(10);
    let walks: Vec<Vec<usize>> =
        (0..2000).map(|_| (0..10).map(|_| rng.gen_range(0..n)).collect()).collect();
    let mut group = c.benchmark_group("parallel_score_matrix");
    for &threads in &[1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| ScoreMatrix::from_token_walks(&pool, n, &walks))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sampling, bench_parallel_assembly);
criterion_main!(benches);
