//! Criterion microbenchmarks for the sampling hot path: KV-cached
//! incremental decoding versus the full-forward reference, per-token decode
//! cost across prefix lengths, and the blocked matmul kernel at the paper's
//! shapes (`d_model` 100, walk length 10; scaled presets use 32–64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairgen_nn::{LstmLm, Mat, TransformerConfig, TransformerLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quickstart_lm() -> TransformerLm {
    // The quickstart config: d_model 32, 4 heads, 1 block, vocab sized like
    // the scaled CA benchmark graph. max_len is widened so one model serves
    // every walk length under test.
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = TransformerConfig { vocab: 400, d_model: 32, heads: 4, layers: 1, max_len: 256 };
    TransformerLm::new(cfg, &mut rng)
}

fn bench_transformer_decode(c: &mut Criterion) {
    let mut lm = quickstart_lm();
    let mut group = c.benchmark_group("transformer_sample");
    for &len in &[10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::new("incremental", len), &len, |b, &len| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| lm.sample(len, 1.0, &mut rng).expect("sample"))
        });
    }
    // The reference path is O(T²·d) — only bench the short lengths.
    for &len in &[10usize, 50] {
        group.bench_with_input(BenchmarkId::new("full_forward", len), &len, |b, &len| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| lm.sample_ref(len, 1.0, &mut rng).expect("sample"))
        });
    }
    group.finish();
}

fn bench_lstm_decode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut lm = LstmLm::new(400, 32, 48, &mut rng);
    let mut group = c.benchmark_group("lstm_sample");
    for &len in &[10usize, 50] {
        group.bench_with_input(BenchmarkId::new("state_carry", len), &len, |b, &len| {
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| lm.sample(len, 1.0, &mut rng).expect("sample"))
        });
        group.bench_with_input(BenchmarkId::new("full_forward", len), &len, |b, &len| {
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| lm.sample_ref(len, 1.0, &mut rng).expect("sample"))
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    // (T+1)×d · d×d projection, d×4d FFN, and T×d · d×vocab head shapes at
    // the paper width (100) and the scaled preset (32), plus one k-panel
    // crossing case.
    let shapes: &[(usize, usize, usize)] =
        &[(11, 32, 32), (11, 100, 100), (11, 100, 400), (11, 400, 100), (51, 64, 256)];
    for &(m, k, n) in shapes {
        let a = Mat::from_fn(m, k, |r, c| ((r * k + c) as f64 * 0.37).sin());
        let b_m = Mat::from_fn(k, n, |r, c| ((r * n + c) as f64 * 0.59).cos());
        let mut out = Mat::zeros(m, n);
        group.bench_with_input(
            BenchmarkId::new("matmul_into", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| a.matmul_into(&b_m, &mut out)),
        );
    }
    for &(m, k, n) in &[(11usize, 32usize, 32usize), (11, 100, 100)] {
        let a = Mat::from_fn(m, k, |r, c| ((r * k + c) as f64 * 0.41).sin());
        let b_m = Mat::from_fn(n, k, |r, c| ((r * k + c) as f64 * 0.23).cos());
        group.bench_with_input(
            BenchmarkId::new("matmul_nt_packed", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| a.matmul_nt(&b_m)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_transformer_decode, bench_lstm_decode, bench_matmul
}
criterion_main!(benches);
