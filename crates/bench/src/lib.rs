//! Experiment harness for the FairGen reproduction.
//!
//! One binary per table/figure of the paper lives in `src/bin/`:
//!
//! | binary             | paper artifact                                   |
//! |--------------------|--------------------------------------------------|
//! | `fig1_disparity`   | Fig. 1 / Fig. 9 — representation disparity        |
//! | `fig4_overall`     | Fig. 4 — overall discrepancy, 9 metrics × 7 sets  |
//! | `fig5_protected`   | Fig. 5 — protected discrepancy, 3 labeled sets    |
//! | `tab3_ablation`    | Table III — f_S vs negative sampling              |
//! | `fig6_augmentation`| Fig. 6 — data augmentation for classification     |
//! | `fig7_sensitivity` | Fig. 7 — loss vs T, r, λ                          |
//! | `fig8_scalability` | Fig. 8 — runtime vs #nodes and edge density       |
//! | `tab4_runtime`     | Table IV — running time of every method           |
//! | `lemma21_bound`    | Lemma 2.1 — empirical containment vs the bound    |
//!
//! Run them with `cargo run -p fairgen-bench --release --bin <name>`.
//! Set `FAIRGEN_SCALE` (default `1.0`) to scale training budgets up or down;
//! the printed tables note the scale used. EXPERIMENTS.md records a
//! paper-vs-measured comparison for every artifact.

use fairgen_baselines::{
    BaGenerator, ErGenerator, GaeGenerator, GraphGenerator, NetGanGenerator, TagGenGenerator,
    TaskSpec, WalkLmBudget,
};
use fairgen_core::{FairGenConfig, FairGenGenerator, FairGenVariant};
use fairgen_data::LabeledGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Budget scale from the `FAIRGEN_SCALE` environment variable (default 1.0).
pub fn budget_scale() -> f64 {
    std::env::var("FAIRGEN_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

/// The FairGen training budget used by the experiment binaries.
pub fn bench_fairgen_config(scale: f64) -> FairGenConfig {
    let mut cfg = FairGenConfig::default();
    cfg.num_walks = scaled(600, scale);
    cfg.cycles = 2;
    cfg.gen_epochs = 3;
    cfg.pool_cap = 3 * cfg.num_walks;
    cfg.gen_multiplier = 4;
    cfg.lr = 0.02;
    cfg.q = 0.5;
    cfg
}

/// The walk-LM baseline budget used by the experiment binaries.
pub fn bench_walklm_budget(scale: f64) -> WalkLmBudget {
    WalkLmBudget {
        walk_len: 10,
        train_walks: scaled(700, scale),
        epochs: 3,
        negative_weight: 0.3,
        gen_multiplier: 4,
        lr: 0.02,
    }
}

/// The GAE budget used by the experiment binaries.
pub fn bench_gae(scale: f64) -> GaeGenerator {
    GaeGenerator { dim: 24, epochs: scaled(40, scale), lr: 0.05 }
}

/// The [`TaskSpec`] the experiment binaries hand to every generator:
/// few-shot labels sampled deterministically in `seed` (when the dataset is
/// labeled) plus the protected group.
pub fn bench_task(lg: &LabeledGraph, seed: u64) -> TaskSpec {
    let labeled = if lg.labels.is_some() {
        let mut rng = StdRng::seed_from_u64(seed);
        lg.sample_few_shot_labels(4, &mut rng).expect("dataset is labeled")
    } else {
        Vec::new()
    };
    TaskSpec::new(labeled, lg.num_classes, lg.protected.clone())
}

/// The full method roster of Figures 4–6: two random models, three deep
/// baselines, FairGen and its three ablations (the paper's leftmost bars).
/// Task metadata travels separately — build it once with [`bench_task`] and
/// pass it to every `fit` / `fit_generate` call.
pub fn method_roster(scale: f64) -> Vec<Box<dyn GraphGenerator>> {
    let cfg = bench_fairgen_config(scale);
    let fairgen = |variant: FairGenVariant| -> Box<dyn GraphGenerator> {
        Box::new(FairGenGenerator::new(cfg).with_variant(variant))
    };
    vec![
        fairgen(FairGenVariant::Full),
        fairgen(FairGenVariant::RandomSampling),
        fairgen(FairGenVariant::NoSelfPaced),
        fairgen(FairGenVariant::NoParity),
        Box::new(GaeGenerator { ..bench_gae(scale) }),
        Box::new(NetGanGenerator { budget: bench_walklm_budget(scale), ..Default::default() }),
        Box::new(TagGenGenerator { budget: bench_walklm_budget(scale), ..Default::default() }),
        Box::new(ErGenerator),
        Box::new(BaGenerator),
    ]
}

/// Prints a Markdown-ish table row.
pub fn print_row<S: std::fmt::Display>(label: &str, cells: &[S]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>9}");
    }
    println!();
}

/// Formats an `f64` to 4 decimals for table cells.
pub fn fmt4(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else {
        format!("{v:.4}")
    }
}

/// Prints the standard experiment header.
pub fn header(artifact: &str, description: &str) {
    let scale = budget_scale();
    println!("=== {artifact} — {description} ===");
    println!("(budget scale {scale}; smaller is faster, paper-fidelity at 1.0)");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::Dataset;

    #[test]
    fn roster_has_nine_methods_and_task_matches_dataset() {
        let roster = method_roster(0.1);
        assert_eq!(roster.len(), 9);
        let names: Vec<&str> = roster.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"FairGen"));
        assert!(names.contains(&"FairGen-R"));
        assert!(names.contains(&"ER"));
        assert!(names.contains(&"TagGen"));
        let lg = Dataset::Blog.generate(1);
        let task = bench_task(&lg, 1);
        assert!(task.has_labels());
        assert!(task.protected.is_some());
        assert!(task.validate(&lg.graph).is_ok());
        let unlabeled = Dataset::Ca.generate(1);
        assert!(!bench_task(&unlabeled, 1).has_labels());
    }

    #[test]
    fn budget_scaling_shrinks_walks() {
        let full = bench_fairgen_config(1.0);
        let small = bench_fairgen_config(0.25);
        assert!(small.num_walks < full.num_walks);
        assert_eq!(small.num_walks, 150);
    }

    #[test]
    fn fmt4_handles_nan() {
        assert_eq!(fmt4(f64::NAN), "nan");
        assert_eq!(fmt4(0.12345), "0.1235");
    }
}
