//! Figure 7 — parameter sensitivity: the overall loss `J`, generator loss
//! `J_G`, and discriminator loss `J_P + J_L + J_F + J_S` as functions of
//! walk length `T` and sampling ratio `r` (panels a–c), and the overall loss
//! as a function of the learning threshold `−λ` (panel d).
//!
//! Runs on the three-class toy graph (so J_P/J_L/J_F are non-trivial and
//! the 2-D grid completes quickly);
//! the paper's qualitative shapes (smooth J, generator-dominated loss,
//! discriminator loss peaking at r ≈ 0.5, lower J for confident −λ) are
//! what EXPERIMENTS.md compares.

use fairgen_bench::header;
use fairgen_core::{FairGen, FairGenConfig, TaskSpec};
use fairgen_data::toy_multiclass;
use fairgen_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn input() -> (Graph, TaskSpec) {
    let lg = toy_multiclass(42);
    let mut rng = StdRng::seed_from_u64(7);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
}

fn run(cfg: FairGenConfig, g: &Graph, task: &TaskSpec) -> (f64, f64, f64) {
    let trained = FairGen::new(cfg).train(g, task, 11).expect("benchmark inputs are valid");
    let obj = trained.final_objective().expect("has cycles");
    (obj.total(), obj.j_g, obj.discriminator_part())
}

fn main() {
    header("Figure 7", "sensitivity of J, J_G, J_disc to T, r, and lambda");
    let (g, task) = input();
    let base = FairGenConfig {
        num_walks: 200,
        cycles: 2,
        gen_epochs: 2,
        pool_cap: 600,
        d_model: 16,
        heads: 2,
        lr: 0.02,
        ..Default::default()
    };

    println!("(a–c) grid over walk length T and sampling ratio r:");
    println!("{:>4} {:>5} {:>10} {:>10} {:>10}", "T", "r", "J", "J_G", "J_disc");
    for walk_len in [4usize, 6, 8, 10, 12] {
        for r in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut cfg = base;
            cfg.walk_len = walk_len;
            cfg.ratio_r = r;
            let (j, j_g, j_d) = run(cfg, &g, &task);
            println!("{walk_len:>4} {r:>5.2} {j:>10.4} {j_g:>10.4} {j_d:>10.4}");
        }
    }

    println!();
    println!("(d) overall loss J vs learning threshold -lambda:");
    println!("{:>8} {:>10}", "-lambda", "J");
    for neg_lambda in [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0] {
        let mut cfg = base;
        cfg.lambda_init = neg_lambda;
        cfg.lambda_growth = 1.0;
        let (j, _, _) = run(cfg, &g, &task);
        println!("{neg_lambda:>8.2} {j:>10.4}");
    }
}
