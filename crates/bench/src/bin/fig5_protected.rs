//! Figure 5 — protected-group discrepancy `R⁺(G, G̃, S⁺, f)` for nine
//! metrics on the three labeled datasets (BLOG, FLICKR, ACM), all methods.
//!
//! The paper's headline fairness result: FairGen should dominate (smallest
//! discrepancy) on the protected subgraphs.

use fairgen_bench::{bench_task, budget_scale, fmt4, header, method_roster, print_row};
use fairgen_data::Dataset;
use fairgen_metrics::{protected_discrepancies, Metric};

fn main() {
    header("Figure 5", "protected discrepancy R+(G, G~, S+, f_m)");
    let scale = budget_scale();
    for ds in Dataset::LABELED {
        let lg = ds.generate(42);
        let protected = lg.protected.clone().expect("labeled dataset has S+");
        println!(
            "--- {} (n={}, m={}, |S+|={}) ---",
            lg.name,
            lg.graph.n(),
            lg.graph.m(),
            protected.len()
        );
        let task = bench_task(&lg, 42);
        let metric_names: Vec<String> =
            Metric::ALL.iter().map(|m| m.abbrev().to_string()).collect();
        print_row("method", &metric_names);
        let mut fairgen_mean = f64::NAN;
        let mut best_other = f64::INFINITY;
        for method in method_roster(scale) {
            let generated = method
                .fit_generate(&lg.graph, &task, 1234)
                .expect("benchmark inputs are valid");
            let r = protected_discrepancies(&lg.graph, &generated, &protected);
            let mean = r.iter().sum::<f64>() / 9.0;
            if method.name() == "FairGen" {
                fairgen_mean = mean;
            } else {
                best_other = best_other.min(mean);
            }
            let cells: Vec<String> = r.iter().map(|&v| fmt4(v)).collect();
            print_row(method.name(), &cells);
        }
        println!(
            "summary: FairGen mean R+ = {:.4}; best competitor mean R+ = {:.4} → {}",
            fairgen_mean,
            best_other,
            if fairgen_mean <= best_other {
                "FairGen wins (paper shape holds)"
            } else {
                "competitor wins"
            }
        );
        println!();
    }
}
