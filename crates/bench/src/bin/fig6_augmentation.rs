//! Figure 6 — data augmentation for node classification on BLOG / ACM /
//! FLICKR: a node2vec + logistic-regression classifier is trained on the
//! original graph, then on the graph augmented with 5% generator-proposed
//! edges, with accuracy (mean ± std over stratified folds) reported per
//! generator. Larger is better; the paper's headline is a ≈17% boost for
//! FairGen on BLOG.

use fairgen_bench::{budget_scale, header, method_roster};
use fairgen_data::Dataset;
use fairgen_embed::{accuracy, augment_graph, stratified_kfold, LogisticRegression, Node2Vec, Node2VecConfig};
use fairgen_graph::Graph;
use fairgen_nn::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FOLDS: usize = 10;
const EXTRA_FRAC: f64 = 0.05;

/// Embeds `g`, then k-fold evaluates logistic regression on `labels`.
/// Evaluation runs in the *scarce-signal* regime (few short walks, small
/// embedding) — the setting where extra structure from augmentation can
/// actually move the classifier, mirroring the paper's label-scarce setup.
fn evaluate(g: &Graph, labels: &[usize], num_classes: usize, seed: u64) -> (f64, f64) {
    let n2v_cfg = Node2VecConfig {
        dim: 16,
        walks_per_node: 2,
        walk_len: 8,
        epochs: 1,
        ..Default::default()
    };
    let emb = Node2Vec::train(g, &n2v_cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let folds = stratified_kfold(labels, FOLDS, &mut rng);
    let mut accs = Vec::with_capacity(FOLDS);
    for (train, test) in folds {
        let xtr = Mat::from_fn(train.len(), emb.vectors.cols(), |r, c| {
            emb.vectors.get(train[r], c)
        });
        let ytr: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let clf = LogisticRegression::fit(&xtr, &ytr, num_classes, 40, 0.05, seed);
        let xte = Mat::from_fn(test.len(), emb.vectors.cols(), |r, c| {
            emb.vectors.get(test[r], c)
        });
        let yte: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        accs.push(accuracy(&clf.predict(&xte), &yte));
    }
    fairgen_embed::eval::mean_std(&accs)
}

fn main() {
    header("Figure 6", "data augmentation for node classification (+5% edges)");
    let scale = budget_scale();
    for ds in [Dataset::Blog, Dataset::Acm, Dataset::Flickr] {
        let lg = ds.generate(42);
        let labels = lg.labels.clone().expect("labeled dataset");
        println!("--- {} ---", lg.name);
        let (base_acc, base_std) = evaluate(&lg.graph, &labels, lg.num_classes, 7);
        println!(
            "{:<22} acc {:.4} ± {:.4}  (the red dotted line)",
            "No Augmentation", base_acc, base_std
        );
        for method in method_roster(&lg, scale, 42) {
            let generated = method.fit_generate(&lg.graph, 1234);
            let mut rng = StdRng::seed_from_u64(99);
            let augmented = augment_graph(&lg.graph, &generated, EXTRA_FRAC, &mut rng);
            let (acc, std) = evaluate(&augmented, &labels, lg.num_classes, 7);
            println!(
                "{:<22} acc {:.4} ± {:.4}  (Δ vs no-aug: {:+.4})",
                method.name(),
                acc,
                std,
                acc - base_acc
            );
        }
        println!();
    }
}
