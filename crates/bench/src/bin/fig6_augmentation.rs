//! Figure 6 — data augmentation for node classification on BLOG / ACM /
//! FLICKR: a node2vec + logistic-regression classifier is trained on the
//! original graph, then on the graph augmented with 5% generator-proposed
//! edges, with accuracy (mean ± std over stratified folds) reported per
//! generator. Larger is better; the paper's headline is a ≈17% boost for
//! FairGen on BLOG.
//!
//! This binary also showcases the two-phase generator API: each method is
//! fitted **once** and then sampled [`SAMPLES`] times via `generate_batch`
//! (the paper draws several synthetic graphs per trained model), with the
//! accuracy averaged over draws and the wall-clock win of amortized
//! sampling over naive refitting reported per method.

use std::time::Instant;

use fairgen_bench::{bench_task, budget_scale, header, method_roster};
use fairgen_data::Dataset;
use fairgen_embed::{
    accuracy, augment_graph, stratified_kfold, LogisticRegression, Node2Vec, Node2VecConfig,
};
use fairgen_graph::Graph;
use fairgen_nn::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FOLDS: usize = 10;
const EXTRA_FRAC: f64 = 0.05;
/// Synthetic graphs drawn per fitted model (the fit-once/generate-many
/// amortization the two-phase API exists for).
const SAMPLES: u64 = 3;

/// Embeds `g`, then k-fold evaluates logistic regression on `labels`.
/// Evaluation runs in the *scarce-signal* regime (few short walks, small
/// embedding) — the setting where extra structure from augmentation can
/// actually move the classifier, mirroring the paper's label-scarce setup.
fn evaluate(g: &Graph, labels: &[usize], num_classes: usize, seed: u64) -> (f64, f64) {
    let n2v_cfg = Node2VecConfig {
        dim: 16,
        walks_per_node: 2,
        walk_len: 8,
        epochs: 1,
        ..Default::default()
    };
    let emb = Node2Vec::train(g, &n2v_cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let folds = stratified_kfold(labels, FOLDS, &mut rng);
    let mut accs = Vec::with_capacity(FOLDS);
    for (train, test) in folds {
        let xtr =
            Mat::from_fn(train.len(), emb.vectors.cols(), |r, c| emb.vectors.get(train[r], c));
        let ytr: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let clf = LogisticRegression::fit(&xtr, &ytr, num_classes, 40, 0.05, seed);
        let xte =
            Mat::from_fn(test.len(), emb.vectors.cols(), |r, c| emb.vectors.get(test[r], c));
        let yte: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        accs.push(accuracy(&clf.predict(&xte), &yte));
    }
    fairgen_embed::eval::mean_std(&accs)
}

fn main() {
    header("Figure 6", "data augmentation for node classification (+5% edges)");
    let scale = budget_scale();
    println!("({SAMPLES} synthetic draws per fitted model; accuracy averaged over draws)");
    println!();
    for ds in [Dataset::Blog, Dataset::Acm, Dataset::Flickr] {
        let lg = ds.generate(42);
        let labels = lg.labels.clone().expect("labeled dataset");
        let task = bench_task(&lg, 42);
        println!("--- {} ---", lg.name);
        let (base_acc, base_std) = evaluate(&lg.graph, &labels, lg.num_classes, 7);
        println!(
            "{:<22} acc {:.4} ± {:.4}  (the red dotted line)",
            "No Augmentation", base_acc, base_std
        );
        for method in method_roster(scale) {
            // Phase 1: fit once (the expensive part).
            let fit_start = Instant::now();
            let mut fitted =
                method.fit(&lg.graph, &task, 1234).expect("benchmark inputs are valid");
            let fit_secs = fit_start.elapsed().as_secs_f64();

            // Phase 2: draw SAMPLES graphs from the single fitted model.
            let gen_start = Instant::now();
            let seeds: Vec<u64> = (0..SAMPLES).map(|i| 1235 + i).collect();
            let generated = fitted
                .generate_batch(&seeds)
                .expect("generation is infallible on fitted models");
            let gen_secs = gen_start.elapsed().as_secs_f64();

            // Per-draw accuracy plus the draw's own fold std, so the ±
            // column stays a fold std — comparable to the baseline row.
            let mut accs = Vec::with_capacity(generated.len());
            let mut fold_stds = Vec::with_capacity(generated.len());
            for (i, sample) in generated.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(99 + i as u64);
                let augmented = augment_graph(&lg.graph, sample, EXTRA_FRAC, &mut rng);
                let (acc, fold_std) = evaluate(&augmented, &labels, lg.num_classes, 7);
                accs.push(acc);
                fold_stds.push(fold_std);
            }
            let (acc, _) = fairgen_embed::eval::mean_std(&accs);
            let std = fold_stds.iter().sum::<f64>() / fold_stds.len() as f64;

            // Amortization: naive per-sample refitting would pay the fit
            // cost SAMPLES times; the two-phase API pays it once. The refit
            // figure is an estimate derived from the measured fit/gen split
            // (S·fit + gen), not a second timed run — labeled "est.".
            let refit_secs = fit_secs * SAMPLES as f64 + gen_secs;
            let batch_secs = fit_secs + gen_secs;
            println!(
                "{:<22} acc {:.4} ± {:.4}  (Δ vs no-aug: {:+.4})  \
                 [fit {:.2}s + {}×gen {:.2}s = {:.2}s vs est. {:.2}s refit → {:.1}× faster]",
                method.name(),
                acc,
                std,
                acc - base_acc,
                fit_secs,
                SAMPLES,
                gen_secs,
                batch_secs,
                refit_secs,
                refit_secs / batch_secs.max(1e-9),
            );
        }
        println!();
    }
}
