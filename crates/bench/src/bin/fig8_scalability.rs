//! Figure 8 — scalability of FairGen on ER graphs: (a) running time versus
//! the number of nodes at fixed edge density 0.005; (b) running time versus
//! edge density at a fixed node count. The paper's claim is near-linear
//! scaling in both.
//!
//! Node counts are scaled from the paper's 500–5000 range to keep a single
//! CPU run short; the *shape* (≈linear) is the reproduced quantity.

//! Setting `FIG8_MILLION=1` appends the ROADMAP's million-node
//! acceptance point: a sparse `G(n, 5/n)` graph at `n = 10⁶` (built with
//! the `O(n + m)` geometric-skipping sampler — the pairwise one is
//! `Θ(n²)` and would never finish) trained with a deliberately tiny
//! budget, plus a `10⁵` point under the same budget for the scaling
//! ratio. Release builds only — a debug run would measure the compiler,
//! not the algorithm.

use fairgen_bench::header;
use fairgen_core::{FairGen, FairGenConfig, TaskSpec};
use fairgen_data::{er_by_density, er_sparse_by_density};
use std::time::Instant;

fn time_fairgen(n: usize, density: f64) -> f64 {
    let g = er_by_density(n, density, 7);
    let cfg = FairGenConfig {
        num_walks: 200,
        cycles: 1,
        gen_epochs: 1,
        pool_cap: 400,
        gen_multiplier: 2,
        d_model: 16,
        heads: 2,
        ..Default::default()
    };
    let start = Instant::now();
    let trained = FairGen::new(cfg)
        .train(&g, &TaskSpec::unlabeled(), 3)
        .expect("benchmark inputs are valid");
    let _ = trained.generate(4).expect("generate");
    start.elapsed().as_secs_f64()
}

fn main() {
    header("Figure 8", "FairGen running time vs graph size and density");
    println!("(a) edge density fixed at 0.005, increasing node count:");
    println!("{:>7} {:>12}", "nodes", "seconds");
    let mut prev: Option<(usize, f64)> = None;
    for n in [500usize, 1000, 1500, 2000, 2500, 3000] {
        let secs = time_fairgen(n, 0.005);
        let growth = prev
            .map(|(pn, ps)| {
                format!("  (x{:.2} for x{:.2} nodes)", secs / ps, n as f64 / pn as f64)
            })
            .unwrap_or_default();
        println!("{n:>7} {secs:>12.3}{growth}");
        prev = Some((n, secs));
    }

    println!();
    println!("(b) node count fixed at 1500, increasing edge density:");
    println!("{:>8} {:>12}", "density", "seconds");
    let mut prev: Option<(f64, f64)> = None;
    for density in [0.005, 0.01, 0.02, 0.03, 0.04, 0.05] {
        let secs = time_fairgen(1500, density);
        let growth = prev
            .map(|(pd, ps)| format!("  (x{:.2} for x{:.2} density)", secs / ps, density / pd))
            .unwrap_or_default();
        println!("{density:>8.3} {secs:>12.3}{growth}");
        prev = Some((density, secs));
    }

    million_node_gate();
}

/// The million-node budget: vocab = n makes the token embedding and the
/// per-token softmax the dominant costs, so everything else is pinned to
/// its floor — the point measures how those two scale with `n`, which is
/// the paper's near-linear claim.
fn million_config() -> FairGenConfig {
    FairGenConfig {
        walk_len: 8,
        num_walks: 32,
        cycles: 1,
        batch_iters: 1,
        batch_size: 32,
        gen_epochs: 1,
        pool_cap: 64,
        gen_multiplier: 1,
        d_model: 8,
        heads: 2,
        layers: 1,
        ..Default::default()
    }
}

fn time_million_point(n: usize) -> (usize, f64, f64) {
    let start = Instant::now();
    // Average degree 5 regardless of n: fixed-density million-node ER
    // would carry 2.5 × 10⁹ edges, which is not the sparse regime the
    // ROADMAP gate describes.
    let g = er_sparse_by_density(n, 5.0 / n as f64, 7);
    let build_secs = start.elapsed().as_secs_f64();
    let m = g.m();
    let start = Instant::now();
    let trained = FairGen::new(million_config())
        .train(&g, &TaskSpec::unlabeled(), 3)
        .expect("benchmark inputs are valid");
    let _ = trained.generate(4).expect("generate");
    (m, build_secs, start.elapsed().as_secs_f64())
}

fn million_node_gate() {
    if std::env::var("FIG8_MILLION").map_or(true, |v| v.is_empty() || v == "0") {
        println!();
        println!("(c) million-node gate skipped (set FIG8_MILLION=1 to run it)");
        return;
    }
    if cfg!(debug_assertions) {
        println!();
        println!("(c) million-node gate requires a release build; skipping");
        return;
    }
    println!();
    println!("(c) million-node gate: sparse ER at average degree 5, tiny train budget:");
    println!("{:>9} {:>10} {:>11} {:>13}", "nodes", "edges", "build_sec", "train_gen_sec");
    let mut prev: Option<(usize, f64)> = None;
    for n in [100_000usize, 1_000_000] {
        let (m, build, secs) = time_million_point(n);
        let growth = prev
            .map(|(pn, ps)| {
                format!("  (x{:.2} for x{:.0} nodes)", secs / ps, n as f64 / pn as f64)
            })
            .unwrap_or_default();
        println!("{n:>9} {m:>10} {build:>11.3} {secs:>13.3}{growth}");
        prev = Some((n, secs));
    }
}
