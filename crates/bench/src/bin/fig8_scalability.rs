//! Figure 8 — scalability of FairGen on ER graphs: (a) running time versus
//! the number of nodes at fixed edge density 0.005; (b) running time versus
//! edge density at a fixed node count. The paper's claim is near-linear
//! scaling in both.
//!
//! Node counts are scaled from the paper's 500–5000 range to keep a single
//! CPU run short; the *shape* (≈linear) is the reproduced quantity.

use fairgen_bench::header;
use fairgen_core::{FairGen, FairGenConfig, TaskSpec};
use fairgen_data::er_by_density;
use std::time::Instant;

fn time_fairgen(n: usize, density: f64) -> f64 {
    let g = er_by_density(n, density, 7);
    let cfg = FairGenConfig {
        num_walks: 200,
        cycles: 1,
        gen_epochs: 1,
        pool_cap: 400,
        gen_multiplier: 2,
        d_model: 16,
        heads: 2,
        ..Default::default()
    };
    let start = Instant::now();
    let trained = FairGen::new(cfg)
        .train(&g, &TaskSpec::unlabeled(), 3)
        .expect("benchmark inputs are valid");
    let _ = trained.generate(4).expect("generate");
    start.elapsed().as_secs_f64()
}

fn main() {
    header("Figure 8", "FairGen running time vs graph size and density");
    println!("(a) edge density fixed at 0.005, increasing node count:");
    println!("{:>7} {:>12}", "nodes", "seconds");
    let mut prev: Option<(usize, f64)> = None;
    for n in [500usize, 1000, 1500, 2000, 2500, 3000] {
        let secs = time_fairgen(n, 0.005);
        let growth = prev
            .map(|(pn, ps)| {
                format!("  (x{:.2} for x{:.2} nodes)", secs / ps, n as f64 / pn as f64)
            })
            .unwrap_or_default();
        println!("{n:>7} {secs:>12.3}{growth}");
        prev = Some((n, secs));
    }

    println!();
    println!("(b) node count fixed at 1500, increasing edge density:");
    println!("{:>8} {:>12}", "density", "seconds");
    let mut prev: Option<(f64, f64)> = None;
    for density in [0.005, 0.01, 0.02, 0.03, 0.04, 0.05] {
        let secs = time_fairgen(1500, density);
        let growth = prev
            .map(|(pd, ps)| format!("  (x{:.2} for x{:.2} density)", secs / ps, density / pd))
            .unwrap_or_default();
        println!("{density:>8.3} {secs:>12.3}{growth}");
        prev = Some((density, secs));
    }
}
