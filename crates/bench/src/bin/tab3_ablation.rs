//! Table III — ablation of the context sampling strategy: FairGen's `f_S`
//! versus plain node2vec negative sampling, measured by the protected-group
//! discrepancy `R⁺` on BLOG / ACM / FLICKR. Smaller is better.

use fairgen_baselines::GraphGenerator;
use fairgen_bench::{bench_fairgen_config, bench_task, budget_scale, fmt4, header, print_row};
use fairgen_core::{FairGenGenerator, FairGenVariant};
use fairgen_data::Dataset;
use fairgen_metrics::{protected_discrepancies, Metric};

fn main() {
    header("Table III", "f_S vs negative sampling, R+(G, G~, S+, f_m)");
    let scale = budget_scale();
    let metric_names: Vec<String> =
        Metric::ALL.iter().map(|m| m.abbrev().to_string()).collect();
    print_row("method (dataset)", &metric_names);
    // Paper order: BLOG, ACM, FLICKR.
    for ds in [Dataset::Blog, Dataset::Acm, Dataset::Flickr] {
        let lg = ds.generate(42);
        let protected = lg.protected.clone().expect("labeled dataset has S+");
        let task = bench_task(&lg, 42);
        let cfg = bench_fairgen_config(scale);
        for variant in [FairGenVariant::NegativeSampling, FairGenVariant::Full] {
            let method = FairGenGenerator::new(cfg).with_variant(variant);
            let generated = method
                .fit_generate(&lg.graph, &task, 1234)
                .expect("benchmark inputs are valid");
            let r = protected_discrepancies(&lg.graph, &generated, &protected);
            let cells: Vec<String> = r.iter().map(|&v| fmt4(v)).collect();
            let label = format!(
                "{} ({})",
                if variant == FairGenVariant::Full { "FairGen" } else { "NegSampling" },
                lg.name
            );
            print_row(&label, &cells);
        }
    }
}
