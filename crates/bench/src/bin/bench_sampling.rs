//! Emits `BENCH_sampling.json`: tokens/sec of the KV-cached incremental
//! samplers versus the full-forward reference paths at the quickstart
//! model shapes, so the sampling-hot-path perf trajectory is tracked
//! across PRs.
//!
//! Run via `scripts/bench_sampling.sh`, or directly:
//!
//! ```text
//! cargo run --release -p fairgen-bench --bin bench_sampling -- [OUT.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use fairgen_nn::sample::{
    predraw_walks, sample_walk_batch, sample_walk_batch_per_walk, MatrixSampler,
};
use fairgen_nn::{LstmLm, TransformerConfig, TransformerLm};
use fairgen_par::{ReplayRng, ThreadPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Walk lengths reported (10 = the paper's default `T`; 200 stresses the
/// prefix-length dependence of the per-token cost).
const WALK_LENS: [usize; 3] = [10, 50, 200];

/// Times `f` adaptively: at least `min_reps` calls and at least ~0.4 s of
/// wall clock, returning mean seconds per call.
fn time_secs<F: FnMut()>(mut f: F, min_reps: usize) -> f64 {
    f(); // warm-up
    let mut reps = 0usize;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= min_reps && elapsed >= 0.4 {
            return elapsed / reps as f64;
        }
        if reps >= 10_000 {
            return elapsed / reps as f64;
        }
    }
}

struct Row {
    walk_len: usize,
    tok_per_sec_full: f64,
    tok_per_sec_incremental: f64,
    per_token_ns_incremental: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.tok_per_sec_incremental / self.tok_per_sec_full
    }
}

fn json_rows(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"walk_len\": {}, \"tokens_per_sec_full_forward\": {:.0}, \
             \"tokens_per_sec_incremental\": {:.0}, \"speedup\": {:.2}, \
             \"per_token_ns_incremental\": {:.0}}}",
            r.walk_len,
            r.tok_per_sec_full,
            r.tok_per_sec_incremental,
            r.speedup(),
            r.per_token_ns_incremental,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]");
    s
}

/// Pool widths the multi-core axis reports.
const THREAD_AXIS: [usize; 4] = [1, 2, 4, 8];

/// Walks per batch / walk length for the multi-core axis (T = 50: the
/// mid-length row of the per-model tables).
const BATCH_WALKS: usize = 64;
const BATCH_LEN: usize = 50;

struct ThreadRow {
    threads: usize,
    tok_per_sec: f64,
}

/// Tokens/sec of `sample_walk_batch` at each pool width. Output is
/// bit-identical across widths (the parity suites assert it), so this axis
/// measures pure scheduling overhead vs. fan-out win.
fn thread_rows<M: MatrixSampler>(model: &M) -> Vec<ThreadRow> {
    THREAD_AXIS
        .iter()
        .map(|&threads| {
            let pool = ThreadPool::new(threads);
            let mut rng = StdRng::seed_from_u64(21);
            let secs = time_secs(
                || {
                    let draws = predraw_walks(&mut rng, BATCH_WALKS, BATCH_LEN);
                    sample_walk_batch(&pool, model, BATCH_WALKS, BATCH_LEN, 1.0, &draws)
                        .expect("batch");
                },
                3,
            );
            ThreadRow { threads, tok_per_sec: (BATCH_WALKS * BATCH_LEN) as f64 / secs }
        })
        .collect()
}

/// Batch widths the matrix-decode axis reports (1 isolates the GEMM-path
/// overhead at the degenerate width; 64 spans two `MATRIX_BATCH_WIDTH`
/// chunks' worth of walks stepped as one state here).
const BATCH_WIDTH_AXIS: [usize; 4] = [1, 4, 16, 64];

struct WidthRow {
    width: usize,
    tok_per_sec_batched: f64,
    tok_per_sec_per_walk: f64,
}

impl WidthRow {
    fn speedup(&self) -> f64 {
        self.tok_per_sec_batched / self.tok_per_sec_per_walk
    }
}

/// Tokens/sec of the matrix-stepped decoder at each batch width versus the
/// per-walk decode loop over the same walks, both on one thread — so the
/// axis isolates the one-GEMM-per-layer win from the multi-core win (the
/// two compose: each pool worker steps its own chunk as a matrix).
fn width_rows<M: MatrixSampler>(model: &M) -> Vec<WidthRow> {
    let pool = ThreadPool::new(1);
    BATCH_WIDTH_AXIS
        .iter()
        .map(|&width| {
            let lens = vec![BATCH_LEN; width];
            let mut state = model.make_batch_state(width);
            let mut rng = StdRng::seed_from_u64(23);
            let secs_batched = time_secs(
                || {
                    let draws = predraw_walks(&mut rng, width, BATCH_LEN);
                    let mut rngs: Vec<ReplayRng<'_>> = (0..width)
                        .map(|w| ReplayRng::new(&draws[w * BATCH_LEN..(w + 1) * BATCH_LEN]))
                        .collect();
                    model
                        .sample_batch_into(&mut state, &lens, 1.0, &mut rngs)
                        .expect("batched");
                },
                3,
            );
            let mut rng = StdRng::seed_from_u64(23);
            let secs_per_walk = time_secs(
                || {
                    let draws = predraw_walks(&mut rng, width, BATCH_LEN);
                    sample_walk_batch_per_walk(&pool, model, width, BATCH_LEN, 1.0, &draws)
                        .expect("per-walk");
                },
                3,
            );
            let toks = (width * BATCH_LEN) as f64;
            WidthRow {
                width,
                tok_per_sec_batched: toks / secs_batched,
                tok_per_sec_per_walk: toks / secs_per_walk,
            }
        })
        .collect()
}

fn json_width_rows(rows: &[WidthRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"batch_width\": {}, \"tokens_per_sec_batched\": {:.0}, \
             \"tokens_per_sec_per_walk\": {:.0}, \"speedup_vs_per_walk\": {:.2}}}",
            r.width,
            r.tok_per_sec_batched,
            r.tok_per_sec_per_walk,
            r.speedup(),
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]");
    s
}

fn json_thread_rows(rows: &[ThreadRow]) -> String {
    let base = rows[0].tok_per_sec;
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"threads\": {}, \"tokens_per_sec\": {:.0}, \"speedup_vs_1_thread\": {:.2}}}",
            r.threads,
            r.tok_per_sec,
            r.tok_per_sec / base,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]");
    s
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sampling.json".to_string());

    // Quickstart config: d_model 32, 4 heads, 1 block (FairGenConfig
    // defaults), vocab sized like the scaled CA graph; max_len widened so
    // one model serves every walk length.
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = TransformerConfig { vocab: 400, d_model: 32, heads: 4, layers: 1, max_len: 256 };
    let mut tf = TransformerLm::new(cfg, &mut rng);
    let mut lstm = LstmLm::new(400, 32, 48, &mut rng);

    let mut tf_rows = Vec::new();
    let mut r_full = StdRng::seed_from_u64(11);
    let mut r_inc = StdRng::seed_from_u64(11);
    for &len in &WALK_LENS {
        let t_full = time_secs(
            || {
                tf.sample_ref(len, 1.0, &mut r_full).expect("sample_ref");
            },
            2,
        );
        let t_inc = time_secs(
            || {
                tf.sample(len, 1.0, &mut r_inc).expect("sample");
            },
            5,
        );
        tf_rows.push(Row {
            walk_len: len,
            tok_per_sec_full: len as f64 / t_full,
            tok_per_sec_incremental: len as f64 / t_inc,
            per_token_ns_incremental: t_inc * 1e9 / len as f64,
        });
    }

    let mut lstm_rows = Vec::new();
    for &len in &WALK_LENS {
        let t_full = time_secs(
            || {
                lstm.sample_ref(len, 1.0, &mut r_full).expect("sample_ref");
            },
            2,
        );
        let t_inc = time_secs(
            || {
                lstm.sample(len, 1.0, &mut r_inc).expect("sample");
            },
            5,
        );
        lstm_rows.push(Row {
            walk_len: len,
            tok_per_sec_full: len as f64 / t_full,
            tok_per_sec_incremental: len as f64 / t_inc,
            per_token_ns_incremental: t_inc * 1e9 / len as f64,
        });
    }

    // Per-token flatness: incremental cost per token at T=200 relative to
    // T=10 (the full-forward path grows ~linearly in the prefix instead).
    let flatness = tf_rows[2].per_token_ns_incremental / tf_rows[0].per_token_ns_incremental;

    // Multi-core axis: batch sampling across pool widths (same tokens at
    // every width — pure throughput). Recorded with the machine's core
    // count, since on a single-core container every width time-slices one
    // CPU and the curve is flat by construction.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tf_threads = thread_rows(&tf);
    let lstm_threads = thread_rows(&lstm);

    // Matrix-decode axis: batched vs per-walk decoding at each batch width,
    // single-threaded (composes multiplicatively with the thread axis).
    let tf_widths = width_rows(&tf);
    let lstm_widths = width_rows(&lstm);

    let json = format!(
        "{{\n  \"config\": {{\"vocab\": 400, \"d_model\": 32, \"heads\": 4, \"layers\": 1, \
         \"lstm_hidden\": 48, \"temperature\": 1.0}},\n  \"transformer\": {},\n  \
         \"lstm\": {},\n  \"per_token_growth_incremental_200_vs_10\": {:.2},\n  \
         \"parallel\": {{\n    \"machine_cores\": {},\n    \"note\": \"walks are \
         embarrassingly parallel (~1 ms each at T=50) and the pool adds no measurable \
         overhead at any width, so speedup_vs_1_thread tracks min(threads, machine_cores); \
         a single-core container necessarily reports a flat curve\",\n    \
         \"batch_walks\": {}, \"walk_len\": {},\n    \"transformer\": {},\n    \
         \"lstm\": {}\n  }},\n  \"batched\": {{\n    \"note\": \"matrix-stepped decode \
         (one GEMM per layer per token across the batch) vs the per-walk decode loop, \
         both single-threaded; output is bit-identical on every row\",\n    \
         \"walk_len\": {},\n    \"transformer\": {},\n    \"lstm\": {}\n  }}\n}}\n",
        json_rows(&tf_rows),
        json_rows(&lstm_rows),
        flatness,
        cores,
        BATCH_WALKS,
        BATCH_LEN,
        json_thread_rows(&tf_threads),
        json_thread_rows(&lstm_threads),
        BATCH_LEN,
        json_width_rows(&tf_widths),
        json_width_rows(&lstm_widths),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sampling.json");
    println!("{json}");
    println!("wrote {out_path}");
    for (name, rows) in [("transformer", &tf_rows), ("lstm", &lstm_rows)] {
        for r in rows.iter() {
            println!(
                "{name} T={:<4} full {:>10.0} tok/s   incremental {:>10.0} tok/s   {:>6.1}x",
                r.walk_len,
                r.tok_per_sec_full,
                r.tok_per_sec_incremental,
                r.speedup()
            );
        }
    }
    for (name, rows) in [("transformer", &tf_threads), ("lstm", &lstm_threads)] {
        for r in rows {
            println!(
                "{name} batch {}x{} threads={} {:>10.0} tok/s ({:.2}x vs 1 thread, {cores} cores)",
                BATCH_WALKS,
                BATCH_LEN,
                r.threads,
                r.tok_per_sec,
                r.tok_per_sec / rows[0].tok_per_sec,
            );
        }
    }
    for (name, rows) in [("transformer", &tf_widths), ("lstm", &lstm_widths)] {
        for r in rows {
            println!(
                "{name} width={:<3} batched {:>10.0} tok/s   per-walk {:>10.0} tok/s   {:>5.2}x",
                r.width,
                r.tok_per_sec_batched,
                r.tok_per_sec_per_walk,
                r.speedup(),
            );
        }
    }
}
