//! Emits `BENCH_sampling.json`: tokens/sec of the KV-cached incremental
//! samplers versus the full-forward reference paths at the quickstart
//! model shapes, so the sampling-hot-path perf trajectory is tracked
//! across PRs.
//!
//! Run via `scripts/bench_sampling.sh`, or directly:
//!
//! ```text
//! cargo run --release -p fairgen-bench --bin bench_sampling -- [OUT.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use fairgen_nn::{LstmLm, TransformerConfig, TransformerLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Walk lengths reported (10 = the paper's default `T`; 200 stresses the
/// prefix-length dependence of the per-token cost).
const WALK_LENS: [usize; 3] = [10, 50, 200];

/// Times `f` adaptively: at least `min_reps` calls and at least ~0.4 s of
/// wall clock, returning mean seconds per call.
fn time_secs<F: FnMut()>(mut f: F, min_reps: usize) -> f64 {
    f(); // warm-up
    let mut reps = 0usize;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= min_reps && elapsed >= 0.4 {
            return elapsed / reps as f64;
        }
        if reps >= 10_000 {
            return elapsed / reps as f64;
        }
    }
}

struct Row {
    walk_len: usize,
    tok_per_sec_full: f64,
    tok_per_sec_incremental: f64,
    per_token_ns_incremental: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.tok_per_sec_incremental / self.tok_per_sec_full
    }
}

fn json_rows(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"walk_len\": {}, \"tokens_per_sec_full_forward\": {:.0}, \
             \"tokens_per_sec_incremental\": {:.0}, \"speedup\": {:.2}, \
             \"per_token_ns_incremental\": {:.0}}}",
            r.walk_len,
            r.tok_per_sec_full,
            r.tok_per_sec_incremental,
            r.speedup(),
            r.per_token_ns_incremental,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]");
    s
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sampling.json".to_string());

    // Quickstart config: d_model 32, 4 heads, 1 block (FairGenConfig
    // defaults), vocab sized like the scaled CA graph; max_len widened so
    // one model serves every walk length.
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = TransformerConfig { vocab: 400, d_model: 32, heads: 4, layers: 1, max_len: 256 };
    let mut tf = TransformerLm::new(cfg, &mut rng);
    let mut lstm = LstmLm::new(400, 32, 48, &mut rng);

    let mut tf_rows = Vec::new();
    let mut r_full = StdRng::seed_from_u64(11);
    let mut r_inc = StdRng::seed_from_u64(11);
    for &len in &WALK_LENS {
        let t_full = time_secs(
            || {
                tf.sample_ref(len, 1.0, &mut r_full).expect("sample_ref");
            },
            2,
        );
        let t_inc = time_secs(
            || {
                tf.sample(len, 1.0, &mut r_inc).expect("sample");
            },
            5,
        );
        tf_rows.push(Row {
            walk_len: len,
            tok_per_sec_full: len as f64 / t_full,
            tok_per_sec_incremental: len as f64 / t_inc,
            per_token_ns_incremental: t_inc * 1e9 / len as f64,
        });
    }

    let mut lstm_rows = Vec::new();
    for &len in &WALK_LENS {
        let t_full = time_secs(
            || {
                lstm.sample_ref(len, 1.0, &mut r_full).expect("sample_ref");
            },
            2,
        );
        let t_inc = time_secs(
            || {
                lstm.sample(len, 1.0, &mut r_inc).expect("sample");
            },
            5,
        );
        lstm_rows.push(Row {
            walk_len: len,
            tok_per_sec_full: len as f64 / t_full,
            tok_per_sec_incremental: len as f64 / t_inc,
            per_token_ns_incremental: t_inc * 1e9 / len as f64,
        });
    }

    // Per-token flatness: incremental cost per token at T=200 relative to
    // T=10 (the full-forward path grows ~linearly in the prefix instead).
    let flatness = tf_rows[2].per_token_ns_incremental / tf_rows[0].per_token_ns_incremental;

    let json = format!(
        "{{\n  \"config\": {{\"vocab\": 400, \"d_model\": 32, \"heads\": 4, \"layers\": 1, \
         \"lstm_hidden\": 48, \"temperature\": 1.0}},\n  \"transformer\": {},\n  \
         \"lstm\": {},\n  \"per_token_growth_incremental_200_vs_10\": {:.2}\n}}\n",
        json_rows(&tf_rows),
        json_rows(&lstm_rows),
        flatness,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sampling.json");
    println!("{json}");
    println!("wrote {out_path}");
    for (name, rows) in [("transformer", &tf_rows), ("lstm", &lstm_rows)] {
        for r in rows.iter() {
            println!(
                "{name} T={:<4} full {:>10.0} tok/s   incremental {:>10.0} tok/s   {:>6.1}x",
                r.walk_len,
                r.tok_per_sec_full,
                r.tok_per_sec_incremental,
                r.speedup()
            );
        }
    }
}
