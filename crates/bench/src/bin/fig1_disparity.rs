//! Figures 1 and 9 — representation disparity, quantified.
//!
//! The paper visualizes (t-SNE) how NetGAN progressively "mixes" the
//! protected group into the unprotected group as training proceeds, while
//! FairGen keeps it separable. This binary reproduces both messages with a
//! measurable proxy (see DESIGN.md §1):
//!
//! 1. *Figure 1*: NetGAN-lite is trained with increasing budgets
//!    (the 500/1000/2000-iteration analogue); after each stage the
//!    generated graph is embedded with node2vec and the protected-group
//!    separation score is reported — it should **decay**.
//! 2. *Figure 9*: the final generated graph of each deep method is embedded
//!    and scored; FairGen should preserve the highest separation, close to
//!    the original graph's own score.

use fairgen_baselines::{
    GaeGenerator, GraphGenerator, NetGanGenerator, TagGenGenerator, TaskSpec, WalkLmBudget,
};
use fairgen_bench::{
    bench_fairgen_config, bench_gae, bench_walklm_budget, budget_scale, header,
};
use fairgen_core::{measure_disparity, FairGen, FairGenGenerator, FairGenVariant};
use fairgen_data::toy_two_community;
use fairgen_embed::{group_separation, pca_2d, Node2Vec, Node2VecConfig};
use fairgen_graph::{Graph, NodeSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn separation(g: &Graph, s: &NodeSet, seed: u64) -> f64 {
    let cfg = Node2VecConfig { dim: 24, walks_per_node: 8, epochs: 3, ..Default::default() };
    let emb = Node2Vec::train(g, &cfg, seed);
    let proj = pca_2d(&emb.vectors);
    group_separation(&proj, s)
}

fn main() {
    header("Figures 1 & 9", "representation disparity via group separation");
    let scale = budget_scale();
    let lg = toy_two_community(42);
    let s = lg.protected.clone().expect("toy has S+");
    let original = separation(&lg.graph, &s, 7);
    println!("original graph separation score: {original:.3}");
    println!();

    println!("(Fig. 1) NetGAN-lite with increasing training budget:");
    println!("{:>18} {:>12} {:>22}", "epochs (~iters)", "separation", "vs original");
    for (epochs, iters) in [(1usize, 500usize), (3, 1000), (6, 2000)] {
        let gen = NetGanGenerator {
            budget: WalkLmBudget { epochs, ..bench_walklm_budget(scale) },
            ..Default::default()
        };
        let out = gen
            .fit_generate(&lg.graph, &TaskSpec::unlabeled(), 1234)
            .expect("benchmark inputs are valid");
        let sep = separation(&out, &s, 7);
        println!("{:>10} ({iters:>5}) {sep:>12.3} {:>21.1}%", epochs, 100.0 * sep / original);
    }
    println!();

    println!("(Fig. 9) final generated graph of each deep method:");
    println!("{:>18} {:>12} {:>22}", "method", "separation", "vs original");
    let mut rng = StdRng::seed_from_u64(42);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
    let methods: Vec<Box<dyn GraphGenerator>> = vec![
        Box::new(NetGanGenerator { budget: bench_walklm_budget(scale), ..Default::default() }),
        Box::new(GaeGenerator { ..bench_gae(scale) }),
        Box::new(TagGenGenerator { budget: bench_walklm_budget(scale), ..Default::default() }),
        Box::new(FairGenGenerator::new(bench_fairgen_config(scale))),
    ];
    for m in methods {
        let out = m.fit_generate(&lg.graph, &task, 1234).expect("benchmark inputs are valid");
        let sep = separation(&out, &s, 7);
        println!("{:>18} {sep:>12.3} {:>21.1}%", m.name(), 100.0 * sep / original);
    }
    println!();

    // The paper's formal quantity (Eqs. 1-2): the generator-side
    // reconstruction losses R(theta) and R_{S+}(theta). Representation
    // disparity = low overall loss, high protected loss; FairGen's
    // label-informed sampling should close the gap relative to its
    // structural-only ablation.
    println!("(Eqs. 1-2) walk reconstruction losses of the trained generator:");
    println!("{:>18} {:>10} {:>10} {:>10} {:>8}", "variant", "R(theta)", "R_S+", "R_S-", "gap");
    for variant in [FairGenVariant::Full, FairGenVariant::NegativeSampling] {
        let mut trained = FairGen::new(bench_fairgen_config(scale))
            .with_variant(variant)
            .train(&lg.graph, &task, 77)
            .expect("benchmark inputs are valid");
        let report = measure_disparity(&mut trained, &lg.graph, &s, 60, 8, 5);
        println!(
            "{:>18} {:>10.3} {:>10.3} {:>10.3} {:>8.3}",
            variant.name(),
            report.overall,
            report.protected,
            report.unprotected,
            report.gap()
        );
    }
}
