//! Figure 4 — overall discrepancy `R(G, G̃, f)` for nine metrics across the
//! seven datasets and all nine methods (FairGen + 3 ablations + 5 baselines).
//!
//! The paper presents nine bar-chart panels (one per metric); this binary
//! prints one table per dataset with methods as rows and metrics as columns.
//! Smaller is better everywhere.

use fairgen_bench::{bench_task, budget_scale, fmt4, header, method_roster, print_row};
use fairgen_data::Dataset;
use fairgen_metrics::{overall_discrepancies, Metric};

fn main() {
    header("Figure 4", "overall discrepancy R(G, G~, f_m), nine metrics");
    let scale = budget_scale();
    for ds in Dataset::ALL {
        let lg = ds.generate(42);
        println!("--- {} (n={}, m={}) ---", lg.name, lg.graph.n(), lg.graph.m());
        let task = bench_task(&lg, 42);
        let metric_names: Vec<String> =
            Metric::ALL.iter().map(|m| m.abbrev().to_string()).collect();
        print_row("method", &metric_names);
        for method in method_roster(scale) {
            let generated = method
                .fit_generate(&lg.graph, &task, 1234)
                .expect("benchmark inputs are valid");
            let r = overall_discrepancies(&lg.graph, &generated);
            let cells: Vec<String> = r.iter().map(|&v| fmt4(v)).collect();
            print_row(method.name(), &cells);
        }
        println!();
    }
}
