//! Emits `BENCH_serving.json`: latency distribution and throughput of the
//! `fairgen-rpc` network front-end under N concurrent socket clients,
//! across the three serving regimes — `cold` (every request a distinct
//! graph: full fit), `warm` (one fitted model, fresh sample seeds:
//! registry memory hits), and `dedup` (exact request repeats: answered
//! from the sample cache without touching a model) — plus an `overload`
//! scenario: greedy bulk tenants flood a deliberately undersized admission
//! queue while one interactive tenant keeps issuing single draws, and the
//! report records accept/shed rates and the interactive lane's latency
//! percentiles under that pressure.
//!
//! While each mix runs, a dedicated scraper thread hits `GET /metrics`
//! every few milliseconds: each mix's report carries the scrape-latency
//! distribution and exposition size, and every mid-load exposition must
//! parse back through `fairgen_obs::parse` — a torn or malformed render
//! under concurrency fails the bench.
//!
//! Percentiles are ceil-based nearest rank (`fairgen_obs::nearest_rank`),
//! shared with the histogram summaries.
//!
//! Run via `scripts/bench_serving.sh`, or directly:
//!
//! ```text
//! cargo run --release -p fairgen-bench --bin bench_serving -- \
//!     [OUT.json] [CLIENTS] [REQUESTS_PER_CLIENT]
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_obs::nearest_rank;
use fairgen_rpc::{ClientError, RpcClient, RpcConfig, RpcServer};
use fairgen_serve::{AdmissionConfig, AdmissionStats, FairGenServer, ServedFrom, ServerConfig};

fn ring(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n as usize, &edges)
}

/// One request a client thread should issue.
#[derive(Clone)]
struct Job {
    graph_n: u32,
    fit_seed: u64,
    sample_seed: u64,
}

/// Everything measured about one mix.
struct MixReport {
    mix: &'static str,
    requests: usize,
    errors: usize,
    elapsed_secs: f64,
    /// Sorted per-request latencies, microseconds.
    latencies_us: Vec<u64>,
    served_from: BTreeMap<&'static str, usize>,
    /// Sorted `/metrics` scrape latencies measured while the mix ran,
    /// microseconds.
    scrape_latencies_us: Vec<u64>,
    /// Size of the last exposition scraped during the mix, bytes.
    exposition_bytes: usize,
}

/// Percentile of an already-sorted latency list, microseconds.
///
/// Ceil-based nearest rank (shared with the histogram summaries in
/// `fairgen-obs`): the reported p95 is a latency some request actually
/// experienced, never an interpolation, and `p -> 1.0` converges on the
/// true maximum. The previous `.round()`-based rank could pick the
/// element *below* the requested quantile — p95 of a 10-element list
/// rounded rank 8.55 up correctly, but p50 of a 2-element list rounded
/// 0.5 to rank 0 and under-reported the median.
fn percentile_of(sorted_us: &[u64], p: f64) -> u64 {
    nearest_rank(sorted_us, p)
}

impl MixReport {
    fn percentile(&self, p: f64) -> u64 {
        percentile_of(&self.latencies_us, p)
    }

    fn requests_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.elapsed_secs
    }
}

fn served_from_key(s: ServedFrom) -> &'static str {
    match s {
        ServedFrom::ColdFit => "cold_fit",
        ServedFrom::Memory => "memory",
        ServedFrom::Checkpoint => "checkpoint",
        ServedFrom::DedupCache => "dedup_cache",
        ServedFrom::Stale { .. } => "stale",
    }
}

/// Runs `jobs_per_client` requests on each of `clients` concurrent socket
/// connections against a fresh server, and measures every request.
fn run_mix(
    mix: &'static str,
    clients: usize,
    jobs: Vec<Vec<Job>>,
    prime: Option<&Job>,
) -> MixReport {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())
        .expect("in-process server");
    let mut rpc = RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback");
    let addr = rpc.local_addr();
    let task = TaskSpec::unlabeled();

    // Untimed priming request: puts the warm/dedup mixes into their steady
    // state (model fitted / sample cached) before the clock starts.
    if let Some(job) = prime {
        let mut client = RpcClient::connect(addr).expect("prime connect");
        client
            .generate(&ring(job.graph_n), &task, job.fit_seed, job.sample_seed)
            .expect("prime request");
    }

    let start = Instant::now();
    let workers: Vec<_> = jobs
        .into_iter()
        .map(|client_jobs| {
            let task = task.clone();
            std::thread::spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(client_jobs.len());
                let mut outcomes: Vec<&'static str> = Vec::with_capacity(client_jobs.len());
                let mut errors = 0usize;
                for job in &client_jobs {
                    let g = ring(job.graph_n);
                    let t0 = Instant::now();
                    match client.generate(&g, &task, job.fit_seed, job.sample_seed) {
                        Ok(result) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            outcomes.push(served_from_key(result.served_from));
                        }
                        Err(_) => errors += 1,
                    }
                }
                (latencies, outcomes, errors)
            })
        })
        .collect();

    // Concurrent scraper: `GET /metrics` every few milliseconds while the
    // load runs, so the report carries the exposition cost under pressure
    // and every mid-load exposition is verified to parse.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("scrape connect");
            let mut scrape_us = Vec::new();
            let mut exposition_bytes;
            loop {
                let t0 = Instant::now();
                let resp = client.http_get("/metrics").expect("scrape");
                scrape_us.push(t0.elapsed().as_micros() as u64);
                assert_eq!(resp.status, 200, "metrics must serve during load");
                let text = String::from_utf8(resp.body).expect("utf-8 exposition");
                fairgen_obs::parse(&text).expect("mid-load exposition parses");
                exposition_bytes = text.len();
                // Check the flag *after* scraping so even an instant run
                // records at least one observation.
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            (scrape_us, exposition_bytes)
        })
    };

    let mut latencies_us = Vec::new();
    let mut served_from: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut errors = 0usize;
    for w in workers {
        let (lat, outcomes, errs) = w.join().expect("client thread");
        latencies_us.extend(lat);
        for o in outcomes {
            *served_from.entry(o).or_insert(0) += 1;
        }
        errors += errs;
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let (mut scrape_latencies_us, exposition_bytes) = scraper.join().expect("scraper thread");
    rpc.shutdown();

    latencies_us.sort_unstable();
    scrape_latencies_us.sort_unstable();
    let requests = latencies_us.len();
    assert_eq!(errors, 0, "{mix}: the load harness must not provoke errors");
    assert!(requests > 0 && clients > 0);
    assert!(!scrape_latencies_us.is_empty(), "{mix}: at least one mid-load scrape");
    MixReport {
        mix,
        requests,
        errors,
        elapsed_secs,
        latencies_us,
        served_from,
        scrape_latencies_us,
        exposition_bytes,
    }
}

/// Everything measured about the overload scenario.
struct OverloadReport {
    bulk_clients: usize,
    offered: usize,
    accepted: usize,
    shed: usize,
    elapsed_secs: f64,
    interactive_offered: usize,
    interactive_shed: usize,
    /// Sorted latencies of *accepted* interactive requests, microseconds.
    interactive_latencies_us: Vec<u64>,
    admission: AdmissionStats,
}

/// Floods an undersized admission queue with `clients - 1` greedy bulk
/// tenants while one interactive tenant issues single draws, all against a
/// pre-warmed model. Every request gets exactly one answer: served, or a
/// typed 429 overload (anything else aborts the bench).
fn run_overload(clients: usize, per_client: usize) -> OverloadReport {
    let bulk_clients = clients.saturating_sub(1).max(1);
    // Deliberately smaller than the number of concurrent clients so the
    // queue actually overflows; bulk_after keeps the interactive lane from
    // starving while bulk work waits.
    let queue_capacity = (clients / 2).max(2);
    let cfg = ServerConfig {
        admission: AdmissionConfig {
            queue_capacity: Some(queue_capacity),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let inner = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("in-process server");
    let mut rpc = RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback");
    let addr = rpc.local_addr();
    let task = TaskSpec::unlabeled();

    // Untimed prime: fit the one shared model so overload measures
    // queueing, not fitting.
    RpcClient::connect(addr)
        .expect("prime connect")
        .generate(&ring(64), &task, 7, 999)
        .expect("prime request");

    // Ok(latency) for served, Err(()) for a typed overload shed.
    let classify = |r: Result<fairgen_rpc::GenerateResult, ClientError>, t0: Instant| match r {
        Ok(_) => Ok(t0.elapsed().as_micros() as u64),
        Err(ClientError::Rpc(info)) if info.is_overloaded() => Err(()),
        Err(other) => panic!("overload mix: only typed 429s are acceptable, got {other}"),
    };

    let start = Instant::now();
    let bulk_workers: Vec<_> = (0..bulk_clients)
        .map(|w| {
            let task = task.clone();
            std::thread::spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                let tenant = format!("bulk-{w}");
                client.set_tenant(Some(&tenant));
                let mut accepted = 0usize;
                let mut shed = 0usize;
                for i in 0..per_client {
                    let base = 5_000 + ((w * per_client + i) * 8) as u64;
                    let seeds: Vec<u64> = (0..8).map(|k| base + k).collect();
                    let t0 = Instant::now();
                    match classify(client.generate_batch(&ring(64), &task, 7, &seeds), t0) {
                        Ok(_) => accepted += 1,
                        Err(()) => shed += 1,
                    }
                }
                (accepted, shed)
            })
        })
        .collect();
    let interactive_worker = {
        let task = task.clone();
        std::thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect");
            client.set_tenant(Some("interactive"));
            let mut latencies = Vec::with_capacity(per_client);
            let mut shed = 0usize;
            for i in 0..per_client {
                let t0 = Instant::now();
                match classify(client.generate(&ring(64), &task, 7, 100_000 + i as u64), t0) {
                    Ok(us) => latencies.push(us),
                    Err(()) => shed += 1,
                }
            }
            (latencies, shed)
        })
    };

    let (mut accepted, mut shed) = (0usize, 0usize);
    for w in bulk_workers {
        let (a, s) = w.join().expect("bulk client thread");
        accepted += a;
        shed += s;
    }
    let (mut interactive_latencies_us, interactive_shed) =
        interactive_worker.join().expect("interactive client thread");
    accepted += interactive_latencies_us.len();
    shed += interactive_shed;
    let elapsed_secs = start.elapsed().as_secs_f64();

    let admission = rpc.stats().admission;
    rpc.shutdown();
    interactive_latencies_us.sort_unstable();

    let offered = (bulk_clients + 1) * per_client;
    assert_eq!(accepted + shed, offered, "every request must get exactly one answer");
    OverloadReport {
        bulk_clients,
        offered,
        accepted,
        shed,
        elapsed_secs,
        interactive_offered: per_client,
        interactive_shed,
        interactive_latencies_us,
        admission,
    }
}

fn json_report(
    clients: usize,
    per_client: usize,
    mixes: &[MixReport],
    overload: &OverloadReport,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {per_client}, \
         \"generator\": \"er\", \"transport\": \"http/1.1 json-rpc loopback\"}},"
    );
    s.push_str("  \"mixes\": [\n");
    for (i, m) in mixes.iter().enumerate() {
        let mut served = String::from("{");
        for (j, (k, v)) in m.served_from.iter().enumerate() {
            let _ = write!(served, "{}\"{k}\": {v}", if j > 0 { ", " } else { "" });
        }
        served.push('}');
        let _ = write!(
            s,
            "    {{\"mix\": \"{}\", \"requests\": {}, \"errors\": {}, \
             \"requests_per_sec\": {:.0}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"max_us\": {}, \"served_from\": {}, \
             \"metrics_scrape\": {{\"scrapes\": {}, \"p50_us\": {}, \"max_us\": {}, \
             \"exposition_bytes\": {}}}}}",
            m.mix,
            m.requests,
            m.errors,
            m.requests_per_sec(),
            m.percentile(0.50),
            m.percentile(0.95),
            m.percentile(0.99),
            m.latencies_us.last().copied().unwrap_or(0),
            served,
            m.scrape_latencies_us.len(),
            percentile_of(&m.scrape_latencies_us, 0.50),
            m.scrape_latencies_us.last().copied().unwrap_or(0),
            m.exposition_bytes,
        );
        s.push_str(if i + 1 < mixes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let o = overload;
    let rate = |n: usize| n as f64 / o.offered.max(1) as f64;
    let _ = writeln!(
        s,
        "  \"overload\": {{\"bulk_clients\": {}, \"offered\": {}, \"accepted\": {}, \
         \"shed\": {}, \"accept_rate\": {:.3}, \"shed_rate\": {:.3}, \
         \"elapsed_secs\": {:.3}, \"interactive\": {{\"offered\": {}, \"accepted\": {}, \
         \"shed\": {}, \"p50_us\": {}, \"p99_us\": {}}}, \
         \"admission\": {{\"admitted\": {}, \"rejected_full\": {}, \"rejected_rate\": {}, \
         \"shed_deadline\": {}, \"dropped_total\": {}}}}}",
        o.bulk_clients,
        o.offered,
        o.accepted,
        o.shed,
        rate(o.accepted),
        rate(o.shed),
        o.elapsed_secs,
        o.interactive_offered,
        o.interactive_latencies_us.len(),
        o.interactive_shed,
        percentile_of(&o.interactive_latencies_us, 0.50),
        percentile_of(&o.interactive_latencies_us, 0.99),
        o.admission.admitted,
        o.admission.rejected_full,
        o.admission.rejected_rate,
        o.admission.shed_deadline,
        o.admission.dropped_total,
    );
    s.push_str("}\n");
    s
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_serving.json".into());
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    assert!(clients >= 1 && per_client >= 1);

    // cold: every request is a previously-unseen graph → full fit.
    let cold_jobs: Vec<Vec<Job>> = (0..clients)
        .map(|w| {
            (0..per_client)
                .map(|i| Job {
                    graph_n: 16 + (w * per_client + i) as u32,
                    fit_seed: 1,
                    sample_seed: 1,
                })
                .collect()
        })
        .collect();

    // warm: one shared fitted model, every request a fresh sample seed.
    let warm_jobs: Vec<Vec<Job>> = (0..clients)
        .map(|w| {
            (0..per_client)
                .map(|i| Job {
                    graph_n: 64,
                    fit_seed: 7,
                    sample_seed: 1000 + (w * per_client + i) as u64,
                })
                .collect()
        })
        .collect();
    let warm_prime = Job { graph_n: 64, fit_seed: 7, sample_seed: 999 };

    // dedup: the exact same request over and over → sample-cache replay.
    let dedup_job = Job { graph_n: 64, fit_seed: 7, sample_seed: 42 };
    let dedup_jobs: Vec<Vec<Job>> =
        (0..clients).map(|_| vec![dedup_job.clone(); per_client]).collect();

    eprintln!("bench_serving: {clients} clients x {per_client} requests per mix");
    let mixes = [
        run_mix("cold", clients, cold_jobs, None),
        run_mix("warm", clients, warm_jobs, Some(&warm_prime)),
        run_mix("dedup", clients, dedup_jobs, Some(&dedup_job)),
    ];
    for m in &mixes {
        eprintln!(
            "  {:<5} {:>6.0} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  \
             scrape p50 {:>5} us ({} B)",
            m.mix,
            m.requests_per_sec(),
            m.percentile(0.50),
            m.percentile(0.95),
            m.percentile(0.99),
            percentile_of(&m.scrape_latencies_us, 0.50),
            m.exposition_bytes,
        );
    }

    let overload = run_overload(clients, per_client);
    eprintln!(
        "  overload: {}/{} accepted ({:.0}% shed), interactive p50 {} us p99 {} us \
         ({} of {} shed)",
        overload.accepted,
        overload.offered,
        100.0 * overload.shed as f64 / overload.offered.max(1) as f64,
        percentile_of(&overload.interactive_latencies_us, 0.50),
        percentile_of(&overload.interactive_latencies_us, 0.99),
        overload.interactive_shed,
        overload.interactive_offered,
    );

    let json = json_report(clients, per_client, &mixes, &overload);
    std::fs::write(&out, &json).expect("write report");
    eprintln!("bench_serving: wrote {out}");
}
