//! Emits `BENCH_serving.json`: latency distribution and throughput of the
//! `fairgen-rpc` network front-end under N concurrent socket clients,
//! across the three serving regimes — `cold` (every request a distinct
//! graph: full fit), `warm` (one fitted model, fresh sample seeds:
//! registry memory hits), and `dedup` (exact request repeats: answered
//! from the sample cache without touching a model).
//!
//! Run via `scripts/bench_serving.sh`, or directly:
//!
//! ```text
//! cargo run --release -p fairgen-bench --bin bench_serving -- \
//!     [OUT.json] [CLIENTS] [REQUESTS_PER_CLIENT]
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_rpc::{RpcClient, RpcConfig, RpcServer};
use fairgen_serve::{FairGenServer, ServedFrom, ServerConfig};

fn ring(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n as usize, &edges)
}

/// One request a client thread should issue.
#[derive(Clone)]
struct Job {
    graph_n: u32,
    fit_seed: u64,
    sample_seed: u64,
}

/// Everything measured about one mix.
struct MixReport {
    mix: &'static str,
    requests: usize,
    errors: usize,
    elapsed_secs: f64,
    /// Sorted per-request latencies, microseconds.
    latencies_us: Vec<u64>,
    served_from: BTreeMap<&'static str, usize>,
}

impl MixReport {
    fn percentile(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((self.latencies_us.len() as f64 - 1.0) * p).round() as usize;
        self.latencies_us[rank]
    }

    fn requests_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.elapsed_secs
    }
}

fn served_from_key(s: ServedFrom) -> &'static str {
    match s {
        ServedFrom::ColdFit => "cold_fit",
        ServedFrom::Memory => "memory",
        ServedFrom::Checkpoint => "checkpoint",
        ServedFrom::DedupCache => "dedup_cache",
    }
}

/// Runs `jobs_per_client` requests on each of `clients` concurrent socket
/// connections against a fresh server, and measures every request.
fn run_mix(
    mix: &'static str,
    clients: usize,
    jobs: Vec<Vec<Job>>,
    prime: Option<&Job>,
) -> MixReport {
    let inner = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())
        .expect("in-process server");
    let mut rpc = RpcServer::serve(inner, RpcConfig::default()).expect("bind loopback");
    let addr = rpc.local_addr();
    let task = TaskSpec::unlabeled();

    // Untimed priming request: puts the warm/dedup mixes into their steady
    // state (model fitted / sample cached) before the clock starts.
    if let Some(job) = prime {
        let mut client = RpcClient::connect(addr).expect("prime connect");
        client
            .generate(&ring(job.graph_n), &task, job.fit_seed, job.sample_seed)
            .expect("prime request");
    }

    let start = Instant::now();
    let workers: Vec<_> = jobs
        .into_iter()
        .map(|client_jobs| {
            let task = task.clone();
            std::thread::spawn(move || {
                let mut client = RpcClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(client_jobs.len());
                let mut outcomes: Vec<&'static str> = Vec::with_capacity(client_jobs.len());
                let mut errors = 0usize;
                for job in &client_jobs {
                    let g = ring(job.graph_n);
                    let t0 = Instant::now();
                    match client.generate(&g, &task, job.fit_seed, job.sample_seed) {
                        Ok(result) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            outcomes.push(served_from_key(result.served_from));
                        }
                        Err(_) => errors += 1,
                    }
                }
                (latencies, outcomes, errors)
            })
        })
        .collect();

    let mut latencies_us = Vec::new();
    let mut served_from: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut errors = 0usize;
    for w in workers {
        let (lat, outcomes, errs) = w.join().expect("client thread");
        latencies_us.extend(lat);
        for o in outcomes {
            *served_from.entry(o).or_insert(0) += 1;
        }
        errors += errs;
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    rpc.shutdown();

    latencies_us.sort_unstable();
    let requests = latencies_us.len();
    assert_eq!(errors, 0, "{mix}: the load harness must not provoke errors");
    assert!(requests > 0 && clients > 0);
    MixReport { mix, requests, errors, elapsed_secs, latencies_us, served_from }
}

fn json_report(clients: usize, per_client: usize, mixes: &[MixReport]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(
        s,
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {per_client}, \
         \"generator\": \"er\", \"transport\": \"http/1.1 json-rpc loopback\"}},"
    );
    s.push_str("  \"mixes\": [\n");
    for (i, m) in mixes.iter().enumerate() {
        let mut served = String::from("{");
        for (j, (k, v)) in m.served_from.iter().enumerate() {
            let _ = write!(served, "{}\"{k}\": {v}", if j > 0 { ", " } else { "" });
        }
        served.push('}');
        let _ = write!(
            s,
            "    {{\"mix\": \"{}\", \"requests\": {}, \"errors\": {}, \
             \"requests_per_sec\": {:.0}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"max_us\": {}, \"served_from\": {}}}",
            m.mix,
            m.requests,
            m.errors,
            m.requests_per_sec(),
            m.percentile(0.50),
            m.percentile(0.95),
            m.percentile(0.99),
            m.latencies_us.last().copied().unwrap_or(0),
            served,
        );
        s.push_str(if i + 1 < mixes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_serving.json".into());
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    assert!(clients >= 1 && per_client >= 1);

    // cold: every request is a previously-unseen graph → full fit.
    let cold_jobs: Vec<Vec<Job>> = (0..clients)
        .map(|w| {
            (0..per_client)
                .map(|i| Job {
                    graph_n: 16 + (w * per_client + i) as u32,
                    fit_seed: 1,
                    sample_seed: 1,
                })
                .collect()
        })
        .collect();

    // warm: one shared fitted model, every request a fresh sample seed.
    let warm_jobs: Vec<Vec<Job>> = (0..clients)
        .map(|w| {
            (0..per_client)
                .map(|i| Job {
                    graph_n: 64,
                    fit_seed: 7,
                    sample_seed: 1000 + (w * per_client + i) as u64,
                })
                .collect()
        })
        .collect();
    let warm_prime = Job { graph_n: 64, fit_seed: 7, sample_seed: 999 };

    // dedup: the exact same request over and over → sample-cache replay.
    let dedup_job = Job { graph_n: 64, fit_seed: 7, sample_seed: 42 };
    let dedup_jobs: Vec<Vec<Job>> =
        (0..clients).map(|_| vec![dedup_job.clone(); per_client]).collect();

    eprintln!("bench_serving: {clients} clients x {per_client} requests per mix");
    let mixes = [
        run_mix("cold", clients, cold_jobs, None),
        run_mix("warm", clients, warm_jobs, Some(&warm_prime)),
        run_mix("dedup", clients, dedup_jobs, Some(&dedup_job)),
    ];
    for m in &mixes {
        eprintln!(
            "  {:<5} {:>6.0} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us",
            m.mix,
            m.requests_per_sec(),
            m.percentile(0.50),
            m.percentile(0.95),
            m.percentile(0.99),
        );
    }

    let json = json_report(clients, per_client, &mixes);
    std::fs::write(&out, &json).expect("write report");
    eprintln!("bench_serving: wrote {out}");
}
