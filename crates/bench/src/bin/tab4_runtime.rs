//! Table IV — running time (seconds) of every method on the seven
//! benchmark datasets (fit + generate). The paper's shape: ER/BA are
//! near-instant, deep models are orders of magnitude slower, FairGen is
//! much faster than NetGAN while TagGen-class models sit in between.
//!
//! A second table reports what the serving layer makes of that split: per
//! method, the concurrent `FairGenServer`'s cold-miss latency (fit +
//! generate on first sight of a fingerprint), its warm-hit latency
//! (generate only, model cached in a shard registry), and its dedup-hit
//! latency (repeated `(fingerprint, seed)` request answered from the
//! sample cache with **zero** model invocations) — the amortization
//! ladder every fit-once/serve-many deployment climbs.

use fairgen_baselines::persist::PersistableGraphGenerator;
use fairgen_baselines::{
    BaGenerator, ErGenerator, GraphGenerator, NetGanGenerator, TagGenGenerator,
};
use fairgen_bench::{
    bench_fairgen_config, bench_gae, bench_task, bench_walklm_budget, budget_scale, header,
    print_row,
};
use fairgen_core::FairGenGenerator;
use fairgen_data::Dataset;
use fairgen_serve::{FairGenServer, ServedFrom, ServerConfig};
use std::time::Instant;

fn server_latency() {
    let scale = budget_scale();
    let ds = Dataset::ALL[0];
    header(
        "Serving",
        &format!(
            "FairGenServer cold-miss vs warm-hit vs dedup-hit latency in seconds, {} dataset",
            ds.name()
        ),
    );
    let lg = ds.generate(42);
    let task = bench_task(&lg, 42);
    let factories: Vec<Box<dyn Fn() -> Box<dyn PersistableGraphGenerator>>> = vec![
        Box::new(|| Box::new(ErGenerator)),
        Box::new(|| Box::new(BaGenerator)),
        Box::new(move || Box::new(bench_gae(scale))),
        Box::new(move || {
            Box::new(NetGanGenerator {
                budget: bench_walklm_budget(scale),
                ..Default::default()
            })
        }),
        Box::new(move || {
            Box::new(TagGenGenerator {
                budget: bench_walklm_budget(scale),
                ..Default::default()
            })
        }),
        Box::new(move || Box::new(FairGenGenerator::new(bench_fairgen_config(scale)))),
    ];
    print_row("method", &["cold", "warm", "dedup", "cold/warm", "warm/dedup"]);
    for factory in factories {
        let server = FairGenServer::new(factory.as_ref(), ServerConfig::default())
            .expect("benchmark config is valid");
        let name = server.generator_name();
        let start = Instant::now();
        let cold =
            server.handle(&lg.graph, &task, 1234, vec![1]).expect("benchmark inputs are valid");
        let cold_s = start.elapsed().as_secs_f64();
        assert_eq!(cold.served_from, ServedFrom::ColdFit);
        let start = Instant::now();
        let warm =
            server.handle(&lg.graph, &task, 1234, vec![2]).expect("benchmark inputs are valid");
        let warm_s = start.elapsed().as_secs_f64();
        assert_eq!(warm.served_from, ServedFrom::Memory, "{name} refitted on a warm hit");
        let start = Instant::now();
        let dedup =
            server.handle(&lg.graph, &task, 1234, vec![2]).expect("benchmark inputs are valid");
        let dedup_s = start.elapsed().as_secs_f64();
        assert_eq!(
            dedup.served_from,
            ServedFrom::DedupCache,
            "{name} reran a deduplicated request"
        );
        assert_eq!(dedup.graphs, warm.graphs, "{name} dedup diverged from generation");
        print_row(
            name,
            &[
                format!("{cold_s:.3}"),
                format!("{warm_s:.3}"),
                format!("{dedup_s:.4}"),
                format!("{:.1}x", cold_s / warm_s.max(1e-9)),
                format!("{:.1}x", warm_s / dedup_s.max(1e-9)),
            ],
        );
    }
}

fn main() {
    header("Table IV", "running time in seconds (fit + generate)");
    let scale = budget_scale();
    let names = ["ER", "BA", "GAE", "NetGAN", "TagGen", "FairGen"];
    let ds_names: Vec<String> = Dataset::ALL.iter().map(|d| d.name().to_string()).collect();
    print_row("method", &ds_names);
    let mut rows: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    for ds in Dataset::ALL {
        let lg = ds.generate(42);
        let task = bench_task(&lg, 42);
        let methods: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(ErGenerator),
            Box::new(BaGenerator),
            Box::new(bench_gae(scale)),
            Box::new(NetGanGenerator {
                budget: bench_walklm_budget(scale),
                ..Default::default()
            }),
            Box::new(TagGenGenerator {
                budget: bench_walklm_budget(scale),
                ..Default::default()
            }),
            Box::new(FairGenGenerator::new(bench_fairgen_config(scale))),
        ];
        for (i, m) in methods.iter().enumerate() {
            let start = Instant::now();
            let _ = m.fit_generate(&lg.graph, &task, 1234).expect("benchmark inputs are valid");
            rows[i].push(format!("{:.3}", start.elapsed().as_secs_f64()));
        }
    }
    for (i, name) in names.iter().enumerate() {
        print_row(name, &rows[i]);
    }
    println!();
    server_latency();
}
