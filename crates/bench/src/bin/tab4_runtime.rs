//! Table IV — running time (seconds) of every method on the seven
//! benchmark datasets (fit + generate). The paper's shape: ER/BA are
//! near-instant, deep models are orders of magnitude slower, FairGen is
//! much faster than NetGAN while TagGen-class models sit in between.
//!
//! A second table reports what the serving layer makes of that split:
//! per method, the `ModelRegistry`'s cold-miss latency (fit + generate on
//! first sight of a fingerprint) versus its warm-hit latency (generate
//! only, model cached) — the amortization every fit-once/serve-many
//! deployment banks on.

use fairgen_baselines::persist::PersistableGraphGenerator;
use fairgen_baselines::{
    BaGenerator, ErGenerator, GraphGenerator, NetGanGenerator, TagGenGenerator,
};
use fairgen_bench::{
    bench_fairgen_config, bench_gae, bench_task, bench_walklm_budget, budget_scale, header,
    print_row,
};
use fairgen_core::FairGenGenerator;
use fairgen_data::Dataset;
use fairgen_serve::{GenerateRequest, ModelRegistry, ServedFrom};
use std::time::Instant;

fn registry_latency() {
    let scale = budget_scale();
    let ds = Dataset::ALL[0];
    header(
        "Registry",
        &format!("cold-miss vs warm-hit latency in seconds, {} dataset", ds.name()),
    );
    let lg = ds.generate(42);
    let task = bench_task(&lg, 42);
    let methods: Vec<Box<dyn PersistableGraphGenerator>> = vec![
        Box::new(ErGenerator),
        Box::new(BaGenerator),
        Box::new(bench_gae(scale)),
        Box::new(NetGanGenerator { budget: bench_walklm_budget(scale), ..Default::default() }),
        Box::new(TagGenGenerator { budget: bench_walklm_budget(scale), ..Default::default() }),
        Box::new(FairGenGenerator::new(bench_fairgen_config(scale))),
    ];
    print_row("method", &["cold", "warm", "speedup"]);
    for gen in methods {
        let mut registry = ModelRegistry::new(gen);
        let name = registry.generator_name();
        let start = Instant::now();
        let cold = registry
            .handle(&GenerateRequest::single(&lg.graph, &task, 1234, 1))
            .expect("benchmark inputs are valid");
        let cold_s = start.elapsed().as_secs_f64();
        assert_eq!(cold.served_from, ServedFrom::ColdFit);
        let start = Instant::now();
        let warm = registry
            .handle(&GenerateRequest::single(&lg.graph, &task, 1234, 2))
            .expect("benchmark inputs are valid");
        let warm_s = start.elapsed().as_secs_f64();
        assert_eq!(warm.served_from, ServedFrom::Memory, "{name} refitted on a warm hit");
        print_row(
            name,
            &[
                format!("{cold_s:.3}"),
                format!("{warm_s:.3}"),
                format!("{:.1}x", cold_s / warm_s.max(1e-9)),
            ],
        );
    }
}

fn main() {
    header("Table IV", "running time in seconds (fit + generate)");
    let scale = budget_scale();
    let names = ["ER", "BA", "GAE", "NetGAN", "TagGen", "FairGen"];
    let ds_names: Vec<String> = Dataset::ALL.iter().map(|d| d.name().to_string()).collect();
    print_row("method", &ds_names);
    let mut rows: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    for ds in Dataset::ALL {
        let lg = ds.generate(42);
        let task = bench_task(&lg, 42);
        let methods: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(ErGenerator),
            Box::new(BaGenerator),
            Box::new(bench_gae(scale)),
            Box::new(NetGanGenerator {
                budget: bench_walklm_budget(scale),
                ..Default::default()
            }),
            Box::new(TagGenGenerator {
                budget: bench_walklm_budget(scale),
                ..Default::default()
            }),
            Box::new(FairGenGenerator::new(bench_fairgen_config(scale))),
        ];
        for (i, m) in methods.iter().enumerate() {
            let start = Instant::now();
            let _ = m.fit_generate(&lg.graph, &task, 1234).expect("benchmark inputs are valid");
            rows[i].push(format!("{:.3}", start.elapsed().as_secs_f64()));
        }
    }
    for (i, name) in names.iter().enumerate() {
        print_row(name, &rows[i]);
    }
    println!();
    registry_latency();
}
