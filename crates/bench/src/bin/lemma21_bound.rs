//! Lemma 2.1 — empirical verification of the context-containment guarantee:
//! a `T`-length lazy walk started from a diffusion-core seed of `S` stays
//! entirely inside `S` with probability at least `1 − T·δ·φ(S)`.
//!
//! Prints, for a planted community on the toy graph and for the BLOG
//! protected group, the exact containment probability (matrix power), a
//! Monte-Carlo estimate, and the bound — the first two must dominate the
//! third for every core member.

use fairgen_bench::header;
use fairgen_data::{toy_two_community, Dataset};
use fairgen_graph::{conductance, Graph, NodeSet, TransitionOp};
use fairgen_walks::{diffusion_core, lemma21_bound, monte_carlo_containment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check(name: &str, g: &Graph, s: &NodeSet, delta: f64) {
    let phi = conductance(g, s);
    println!("--- {name}: |S|={}, phi(S)={phi:.4}, delta={delta} ---", s.len());
    println!(
        "{:>3} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "T", "core size", "exact min", "monte-carlo", "bound", "holds?"
    );
    let op = TransitionOp::new(g);
    let mut rng = StdRng::seed_from_u64(5);
    for t in [2usize, 4, 6, 8, 10] {
        let core = diffusion_core(g, s, delta, t);
        let bound = lemma21_bound(g, s, delta, t);
        if core.is_empty() {
            println!("{t:>3} {:>10} (empty core — bound vacuous)", 0);
            continue;
        }
        let mut exact_min = f64::INFINITY;
        let mut mc_min = f64::INFINITY;
        for &x in core.members() {
            exact_min = exact_min.min(op.containment_probability(x, s, t));
            mc_min = mc_min.min(monte_carlo_containment(g, x, s, t, 3000, &mut rng));
        }
        let holds = exact_min >= bound - 1e-9;
        println!(
            "{t:>3} {:>10} {exact_min:>12.4} {mc_min:>12.4} {bound:>12.4} {:>9}",
            core.len(),
            if holds { "yes" } else { "NO" }
        );
        assert!(holds, "Lemma 2.1 violated at T={t}");
    }
    println!();
}

fn main() {
    header("Lemma 2.1", "containment probability >= 1 - T*delta*phi(S)");
    let toy = toy_two_community(42);
    check(
        "toy protected community",
        &toy.graph,
        toy.protected.as_ref().expect("toy has S+"),
        0.9,
    );
    let blog = Dataset::Blog.generate(42);
    check(
        "BLOG protected group",
        &blog.graph,
        blog.protected.as_ref().expect("blog has S+"),
        0.9,
    );
    println!("all bounds hold.");
}
