//! Classic random-graph generators: Erdős–Rényi and Barabási–Albert.

use fairgen_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let expected = (p * (n * n.saturating_sub(1)) as f64 / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected);
    b.ensure_nodes(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` by **geometric skipping**: instead of flipping a
/// coin per pair, jump straight from one present edge to the next by
/// sampling the skip length from the geometric distribution. Runs in
/// `O(n + m)` for expected edge count `m = p·n·(n−1)/2`, which is what
/// makes million-node sparse graphs (Figure 8's scalability gate)
/// constructible at all — the pairwise [`erdos_renyi`] is `Θ(n²)`.
///
/// Draws the same *distribution* as [`erdos_renyi`], not the same graph
/// for a given rng state (the two consume randomness differently).
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn erdos_renyi_sparse<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let total_pairs = n as u128 * (n.saturating_sub(1)) as u128 / 2;
    let expected = (p * total_pairs as f64) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected);
    b.ensure_nodes(n);
    if p <= 0.0 || total_pairs == 0 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Pairs (u, v) with u < v are flattened in row-major order; `idx` walks
    // that space. Skip ~ Geometric(p) via inverse-transform sampling:
    // ⌊ln(U) / ln(1−p)⌋ pairs are absent before the next present one.
    let log_q = (1.0 - p).ln();
    let mut idx: u128 = 0;
    // `u128` indexing covers n up to ~2⁶⁴; row starts are tracked
    // incrementally so recovering (u, v) from `idx` costs O(1) amortized.
    let mut row: usize = 0;
    let mut row_start: u128 = 0;
    let mut row_len: u128 = (n - 1) as u128;
    loop {
        let uniform: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (uniform.ln() / log_q).floor();
        // A huge skip can exceed the remaining pair space; saturate.
        if skip >= (total_pairs - idx) as f64 {
            break;
        }
        idx += skip as u128;
        if idx >= total_pairs {
            break;
        }
        while idx >= row_start + row_len {
            row_start += row_len;
            row_len -= 1;
            row += 1;
        }
        let u = row as NodeId;
        let v = (row + 1) as u128 + (idx - row_start);
        b.add_edge(u, v as NodeId);
        idx += 1;
    }
    b.build()
}

/// Convenience: a sparse ER graph by `(n, density)` with a seeded rng —
/// the million-node companion of
/// [`er_by_density`](crate::datasets::er_by_density).
pub fn er_sparse_by_density(n: usize, density: f64, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    erdos_renyi_sparse(n, density, &mut rng)
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m_attach + 1` nodes, then each new node attaches to `m_attach` distinct
/// existing nodes chosen proportionally to degree.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    assert!(m_attach > 0, "m_attach must be positive");
    assert!(n > m_attach, "need more nodes than attachment edges");
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    b.ensure_nodes(n);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    let seed_size = m_attach + 1;
    for u in 0..seed_size as NodeId {
        for v in (u + 1)..seed_size as NodeId {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in seed_size as NodeId..n as NodeId {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
        let mut guard = 0usize;
        while chosen.len() < m_attach && guard < 1000 * m_attach {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != new && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(new, t);
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1)) as f64 / 2.0;
        let m = g.m() as f64;
        assert!((m - expected).abs() < 4.0 * expected.sqrt(), "m={m} expected≈{expected}");
    }

    #[test]
    fn er_extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn ba_node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(100, 3, &mut rng);
        assert_eq!(g.n(), 100);
        // Seed clique C(4,2)=6 edges + 96 nodes × 3 attachments.
        assert_eq!(g.m(), 6 + 96 * 3);
        assert!(g.min_degree() >= 3);
    }

    #[test]
    fn ba_degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(500, 2, &mut rng);
        let max_deg = g.max_degree();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(max_deg as f64 > 5.0 * avg, "BA should have hubs: max={max_deg}, avg={avg}");
    }

    #[test]
    fn ba_deterministic_under_seed() {
        let g1 = barabasi_albert(60, 2, &mut StdRng::seed_from_u64(9));
        let g2 = barabasi_albert(60, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn er_invalid_p_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = erdos_renyi(5, 1.5, &mut rng);
    }

    #[test]
    fn sparse_er_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 3000;
        let p = 0.002;
        let g = erdos_renyi_sparse(n, p, &mut rng);
        let expected = p * (n * (n - 1)) as f64 / 2.0;
        let m = g.m() as f64;
        assert_eq!(g.n(), n);
        assert!((m - expected).abs() < 4.0 * expected.sqrt(), "m={m} expected≈{expected}");
    }

    #[test]
    fn sparse_er_extremes_match_dense() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(erdos_renyi_sparse(10, 0.0, &mut rng).m(), 0);
        assert_eq!(erdos_renyi_sparse(10, 1.0, &mut rng).m(), 45);
        assert_eq!(erdos_renyi_sparse(1, 0.5, &mut rng).m(), 0);
    }

    #[test]
    fn sparse_er_deterministic_under_seed() {
        let g1 = er_sparse_by_density(500, 0.01, 11);
        let g2 = er_sparse_by_density(500, 0.01, 11);
        assert_eq!(g1, g2);
    }

    #[test]
    fn sparse_er_degree_distribution_tracks_dense() {
        // Same (n, p), different algorithms: mean degrees must agree to
        // within sampling noise — the skipping sampler draws the same
        // distribution, just in O(n + m).
        let n = 2000;
        let p = 0.004;
        let dense = erdos_renyi(n, p, &mut StdRng::seed_from_u64(8));
        let sparse = erdos_renyi_sparse(n, p, &mut StdRng::seed_from_u64(9));
        let mean = |g: &Graph| 2.0 * g.m() as f64 / g.n() as f64;
        let expected = p * (n - 1) as f64;
        assert!((mean(&dense) - expected).abs() < 0.5);
        assert!((mean(&sparse) - expected).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn sparse_er_invalid_p_panics() {
        let mut rng = StdRng::seed_from_u64(10);
        let _ = erdos_renyi_sparse(5, -0.1, &mut rng);
    }
}
