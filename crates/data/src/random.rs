//! Classic random-graph generators: Erdős–Rényi and Barabási–Albert.

use fairgen_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let expected = (p * (n * n.saturating_sub(1)) as f64 / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected);
    b.ensure_nodes(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m_attach + 1` nodes, then each new node attaches to `m_attach` distinct
/// existing nodes chosen proportionally to degree.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    assert!(m_attach > 0, "m_attach must be positive");
    assert!(n > m_attach, "need more nodes than attachment edges");
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    b.ensure_nodes(n);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    let seed_size = m_attach + 1;
    for u in 0..seed_size as NodeId {
        for v in (u + 1)..seed_size as NodeId {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in seed_size as NodeId..n as NodeId {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
        let mut guard = 0usize;
        while chosen.len() < m_attach && guard < 1000 * m_attach {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != new && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(new, t);
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1)) as f64 / 2.0;
        let m = g.m() as f64;
        assert!((m - expected).abs() < 4.0 * expected.sqrt(), "m={m} expected≈{expected}");
    }

    #[test]
    fn er_extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn ba_node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(100, 3, &mut rng);
        assert_eq!(g.n(), 100);
        // Seed clique C(4,2)=6 edges + 96 nodes × 3 attachments.
        assert_eq!(g.m(), 6 + 96 * 3);
        assert!(g.min_degree() >= 3);
    }

    #[test]
    fn ba_degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(500, 2, &mut rng);
        let max_deg = g.max_degree();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(max_deg as f64 > 5.0 * avg, "BA should have hubs: max={max_deg}, avg={avg}");
    }

    #[test]
    fn ba_deterministic_under_seed() {
        let g1 = barabasi_albert(60, 2, &mut StdRng::seed_from_u64(9));
        let g2 = barabasi_albert(60, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn er_invalid_p_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = erdos_renyi(5, 1.5, &mut rng);
    }
}
