//! Degree-corrected stochastic block model with planted classes and a
//! planted protected group.

use fairgen_graph::{Graph, GraphBuilder, NodeId, NodeSet};
use rand::Rng;

/// Configuration of the degree-corrected SBM.
#[derive(Clone, Debug)]
pub struct DcSbmConfig {
    /// Size of each block (= class). Total node count is their sum plus
    /// `protected_size`.
    pub block_sizes: Vec<usize>,
    /// Base within-block edge probability.
    pub p_intra: f64,
    /// Base between-block edge probability.
    pub p_inter: f64,
    /// Pareto shape of the degree propensities θ (smaller ⇒ heavier tail).
    /// Values around 2.5–3.5 give realistic power-law-ish degrees.
    pub theta_shape: f64,
    /// Number of protected-group nodes appended as an extra small community.
    pub protected_size: usize,
    /// Within-protected-group edge probability (their own dense context).
    pub p_protected_intra: f64,
    /// Probability of an edge between a protected node and any unprotected
    /// node (kept small: the group is structurally a minority).
    pub p_protected_inter: f64,
}

impl DcSbmConfig {
    fn validate(&self) {
        assert!(!self.block_sizes.is_empty(), "need at least one block");
        for &p in &[self.p_intra, self.p_inter, self.p_protected_intra, self.p_protected_inter]
        {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        assert!(self.theta_shape > 1.0, "theta_shape must exceed 1");
    }
}

/// Samples a degree-corrected SBM.
///
/// Returns `(graph, labels, protected)`:
/// * `labels[v]` is the class of node `v` — protected nodes are assigned
///   round-robin to classes (the protected attribute crosses class lines,
///   like "race" in BLOG/FLICKR);
/// * `protected` is the planted protected group `S⁺` (empty ⇒ `None`).
pub fn dc_sbm<R: Rng + ?Sized>(
    cfg: &DcSbmConfig,
    rng: &mut R,
) -> (Graph, Vec<usize>, Option<NodeSet>) {
    cfg.validate();
    let n_unprotected: usize = cfg.block_sizes.iter().sum();
    let n = n_unprotected + cfg.protected_size;
    let num_classes = cfg.block_sizes.len();

    // Block assignment for unprotected nodes; protected nodes appended after.
    let mut labels = Vec::with_capacity(n);
    for (b, &size) in cfg.block_sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(b, size));
    }
    for i in 0..cfg.protected_size {
        labels.push(i % num_classes);
    }

    // Degree propensities: Pareto(shape) normalized to mean 1, clipped so a
    // single θ cannot push pair probabilities past 1 too often.
    let shape = cfg.theta_shape;
    let mut theta: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            u.powf(-1.0 / shape) // Pareto with x_min = 1
        })
        .collect();
    let mean: f64 = theta.iter().sum::<f64>() / n as f64;
    for t in &mut theta {
        *t = (*t / mean).min(4.0);
    }

    let is_protected = |v: usize| v >= n_unprotected;
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let base = match (is_protected(u), is_protected(v)) {
                (true, true) => cfg.p_protected_intra,
                (false, false) => {
                    if labels[u] == labels[v] {
                        cfg.p_intra
                    } else {
                        cfg.p_inter
                    }
                }
                _ => cfg.p_protected_inter,
            };
            let p = (base * theta[u] * theta[v]).min(1.0);
            if p > 0.0 && rng.gen::<f64>() < p {
                builder.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    let graph = builder.build();
    let protected = if cfg.protected_size > 0 {
        let members: Vec<NodeId> = (n_unprotected as NodeId..n as NodeId).collect();
        Some(NodeSet::from_members(n, &members))
    } else {
        None
    };
    (graph, labels, protected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> DcSbmConfig {
        DcSbmConfig {
            block_sizes: vec![60, 60, 60],
            p_intra: 0.15,
            p_inter: 0.01,
            theta_shape: 3.0,
            protected_size: 20,
            p_protected_intra: 0.25,
            p_protected_inter: 0.01,
        }
    }

    #[test]
    fn node_count_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, labels, protected) = dc_sbm(&config(), &mut rng);
        assert_eq!(g.n(), 200);
        assert_eq!(labels.len(), 200);
        assert!(labels.iter().all(|&c| c < 3));
        let s = protected.unwrap();
        assert_eq!(s.len(), 20);
        assert!(s.contains(180) && !s.contains(0));
    }

    #[test]
    fn communities_are_denser_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, labels, _) = dc_sbm(&config(), &mut rng);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            // Only unprotected-unprotected pairs, to isolate block structure.
            if u < 180 && v < 180 {
                if labels[u as usize] == labels[v as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > 3 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn protected_group_is_a_community() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _, protected) = dc_sbm(&config(), &mut rng);
        let s = protected.unwrap();
        let phi = fairgen_graph::conductance(&g, &s);
        assert!(phi < 0.8, "protected group should be a coherent community, φ={phi}");
        // And it has internal edges.
        let (sub, _) = fairgen_graph::induced_subgraph(&g, s.members());
        assert!(sub.m() > s.len() / 2);
    }

    #[test]
    fn degree_distribution_heterogeneous() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, _, _) = dc_sbm(&config(), &mut rng);
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap() as f64;
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(max > 2.0 * mean, "degree correction should create hubs");
    }

    #[test]
    fn no_protected_group_when_size_zero() {
        let mut cfg = config();
        cfg.protected_size = 0;
        let mut rng = StdRng::seed_from_u64(5);
        let (g, labels, protected) = dc_sbm(&cfg, &mut rng);
        assert!(protected.is_none());
        assert_eq!(g.n(), 180);
        assert_eq!(labels.len(), 180);
    }

    #[test]
    fn deterministic_under_seed() {
        let (g1, l1, _) = dc_sbm(&config(), &mut StdRng::seed_from_u64(6));
        let (g2, l2, _) = dc_sbm(&config(), &mut StdRng::seed_from_u64(6));
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let mut cfg = config();
        cfg.p_intra = 1.2;
        let mut rng = StdRng::seed_from_u64(7);
        let _ = dc_sbm(&cfg, &mut rng);
    }
}
