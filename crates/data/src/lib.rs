//! Synthetic dataset generators for the FairGen reproduction.
//!
//! The paper evaluates on seven real networks (Table I: Email, FB, BLOG,
//! FLICKR, GNU, CA, ACM). Those downloads are unavailable in this
//! environment, so this crate generates *synthetic counterparts*: a
//! degree-corrected stochastic block model ([`dc_sbm`]) with planted classes
//! and a planted protected group reproduces the structural asymmetry that
//! drives the paper's claims — a small minority community with its own
//! context that a reconstruction-driven generator tends to under-serve.
//! Sizes are scaled down (~4–10×) so CPU training fits a test run; all
//! experiments compare *relative* behaviour, which scaling preserves
//! (see DESIGN.md §1 for the substitution argument).
//!
//! * [`random`] — Erdős–Rényi and Barabási–Albert generators (also the ER/BA
//!   baselines' generation procedures).
//! * [`sbm`] — the degree-corrected SBM.
//! * [`datasets`] — [`Dataset`], the seven named configurations, few-shot
//!   label sampling, and the Figure-1 toy graph.

pub mod datasets;
pub mod random;
pub mod sbm;

pub use datasets::{er_by_density, toy_multiclass, toy_two_community, Dataset, LabeledGraph};
pub use random::{barabasi_albert, er_sparse_by_density, erdos_renyi, erdos_renyi_sparse};
pub use sbm::{dc_sbm, DcSbmConfig};
