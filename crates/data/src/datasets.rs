//! The seven named benchmark configurations (paper Table I, scaled) and the
//! Figure-1 toy graph.

use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::{Graph, NodeId, NodeSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::random::{barabasi_albert, erdos_renyi};
use crate::sbm::{dc_sbm, DcSbmConfig};

/// A graph together with its task metadata: class labels, the number of
/// classes, and the protected-group membership `S⁺`.
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// Dataset name (paper spelling).
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// Per-node class labels (present only for BLOG / FLICKR / ACM).
    pub labels: Option<Vec<usize>>,
    /// Number of classes (0 when unlabeled).
    pub num_classes: usize,
    /// The protected group `S⁺`.
    pub protected: Option<NodeSet>,
}

impl LabeledGraph {
    /// The unprotected group `S⁻ = V \ S⁺`.
    pub fn unprotected(&self) -> Option<NodeSet> {
        self.protected.as_ref().map(|s| s.complement())
    }

    /// Samples `per_class` few-shot labeled examples per class,
    /// guaranteeing at least one per class (paper problem setting).
    ///
    /// # Errors
    ///
    /// Returns [`FairGenError::MissingLabels`] if the dataset is unlabeled.
    pub fn sample_few_shot_labels<R: Rng + ?Sized>(
        &self,
        per_class: usize,
        rng: &mut R,
    ) -> Result<Vec<(NodeId, usize)>> {
        let labels = self.labels.as_ref().ok_or(FairGenError::MissingLabels)?;
        let mut by_class: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_classes];
        for (v, &c) in labels.iter().enumerate() {
            by_class[c].push(v as NodeId);
        }
        let mut out = Vec::new();
        for (c, nodes) in by_class.iter_mut().enumerate() {
            nodes.shuffle(rng);
            for &v in nodes.iter().take(per_class.max(1)) {
                out.push((v, c));
            }
        }
        Ok(out)
    }

    /// Fraction of nodes in the protected group (0 if none).
    pub fn protected_ratio(&self) -> f64 {
        match &self.protected {
            Some(s) => s.len() as f64 / self.graph.n() as f64,
            None => 0.0,
        }
    }
}

/// The seven benchmark datasets of Table I. Sizes are scaled down for CPU
/// training; class counts and protected-group *ratios* match the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Student e-mail communication network (SNAP `email-Eu`): dense core.
    Email,
    /// Facebook ego-network union (SNAP): dense social graph.
    Fb,
    /// BlogCatalog social network: 6 classes, protected attribute "race".
    Blog,
    /// Flickr social network: 9 classes, protected attribute "race".
    Flickr,
    /// Gnutella file-sharing network (SNAP): sparse, power-law.
    Gnu,
    /// GR-QC collaboration network (SNAP): sparse, clustered.
    Ca,
    /// ACM co-authorship: 9 classes, protected = low-population topic.
    Acm,
}

impl Dataset {
    /// All seven datasets in the paper's Table-I order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Email,
        Dataset::Fb,
        Dataset::Blog,
        Dataset::Flickr,
        Dataset::Gnu,
        Dataset::Ca,
        Dataset::Acm,
    ];

    /// The three datasets with labels and protected groups.
    pub const LABELED: [Dataset; 3] = [Dataset::Blog, Dataset::Flickr, Dataset::Acm];

    /// Paper-style name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Email => "EMAIL",
            Dataset::Fb => "FB",
            Dataset::Blog => "BLOG",
            Dataset::Flickr => "FLICKR",
            Dataset::Gnu => "GNU",
            Dataset::Ca => "CA",
            Dataset::Acm => "ACM",
        }
    }

    /// Whether the dataset carries class labels and a protected group.
    pub fn has_labels(self) -> bool {
        matches!(self, Dataset::Blog | Dataset::Flickr | Dataset::Acm)
    }

    /// Generates the synthetic counterpart, deterministically in `seed`.
    pub fn generate(self, seed: u64) -> LabeledGraph {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (self as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match self {
            // Communication network: 3 latent departments, dense.
            Dataset::Email => {
                let cfg = DcSbmConfig {
                    block_sizes: vec![90, 80, 80],
                    p_intra: 0.12,
                    p_inter: 0.02,
                    theta_shape: 2.8,
                    protected_size: 0,
                    p_protected_intra: 0.0,
                    p_protected_inter: 0.0,
                };
                let (graph, _, _) = dc_sbm(&cfg, &mut rng);
                LabeledGraph {
                    name: self.name(),
                    graph,
                    labels: None,
                    num_classes: 0,
                    protected: None,
                }
            }
            // Social circles: 5 latent communities, dense.
            Dataset::Fb => {
                let cfg = DcSbmConfig {
                    block_sizes: vec![80, 80, 80, 80, 80],
                    p_intra: 0.15,
                    p_inter: 0.006,
                    theta_shape: 2.6,
                    protected_size: 0,
                    p_protected_intra: 0.0,
                    p_protected_inter: 0.0,
                };
                let (graph, _, _) = dc_sbm(&cfg, &mut rng);
                LabeledGraph {
                    name: self.name(),
                    graph,
                    labels: None,
                    num_classes: 0,
                    protected: None,
                }
            }
            // BLOG: 6 classes, protected ≈ 6% of nodes.
            Dataset::Blog => labeled_sbm(self.name(), &[63; 6], 24, 0.10, 0.012, &mut rng),
            // FLICKR: 9 classes, protected ≈ 6%.
            Dataset::Flickr => labeled_sbm(self.name(), &[52; 9], 30, 0.12, 0.012, &mut rng),
            // File-sharing: sparse power-law → Barabási–Albert.
            Dataset::Gnu => {
                let graph = barabasi_albert(450, 3, &mut rng);
                LabeledGraph {
                    name: self.name(),
                    graph,
                    labels: None,
                    num_classes: 0,
                    protected: None,
                }
            }
            // Collaboration: sparse, clustered — BA with small attachment.
            Dataset::Ca => {
                let graph = barabasi_albert(400, 2, &mut rng);
                LabeledGraph {
                    name: self.name(),
                    graph,
                    labels: None,
                    num_classes: 0,
                    protected: None,
                }
            }
            // ACM: 9 classes, protected = small-population topic (~3.6%).
            Dataset::Acm => labeled_sbm(self.name(), &[64; 9], 22, 0.09, 0.008, &mut rng),
        }
    }
}

fn labeled_sbm(
    name: &'static str,
    block_sizes: &[usize],
    protected_size: usize,
    p_intra: f64,
    p_inter: f64,
    rng: &mut StdRng,
) -> LabeledGraph {
    let cfg = DcSbmConfig {
        block_sizes: block_sizes.to_vec(),
        p_intra,
        p_inter,
        theta_shape: 3.0,
        protected_size,
        p_protected_intra: p_intra * 1.8,
        p_protected_inter: p_inter,
    };
    let (graph, labels, protected) = dc_sbm(&cfg, rng);
    LabeledGraph {
        name,
        graph,
        num_classes: block_sizes.len(),
        labels: Some(labels),
        protected,
    }
}

/// The Figure-1 toy graph: one large unprotected community and one small
/// protected community joined by a few bridges — the minimal setting in
/// which representation disparity is visible.
pub fn toy_two_community(seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = DcSbmConfig {
        block_sizes: vec![80],
        p_intra: 0.18,
        p_inter: 0.0,
        theta_shape: 3.2,
        protected_size: 20,
        p_protected_intra: 0.30,
        p_protected_inter: 0.01,
    };
    let (graph, labels, protected) = dc_sbm(&cfg, &mut rng);
    LabeledGraph { name: "TOY", graph, labels: Some(labels), num_classes: 1, protected }
}

/// A small *multi-class* toy: three labeled communities plus a protected
/// community whose members are spread across the classes. Used by the
/// sensitivity analysis (Figure 7), where the discriminator terms
/// `J_P`, `J_L`, `J_F` are only non-trivial with ≥ 2 classes.
pub fn toy_multiclass(seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = DcSbmConfig {
        block_sizes: vec![36, 36, 36],
        p_intra: 0.2,
        p_inter: 0.015,
        theta_shape: 3.2,
        protected_size: 18,
        p_protected_intra: 0.3,
        p_protected_inter: 0.012,
    };
    let (graph, labels, protected) = dc_sbm(&cfg, &mut rng);
    LabeledGraph { name: "TOY3", graph, labels: Some(labels), num_classes: 3, protected }
}

/// Convenience: an ER graph by `(n, density)` — the scalability workload of
/// Figure 8 ("we generate the synthetic graphs via ER").
pub fn er_by_density(n: usize, density: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    erdos_renyi(n, density, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_generate() {
        for d in Dataset::ALL {
            let lg = d.generate(7);
            assert!(lg.graph.n() >= 200, "{} too small", d.name());
            assert!(lg.graph.m() > lg.graph.n(), "{} too sparse", d.name());
            assert_eq!(lg.labels.is_some(), d.has_labels());
            assert_eq!(lg.protected.is_some(), d.has_labels());
        }
    }

    #[test]
    fn labeled_datasets_have_correct_class_counts() {
        assert_eq!(Dataset::Blog.generate(1).num_classes, 6);
        assert_eq!(Dataset::Flickr.generate(1).num_classes, 9);
        assert_eq!(Dataset::Acm.generate(1).num_classes, 9);
    }

    #[test]
    fn protected_ratios_match_paper_scale() {
        // Paper: BLOG 300/5196 ≈ 5.8%, FLICKR 450/7575 ≈ 5.9%, ACM 597/16484 ≈ 3.6%.
        let blog = Dataset::Blog.generate(2);
        let flickr = Dataset::Flickr.generate(2);
        let acm = Dataset::Acm.generate(2);
        assert!((blog.protected_ratio() - 0.058).abs() < 0.02);
        assert!((flickr.protected_ratio() - 0.059).abs() < 0.02);
        assert!((acm.protected_ratio() - 0.036).abs() < 0.015);
    }

    #[test]
    fn few_shot_sampling_covers_every_class() {
        let lg = Dataset::Blog.generate(3);
        let mut rng = StdRng::seed_from_u64(0);
        let labeled = lg.sample_few_shot_labels(2, &mut rng).expect("BLOG is labeled");
        let mut seen = vec![false; lg.num_classes];
        for (v, c) in &labeled {
            assert_eq!(lg.labels.as_ref().unwrap()[*v as usize], *c);
            seen[*c] = true;
        }
        assert!(seen.iter().all(|&s| s), "every class must appear");
        assert_eq!(labeled.len(), 2 * lg.num_classes);
    }

    #[test]
    fn unprotected_complements_protected() {
        let lg = Dataset::Flickr.generate(4);
        let s = lg.protected.clone().unwrap();
        let u = lg.unprotected().unwrap();
        assert_eq!(s.len() + u.len(), lg.graph.n());
        assert!(s.intersect(&u).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Acm.generate(42);
        let b = Dataset::Acm.generate(42);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_datasets_differ_under_same_seed() {
        let a = Dataset::Email.generate(42);
        let b = Dataset::Fb.generate(42);
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn toy_graph_has_minority_community() {
        let toy = toy_two_community(5);
        let s = toy.protected.clone().unwrap();
        assert_eq!(toy.graph.n(), 100);
        assert_eq!(s.len(), 20);
        let phi = fairgen_graph::conductance(&toy.graph, &s);
        assert!(phi < 0.3, "toy protected community must be well-separated, φ={phi}");
    }

    #[test]
    fn er_by_density_matches() {
        let g = er_by_density(100, 0.05, 1);
        assert_eq!(g.n(), 100);
        let density = g.m() as f64 / (100.0 * 99.0 / 2.0);
        assert!((density - 0.05).abs() < 0.02);
    }

    #[test]
    fn few_shot_on_unlabeled_errors() {
        let lg = Dataset::Email.generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            lg.sample_few_shot_labels(1, &mut rng),
            Err(FairGenError::MissingLabels)
        ));
    }
}

#[cfg(test)]
mod toy_multiclass_tests {
    use super::*;

    #[test]
    fn toy_multiclass_shape() {
        let lg = toy_multiclass(1);
        assert_eq!(lg.graph.n(), 126);
        assert_eq!(lg.num_classes, 3);
        let labels = lg.labels.as_ref().unwrap();
        for c in 0..3 {
            assert!(labels.iter().filter(|&&l| l == c).count() >= 36);
        }
        assert_eq!(lg.protected.as_ref().unwrap().len(), 18);
    }

    #[test]
    fn toy_multiclass_protected_spans_classes() {
        let lg = toy_multiclass(2);
        let s = lg.protected.as_ref().unwrap();
        let labels = lg.labels.as_ref().unwrap();
        let classes: std::collections::HashSet<usize> =
            s.members().iter().map(|&v| labels[v as usize]).collect();
        assert_eq!(classes.len(), 3, "protected attribute must cross class lines");
    }
}
