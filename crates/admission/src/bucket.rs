//! Deterministic per-tenant token-bucket rate limiting.
//!
//! A [`TokenBucket`] holds up to `burst` tokens and refills at
//! `tokens_per_sec`. All arithmetic is integer — tokens are tracked in
//! *nano-tokens* (`1 token = 10⁹ nano-tokens`), and a refill over an
//! elapsed interval of `Δ` nanoseconds adds exactly
//! `Δ × tokens_per_sec` nano-tokens (u128 intermediate, no rounding, no
//! float drift). Fed by an injected [`Clock`], the same admit/advance
//! sequence always produces the same admit/reject decisions — the
//! `bucket_props` proptest pins both determinism and the burst ceiling.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::tenant::TenantId;

/// Nano-tokens per token: the fixed-point scale of the refill arithmetic.
const SCALE: u128 = 1_000_000_000;

/// Per-tenant rate policy: every tenant gets its own bucket with this
/// shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateConfig {
    /// Bucket capacity in tokens — the largest burst a tenant can spend at
    /// once. Must be at least 1.
    pub burst: u64,
    /// Refill rate in tokens per second. Zero means no refill: the tenant
    /// gets exactly `burst` tokens, ever (useful in tests).
    pub tokens_per_sec: u64,
}

impl RateConfig {
    /// Whole seconds (rounded up, at least 1) an empty bucket needs to
    /// accrue `tokens` — the honest `Retry-After` for a rate-limited
    /// client. `None` when the bucket never refills: retrying is futile
    /// and the caller should fall back to its own default.
    pub fn secs_to_accrue(&self, tokens: u64) -> Option<u64> {
        if self.tokens_per_sec == 0 {
            return None;
        }
        Some(tokens.div_ceil(self.tokens_per_sec).max(1))
    }
}

/// One tenant's bucket. [`TokenBucket::try_take`] is the only mutation:
/// refill-then-spend in a single step, against a caller-supplied "now".
#[derive(Clone, Debug)]
pub struct TokenBucket {
    cfg: RateConfig,
    /// Current balance, in nano-tokens. Starts full.
    nano_tokens: u128,
    /// The clock reading of the last refill.
    last_nanos: u64,
}

impl TokenBucket {
    /// A full bucket whose refill interval starts at `now_nanos`.
    pub fn new(cfg: RateConfig, now_nanos: u64) -> Self {
        TokenBucket { cfg, nano_tokens: cfg.burst as u128 * SCALE, last_nanos: now_nanos }
    }

    /// Refills for the time elapsed since the last call, then spends `cost`
    /// tokens if the balance covers them. Returns whether the spend
    /// happened. A `now_nanos` earlier than the last refill (possible when
    /// racing producers read the clock in one order and lock the bucket in
    /// another) refills nothing but still allows spending.
    pub fn try_take(&mut self, now_nanos: u64, cost: u64) -> bool {
        self.refill(now_nanos);
        let want = cost as u128 * SCALE;
        if self.nano_tokens >= want {
            self.nano_tokens -= want;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (after refilling to `now_nanos`).
    pub fn available(&mut self, now_nanos: u64) -> u64 {
        self.refill(now_nanos);
        (self.nano_tokens / SCALE) as u64
    }

    fn refill(&mut self, now_nanos: u64) {
        let elapsed = now_nanos.saturating_sub(self.last_nanos);
        if elapsed == 0 {
            return;
        }
        self.last_nanos = now_nanos;
        // elapsed ns × tokens/sec = elapsed × rate nano-tokens: the ns→sec
        // division and the token→nano-token multiplication are both 10⁹, so
        // they cancel exactly — no remainder is ever discarded.
        let added = elapsed as u128 * self.cfg.tokens_per_sec as u128;
        self.nano_tokens = (self.nano_tokens + added).min(self.cfg.burst as u128 * SCALE);
    }
}

/// A map of per-tenant [`TokenBucket`]s behind one lock. Buckets are
/// created on a tenant's first request, full.
pub struct RateLimiter {
    cfg: RateConfig,
    clock: Arc<dyn Clock>,
    buckets: Mutex<HashMap<TenantId, TokenBucket>>,
}

impl RateLimiter {
    /// A limiter applying `cfg` to every tenant independently.
    pub fn new(cfg: RateConfig, clock: Arc<dyn Clock>) -> Self {
        RateLimiter { cfg, clock, buckets: Mutex::new(HashMap::new()) }
    }

    /// Spends `cost` tokens from `tenant`'s bucket if it can afford them.
    pub fn try_admit(&self, tenant: &TenantId, cost: u64) -> bool {
        let now = self.clock.now_nanos();
        let mut buckets = self.buckets.lock().expect("rate limiter lock");
        let bucket =
            buckets.entry(tenant.clone()).or_insert_with(|| TokenBucket::new(self.cfg, now));
        bucket.try_take(now, cost)
    }

    /// Whole tokens `tenant` could spend right now (creating its bucket if
    /// this is the first sighting).
    pub fn available(&self, tenant: &TenantId) -> u64 {
        let now = self.clock.now_nanos();
        let mut buckets = self.buckets.lock().expect("rate limiter lock");
        let bucket =
            buckets.entry(tenant.clone()).or_insert_with(|| TokenBucket::new(self.cfg, now));
        bucket.available(now)
    }

    /// Tenants with a bucket (i.e. seen at least once).
    pub fn tenants(&self) -> usize {
        self.buckets.lock().expect("rate limiter lock").len()
    }

    /// The per-tenant rate policy this limiter applies.
    pub fn config(&self) -> RateConfig {
        self.cfg
    }
}

impl std::fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimiter")
            .field("cfg", &self.cfg)
            .field("tenants", &self.tenants())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    const NANOS_PER_SEC: u64 = 1_000_000_000;

    #[test]
    fn starts_full_and_spends_down_to_zero() {
        let mut b = TokenBucket::new(RateConfig { burst: 3, tokens_per_sec: 0 }, 0);
        assert!(b.try_take(0, 1));
        assert!(b.try_take(0, 2));
        assert!(!b.try_take(0, 1), "empty with zero refill");
    }

    #[test]
    fn refill_is_exact_integer_arithmetic() {
        let mut b = TokenBucket::new(RateConfig { burst: 10, tokens_per_sec: 2 }, 0);
        assert!(b.try_take(0, 10));
        // 2 tokens/sec: after exactly half a second, exactly one token.
        assert!(!b.try_take(NANOS_PER_SEC / 2 - 1, 1), "one nanosecond short");
        assert!(b.try_take(NANOS_PER_SEC / 2, 1), "exactly one token at 500ms");
        assert!(!b.try_take(NANOS_PER_SEC / 2, 1), "and it was spent");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(RateConfig { burst: 4, tokens_per_sec: 1000 }, 0);
        assert_eq!(b.available(u64::MAX / 2), 4, "a long sleep never exceeds burst");
        assert!(b.try_take(u64::MAX / 2, 4));
        assert!(!b.try_take(u64::MAX / 2, 1));
    }

    #[test]
    fn time_going_backwards_refills_nothing_but_never_panics() {
        let mut b = TokenBucket::new(RateConfig { burst: 2, tokens_per_sec: 1 }, 1000);
        assert!(b.try_take(1000, 2));
        assert!(!b.try_take(500, 1), "no refill from a stale clock reading");
        assert!(b.try_take(1000 + NANOS_PER_SEC, 1), "forward time refills again");
    }

    #[test]
    fn secs_to_accrue_rounds_up_and_handles_no_refill() {
        let cfg = RateConfig { burst: 10, tokens_per_sec: 3 };
        assert_eq!(cfg.secs_to_accrue(1), Some(1));
        assert_eq!(cfg.secs_to_accrue(3), Some(1));
        assert_eq!(cfg.secs_to_accrue(4), Some(2), "partial seconds round up");
        assert_eq!(cfg.secs_to_accrue(0), Some(1), "never advertise a zero wait");
        let frozen = RateConfig { burst: 10, tokens_per_sec: 0 };
        assert_eq!(frozen.secs_to_accrue(1), None);
    }

    #[test]
    fn limiter_isolates_tenants() {
        let clock = Arc::new(ManualClock::at(0));
        let limiter =
            RateLimiter::new(RateConfig { burst: 2, tokens_per_sec: 0 }, clock.clone());
        let a = TenantId::new("a");
        let b = TenantId::new("b");
        assert!(limiter.try_admit(&a, 2));
        assert!(!limiter.try_admit(&a, 1), "tenant a exhausted");
        assert!(limiter.try_admit(&b, 2), "tenant b unaffected");
        assert_eq!(limiter.tenants(), 2);
    }

    #[test]
    fn limiter_refills_under_the_injected_clock() {
        let clock = Arc::new(ManualClock::at(0));
        let limiter =
            RateLimiter::new(RateConfig { burst: 1, tokens_per_sec: 5 }, clock.clone());
        let t = TenantId::default();
        assert!(limiter.try_admit(&t, 1));
        assert!(!limiter.try_admit(&t, 1));
        clock.advance(NANOS_PER_SEC / 5);
        assert!(limiter.try_admit(&t, 1), "one token back after 200ms at 5/s");
    }
}
