//! The admission queue: a bounded, two-lane, deadline-aware work queue.
//!
//! [`AdmissionQueue`] wraps a [`LaneChannel`] and layers admission policy
//! on the primitive:
//!
//! * **Capacity bound** — a push over [`AdmissionConfig::queue_capacity`]
//!   fails with [`AdmitError::Full`] (recorded in the shared
//!   [`DroppedRing`]); a push after [`close`](AdmissionQueue::close) fails
//!   with the *distinct* [`AdmitError::Closed`], so producers can tell
//!   "shed and retry" from "stop".
//! * **Priority with anti-starvation aging** — [`drain`](AdmissionQueue::drain)
//!   orders interactive work ahead of bulk, but after every
//!   [`AdmissionConfig::bulk_after`] consecutive interactive emissions
//!   while bulk waits, one bulk job is emitted. The streak counter persists
//!   across drains, so the guarantee is global: bulk lags by at most
//!   `bulk_after` interactive jobs, and an interactive job at position `k`
//!   of its lane has at most `⌈k / bulk_after⌉ + 1` bulk jobs ahead of it —
//!   the "bulk-aging window".
//! * **Deadline shedding** — jobs are stamped with an expiry at admission
//!   ([`AdmitMeta::deadline`], falling back to
//!   [`AdmissionConfig::queue_deadline`]); a job whose expiry passed while
//!   it waited comes back in [`Drain::shed`] instead of [`Drain::served`],
//!   so the worker answers it with a typed rejection instead of spending a
//!   model invocation on an answer nobody is waiting for.
//!
//! All time flows through the injected [`Clock`], so every one of these
//! behaviors is exactly testable under a
//! [`ManualClock`](crate::clock::ManualClock).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use fairgen_graph::{FairGenError, GraphFingerprint};
use fairgen_par::{Lane, LaneChannel, PushError};

use crate::bucket::RateConfig;
use crate::clock::{Clock, SystemClock};
use crate::ring::{DropReason, DroppedEntry, DroppedRing};
use crate::tenant::TenantId;

/// Admission policy knobs. The default is **permissive** — unbounded
/// queues, no deadlines, no rate limiting — which reproduces the
/// pre-admission serving behavior bit-for-bit.
#[derive(Clone)]
pub struct AdmissionConfig {
    /// Maximum jobs queued per shard across both lanes (`None` =
    /// unbounded). Pushes beyond it are rejected typed, never blocked.
    pub queue_capacity: Option<usize>,
    /// Anti-starvation aging window: at most this many consecutive
    /// interactive jobs drain ahead of a waiting bulk job. Must be ≥ 1.
    pub bulk_after: u32,
    /// Default maximum queue age: a job older than this at drain time is
    /// shed with a typed rejection instead of served (`None` = never).
    pub queue_deadline: Option<Duration>,
    /// Per-tenant token-bucket policy (`None` = no rate limiting).
    pub rate: Option<RateConfig>,
    /// Entries retained in the dropped-work diagnostics ring (0 keeps only
    /// the lifetime counter).
    pub dropped_ring: usize,
    /// The time source for queue ages, deadlines, and bucket refills.
    /// Injectable so tests are exact; defaults to the system clock.
    pub clock: Arc<dyn Clock>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: None,
            bulk_after: 4,
            queue_deadline: None,
            rate: None,
            dropped_ring: 64,
            clock: Arc::new(SystemClock::new()),
        }
    }
}

impl std::fmt::Debug for AdmissionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionConfig")
            .field("queue_capacity", &self.queue_capacity)
            .field("bulk_after", &self.bulk_after)
            .field("queue_deadline", &self.queue_deadline)
            .field("rate", &self.rate)
            .field("dropped_ring", &self.dropped_ring)
            .field("clock", &self.clock.name())
            .finish()
    }
}

impl AdmissionConfig {
    /// Rejects degenerate knob values with a typed
    /// [`FairGenError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), FairGenError> {
        if self.queue_capacity == Some(0) {
            return Err(FairGenError::InvalidConfig {
                field: "admission.queue_capacity",
                message: "a zero-capacity queue can never admit work; use None for unbounded"
                    .into(),
            });
        }
        if self.bulk_after == 0 {
            return Err(FairGenError::InvalidConfig {
                field: "admission.bulk_after",
                message: "the aging window must admit at least one interactive job per bulk \
                          job"
                .into(),
            });
        }
        if let Some(rate) = &self.rate {
            if rate.burst == 0 {
                return Err(FairGenError::InvalidConfig {
                    field: "admission.rate.burst",
                    message: "a zero-burst bucket rejects every request; use None to disable \
                              rate limiting"
                        .into(),
                });
            }
        }
        Ok(())
    }
}

/// Per-job admission metadata, supplied by the producer at push time.
#[derive(Clone, Debug)]
pub struct AdmitMeta {
    /// Who the job is billed to.
    pub tenant: TenantId,
    /// Which priority lane it travels in.
    pub lane: Lane,
    /// The request's routing/cache key (diagnostics only here).
    pub fingerprint: GraphFingerprint,
    /// Per-job deadline override; `None` falls back to
    /// [`AdmissionConfig::queue_deadline`].
    pub deadline: Option<Duration>,
}

/// A job inside (or drained from) the queue, with its admission stamps.
#[derive(Debug)]
pub struct QueuedJob<T> {
    /// The producer's payload.
    pub item: T,
    /// Who it is billed to.
    pub tenant: TenantId,
    /// The lane it traveled in.
    pub lane: Lane,
    /// Its routing/cache key.
    pub fingerprint: GraphFingerprint,
    /// Clock reading at admission.
    pub enqueued_at: u64,
    /// Absolute expiry instant (`None` = never sheds).
    pub expires_at: Option<u64>,
}

impl<T> QueuedJob<T> {
    /// How long this job has been queued as of `now_nanos`.
    pub fn age_at(&self, now_nanos: u64) -> u64 {
        now_nanos.saturating_sub(self.enqueued_at)
    }
}

/// Why a push was refused. Like [`PushError`], the rejected item comes
/// back; unlike it, the two cases map to *different* typed
/// [`FairGenError`]s ([`Overloaded`](FairGenError::Overloaded) vs
/// [`ServerClosed`](FairGenError::ServerClosed)).
#[derive(Debug)]
pub enum AdmitError<T> {
    /// The queue is at capacity — shed, answer 429, client may retry.
    Full(T),
    /// The queue is closed — the server is shutting down, answer 503.
    Closed(T),
}

impl<T> AdmitError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            AdmitError::Full(item) | AdmitError::Closed(item) => item,
        }
    }
}

/// One drain's outcome: jobs to serve, in priority order, and jobs to shed.
#[derive(Debug)]
pub struct Drain<T> {
    /// Jobs to serve, interleaved per the aging policy.
    pub served: Vec<QueuedJob<T>>,
    /// Jobs whose deadline expired while queued; already recorded in the
    /// ring — the worker's only duty is answering each with a typed
    /// rejection.
    pub shed: Vec<QueuedJob<T>>,
    /// The clock reading the drain ran at (for queue-age diagnostics).
    pub now_nanos: u64,
}

impl<T> Drain<T> {
    /// Whether the drain came back with nothing at all — the queue is
    /// closed and fully drained.
    pub fn is_empty(&self) -> bool {
        self.served.is_empty() && self.shed.is_empty()
    }
}

/// Lifetime counters of one [`AdmissionQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Pushes rejected at capacity.
    pub rejected_full: u64,
    /// Jobs shed at drain time on an expired deadline.
    pub shed_deadline: u64,
}

/// A bounded, two-lane, deadline-aware work queue. See the
/// [module docs](self).
pub struct AdmissionQueue<T> {
    chan: LaneChannel<QueuedJob<T>>,
    default_deadline: Option<Duration>,
    bulk_after: u32,
    clock: Arc<dyn Clock>,
    ring: Arc<DroppedRing>,
    /// Consecutive interactive emissions since the last bulk one; persists
    /// across drains so the aging guarantee is global, not per-batch.
    streak: Mutex<u32>,
    stats: Mutex<QueueStats>,
}

impl<T> AdmissionQueue<T> {
    /// An open queue under `cfg`, recording drops into `ring`. `cfg` must
    /// already be [validated](AdmissionConfig::validate).
    pub fn new(cfg: &AdmissionConfig, ring: Arc<DroppedRing>) -> Self {
        AdmissionQueue {
            chan: LaneChannel::new(cfg.queue_capacity),
            default_deadline: cfg.queue_deadline,
            bulk_after: cfg.bulk_after.max(1),
            clock: Arc::clone(&cfg.clock),
            ring,
            streak: Mutex::new(0),
            stats: Mutex::new(QueueStats::default()),
        }
    }

    /// Admits `item` with `meta`, stamping its enqueue time and expiry.
    /// Over-capacity and closed pushes fail distinctly; the capacity
    /// rejection is recorded in the dropped ring.
    pub fn push(&self, item: T, meta: AdmitMeta) -> Result<(), AdmitError<T>> {
        let now = self.clock.now_nanos();
        let deadline = meta.deadline.or(self.default_deadline);
        let job = QueuedJob {
            item,
            tenant: meta.tenant,
            lane: meta.lane,
            fingerprint: meta.fingerprint,
            enqueued_at: now,
            expires_at: deadline.map(|d| now.saturating_add(nanos(d))),
        };
        match self.chan.push(meta.lane, job) {
            Ok(()) => {
                self.stats.lock().expect("queue stats").admitted += 1;
                Ok(())
            }
            Err(PushError::Full(job)) => {
                self.stats.lock().expect("queue stats").rejected_full += 1;
                self.ring.record(DroppedEntry {
                    tenant: job.tenant.clone(),
                    fingerprint: job.fingerprint,
                    reason: DropReason::QueueFull,
                    queue_age_nanos: 0,
                });
                Err(AdmitError::Full(job.item))
            }
            Err(PushError::Closed(job)) => Err(AdmitError::Closed(job.item)),
        }
    }

    /// Blocks until work arrives, then returns everything queued — expired
    /// jobs in [`Drain::shed`] (recorded in the ring), live jobs in
    /// [`Drain::served`] in aged-interleave priority order. An
    /// [empty](Drain::is_empty) drain means closed-and-drained.
    pub fn drain(&self) -> Drain<T> {
        let drained = self.chan.drain();
        self.admit_drained(drained)
    }

    /// Non-blocking variant of [`drain`](AdmissionQueue::drain).
    pub fn try_drain(&self) -> Drain<T> {
        let drained = self.chan.try_drain();
        self.admit_drained(drained)
    }

    fn admit_drained(&self, drained: fairgen_par::Drained<QueuedJob<T>>) -> Drain<T> {
        let now = self.clock.now_nanos();
        let (interactive, mut shed) = self.split_expired(drained.interactive, now);
        let (bulk, shed_bulk) = self.split_expired(drained.bulk, now);
        shed.extend(shed_bulk);
        if !shed.is_empty() {
            self.stats.lock().expect("queue stats").shed_deadline += shed.len() as u64;
            for job in &shed {
                self.ring.record(DroppedEntry {
                    tenant: job.tenant.clone(),
                    fingerprint: job.fingerprint,
                    reason: DropReason::DeadlineExpired,
                    queue_age_nanos: job.age_at(now),
                });
            }
        }
        Drain { served: self.interleave(interactive, bulk), shed, now_nanos: now }
    }

    fn split_expired(
        &self,
        jobs: Vec<QueuedJob<T>>,
        now: u64,
    ) -> (Vec<QueuedJob<T>>, Vec<QueuedJob<T>>) {
        let mut live = Vec::with_capacity(jobs.len());
        let mut shed = Vec::new();
        for job in jobs {
            match job.expires_at {
                Some(expiry) if now >= expiry => shed.push(job),
                _ => live.push(job),
            }
        }
        (live, shed)
    }

    /// Weighted interleave with a cross-drain streak: interactive first,
    /// but after `bulk_after` consecutive interactive jobs while bulk
    /// waits, one bulk job goes ahead.
    fn interleave(
        &self,
        interactive: Vec<QueuedJob<T>>,
        bulk: Vec<QueuedJob<T>>,
    ) -> Vec<QueuedJob<T>> {
        let mut streak = self.streak.lock().expect("queue streak");
        let mut out = Vec::with_capacity(interactive.len() + bulk.len());
        let mut interactive = interactive.into_iter();
        let mut bulk = bulk.into_iter().peekable();
        for job in interactive.by_ref() {
            if *streak >= self.bulk_after {
                match bulk.next() {
                    Some(b) => {
                        out.push(b);
                        *streak = 0;
                    }
                    None => *streak = 0, // nothing waiting: the lag resets
                }
            }
            out.push(job);
            *streak += 1;
        }
        if bulk.peek().is_some() {
            *streak = 0; // bulk progresses now; interactive owes it nothing
            out.extend(bulk);
        }
        out
    }

    /// Lifetime admitted/rejected/shed counters.
    pub fn stats(&self) -> QueueStats {
        *self.stats.lock().expect("queue stats")
    }

    /// Jobs currently queued across both lanes.
    pub fn len(&self) -> usize {
        self.chan.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.chan.is_empty()
    }

    /// Closes the queue: further pushes fail [`AdmitError::Closed`],
    /// blocked drains wake, queued jobs stay deliverable. Idempotent.
    pub fn close(&self) {
        self.chan.close();
    }

    /// Whether [`close`](AdmissionQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.chan.is_closed()
    }

    /// The shared drop-diagnostics ring.
    pub fn ring(&self) -> &Arc<DroppedRing> {
        &self.ring
    }
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("chan", &self.chan)
            .field("bulk_after", &self.bulk_after)
            .field("default_deadline", &self.default_deadline)
            .finish()
    }
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use fairgen_graph::FingerprintBuilder;

    fn fp(tag: u64) -> GraphFingerprint {
        let mut b = FingerprintBuilder::new();
        b.add_u64(tag);
        b.finish()
    }

    fn meta(lane: Lane) -> AdmitMeta {
        AdmitMeta { tenant: TenantId::default(), lane, fingerprint: fp(0), deadline: None }
    }

    fn queue(cfg: &AdmissionConfig) -> AdmissionQueue<u32> {
        AdmissionQueue::new(cfg, Arc::new(DroppedRing::new(cfg.dropped_ring)))
    }

    #[test]
    fn permissive_default_validates_and_admits_everything() {
        let cfg = AdmissionConfig::default();
        cfg.validate().expect("permissive default is valid");
        let q = queue(&cfg);
        for i in 0..1000 {
            q.push(i, meta(Lane::Bulk)).expect("unbounded");
        }
        assert_eq!(q.stats().admitted, 1000);
        assert_eq!(q.drain().served.len(), 1000);
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        for cfg in [
            AdmissionConfig { queue_capacity: Some(0), ..Default::default() },
            AdmissionConfig { bulk_after: 0, ..Default::default() },
            AdmissionConfig {
                rate: Some(RateConfig { burst: 0, tokens_per_sec: 1 }),
                ..Default::default()
            },
        ] {
            assert!(matches!(cfg.validate(), Err(FairGenError::InvalidConfig { .. })));
        }
    }

    #[test]
    fn full_and_closed_are_distinct_typed_rejections() {
        let cfg = AdmissionConfig { queue_capacity: Some(1), ..Default::default() };
        let q = queue(&cfg);
        q.push(1, meta(Lane::Interactive)).expect("first fits");
        assert!(matches!(q.push(2, meta(Lane::Interactive)), Err(AdmitError::Full(2))));
        assert_eq!(q.stats().rejected_full, 1);
        assert_eq!(q.ring().total(), 1, "capacity rejection lands in the ring");
        q.close();
        assert!(matches!(q.push(3, meta(Lane::Interactive)), Err(AdmitError::Closed(3))));
        assert_eq!(q.stats().rejected_full, 1, "closed is not counted as full");
        assert_eq!(q.ring().total(), 1, "closure is orderly, not a drop");
    }

    #[test]
    fn interactive_drains_ahead_of_bulk() {
        let cfg = AdmissionConfig { bulk_after: 10, ..Default::default() };
        let q = queue(&cfg);
        q.push(100, meta(Lane::Bulk)).expect("open");
        q.push(1, meta(Lane::Interactive)).expect("open");
        q.push(101, meta(Lane::Bulk)).expect("open");
        q.push(2, meta(Lane::Interactive)).expect("open");
        let order: Vec<u32> = q.drain().served.into_iter().map(|j| j.item).collect();
        assert_eq!(order, vec![1, 2, 100, 101]);
    }

    #[test]
    fn aging_lets_bulk_make_progress_within_the_window() {
        let cfg = AdmissionConfig { bulk_after: 2, ..Default::default() };
        let q = queue(&cfg);
        for i in 0..3 {
            q.push(100 + i, meta(Lane::Bulk)).expect("open");
        }
        for i in 0..6 {
            q.push(i, meta(Lane::Interactive)).expect("open");
        }
        let order: Vec<u32> = q.drain().served.into_iter().map(|j| j.item).collect();
        // Two interactive, then an aged bulk, repeating; leftovers appended.
        assert_eq!(order, vec![0, 1, 100, 2, 3, 101, 4, 5, 102]);
        // Every interactive job at lane position k has at most
        // ⌈k / bulk_after⌉ bulk jobs ahead of it.
        for (pos, &item) in order.iter().enumerate() {
            if item < 100 {
                let bulk_ahead = order[..pos].iter().filter(|&&x| x >= 100).count();
                assert!(
                    bulk_ahead <= (item as usize).div_ceil(2),
                    "interactive {item} at {pos} had {bulk_ahead} bulk ahead"
                );
            }
        }
    }

    #[test]
    fn streak_persists_across_drains() {
        let cfg = AdmissionConfig { bulk_after: 2, ..Default::default() };
        let q = queue(&cfg);
        // Drain 1: two interactive, no bulk waiting — streak reaches 2.
        q.push(0, meta(Lane::Interactive)).expect("open");
        q.push(1, meta(Lane::Interactive)).expect("open");
        assert_eq!(q.drain().served.iter().map(|j| j.item).collect::<Vec<_>>(), vec![0, 1]);
        // Drain 2: the streak from drain 1 means bulk goes FIRST now.
        q.push(2, meta(Lane::Interactive)).expect("open");
        q.push(100, meta(Lane::Bulk)).expect("open");
        assert_eq!(
            q.drain().served.iter().map(|j| j.item).collect::<Vec<_>>(),
            vec![100, 2],
            "aging debt carried across drains"
        );
    }

    #[test]
    fn expired_jobs_are_shed_not_served() {
        let clock = Arc::new(ManualClock::at(0));
        let cfg = AdmissionConfig {
            queue_deadline: Some(Duration::from_millis(10)),
            clock: clock.clone(),
            ..Default::default()
        };
        let q = queue(&cfg);
        q.push(1, meta(Lane::Interactive)).expect("open");
        clock.advance(5_000_000); // 5 ms: still live
        q.push(2, meta(Lane::Bulk)).expect("open");
        clock.advance(6_000_000); // job 1 now 11 ms old, job 2 only 6 ms
        let drain = q.drain();
        assert_eq!(drain.served.iter().map(|j| j.item).collect::<Vec<_>>(), vec![2]);
        assert_eq!(drain.shed.iter().map(|j| j.item).collect::<Vec<_>>(), vec![1]);
        assert_eq!(drain.shed[0].age_at(drain.now_nanos), 11_000_000);
        assert_eq!(q.stats().shed_deadline, 1);
        let ring = q.ring().snapshot();
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].reason, DropReason::DeadlineExpired);
        assert_eq!(ring[0].queue_age_nanos, 11_000_000);
    }

    #[test]
    fn per_job_deadline_overrides_the_default() {
        let clock = Arc::new(ManualClock::at(0));
        let cfg = AdmissionConfig {
            queue_deadline: Some(Duration::from_secs(3600)),
            clock: clock.clone(),
            ..Default::default()
        };
        let q = queue(&cfg);
        let tight =
            AdmitMeta { deadline: Some(Duration::from_nanos(1)), ..meta(Lane::Interactive) };
        q.push(1, tight).expect("open");
        q.push(2, meta(Lane::Interactive)).expect("open");
        clock.advance(100);
        let drain = q.drain();
        assert_eq!(drain.shed.len(), 1, "tight per-job deadline shed");
        assert_eq!(drain.served.len(), 1, "default-deadline job survives");
    }

    #[test]
    fn closed_and_drained_comes_back_empty() {
        let q = queue(&AdmissionConfig::default());
        q.push(1, meta(Lane::Bulk)).expect("open");
        q.close();
        assert!(!q.drain().is_empty(), "backlog still delivered");
        assert!(q.drain().is_empty(), "then empty forever");
    }
}
