//! The injectable time source every admission decision reads.
//!
//! Rate-limit refills, queue-age measurement, and deadline expiry are all
//! arithmetic over "now". Reading `std::time::Instant` directly would make
//! every one of those decisions untestable except statistically; routing
//! them through [`Clock`] makes them *exact* under a [`ManualClock`] —
//! the token-bucket proptest advances time by hand and asserts refill
//! arithmetic to the nano-token.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond counter. Implementations must be cheap — the
/// serving stack reads the clock on every admission and every drain.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin. Must never decrease.
    fn now_nanos(&self) -> u64;

    /// A short name for `Debug` renderings of configs holding a clock.
    fn name(&self) -> &'static str {
        "clock"
    }
}

impl std::fmt::Debug for dyn Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The production clock: monotonic time anchored at construction.
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        // Saturating: a u64 of nanos is ~584 years of process uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn name(&self) -> &'static str {
        "system"
    }
}

/// A test clock that only moves when told to — admission decisions under it
/// are exactly reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at `start` nanoseconds.
    pub fn at(start: u64) -> Self {
        ManualClock { nanos: AtomicU64::new(start) }
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::SeqCst);
    }

    /// Moves the clock to an absolute instant (must not go backwards —
    /// enforced with a max, so a stale `set` cannot violate monotonicity).
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn name(&self) -> &'static str {
        "manual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::at(100);
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(clock.now_nanos(), 100);
        clock.advance(50);
        assert_eq!(clock.now_nanos(), 150);
        clock.set(120); // backwards set is ignored
        assert_eq!(clock.now_nanos(), 150);
        clock.set(200);
        assert_eq!(clock.now_nanos(), 200);
    }
}
