//! # fairgen-admission
//!
//! Admission control for the FairGen serving stack: the layer between the
//! front-ends (`fairgen-serve`'s in-process API, `fairgen-rpc`'s network
//! API) and the shard worker queues that decides — *before* any model work
//! happens — whether a request gets in, how it is ordered, and how it is
//! refused.
//!
//! An overloaded generation server without admission control fails in the
//! worst possible way: queues grow without bound, every request's latency
//! climbs together, and clients time out having received nothing. This
//! crate makes overload a *typed, bounded, observable* condition instead:
//!
//! * [`AdmissionQueue`] — a bounded two-lane queue. Interactive requests
//!   (single-sample `generate`) drain ahead of bulk ones
//!   (`generate_batch`), with an anti-starvation aging window
//!   ([`AdmissionConfig::bulk_after`]) guaranteeing bulk progress. Jobs
//!   whose queue deadline passes are shed at drain time with a typed
//!   rejection instead of being served late.
//! * [`RateLimiter`] — deterministic per-tenant token buckets
//!   ([`TokenBucket`], integer nano-token arithmetic, injectable
//!   [`Clock`]): one greedy tenant cannot starve the rest.
//! * [`DroppedRing`] — a bounded diagnostics ring recording every shed or
//!   rejected job (tenant, fingerprint, [`DropReason`], queue age),
//!   surfaced through server stats.
//!
//! Every refusal is *typed* — queue-full and rate-limit rejections map to
//! `FairGenError::Overloaded` (wire code 1016 / HTTP 429), shutdown maps
//! to `ServerClosed` (1015 / 503) — and *prompt*: a request is never left
//! hanging. The [`AdmissionConfig::default`] is fully permissive
//! (unbounded, no deadlines, no rate limits), so the admission layer is
//! byte-invisible until configured.

pub mod bucket;
pub mod clock;
pub mod queue;
pub mod ring;
pub mod tenant;

pub use bucket::{RateConfig, RateLimiter, TokenBucket};
pub use clock::{Clock, ManualClock, SystemClock};
pub use queue::{
    AdmissionConfig, AdmissionQueue, AdmitError, AdmitMeta, Drain, QueueStats, QueuedJob,
};
pub use ring::{DropReason, DroppedEntry, DroppedRing};
pub use tenant::{TenantId, DEFAULT_TENANT};

// The lane type travels with admission metadata everywhere; re-export it so
// front-ends depend on one crate for the whole admission vocabulary.
pub use fairgen_par::Lane;
