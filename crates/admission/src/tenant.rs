//! Tenant identity: who a request is billed to.
//!
//! Fairness is per-tenant, so every admitted or rejected job carries a
//! [`TenantId`]. Requests that declare none get [`TenantId::default`] —
//! anonymous traffic shares one bucket, which is exactly the incentive to
//! identify yourself.

use std::sync::Arc;

/// An opaque tenant label. Cheap to clone (shared allocation) and usable as
/// a hash-map key.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

/// The label of the anonymous default tenant.
pub const DEFAULT_TENANT: &str = "default";

impl TenantId {
    /// A tenant id from any label. Labels are opaque bytes to this crate;
    /// transport front-ends bound their length before calling this.
    pub fn new(label: impl AsRef<str>) -> Self {
        TenantId(Arc::from(label.as_ref()))
    }

    /// The label as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this is the anonymous default tenant.
    pub fn is_default(&self) -> bool {
        &*self.0 == DEFAULT_TENANT
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::new(DEFAULT_TENANT)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(label: &str) -> Self {
        TenantId::new(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_is_recognized() {
        assert!(TenantId::default().is_default());
        assert!(!TenantId::new("acme").is_default());
        assert_eq!(TenantId::default(), TenantId::new("default"));
    }

    #[test]
    fn usable_as_map_key() {
        let mut m = std::collections::HashMap::new();
        m.insert(TenantId::new("a"), 1);
        m.insert(TenantId::new("b"), 2);
        assert_eq!(m.get(&TenantId::new("a")), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
