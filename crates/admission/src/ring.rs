//! The dropped-work ring: a bounded record of every shed or rejected job.
//!
//! Load shedding that leaves no trace is undebuggable — "my request got a
//! 429" needs an answer to *why* and *who else*. The [`DroppedRing`] keeps
//! the last `capacity` drops (tenant, fingerprint, reason, queue age) plus
//! a lifetime counter, surfaced through `ServerStats` and the `stats` RPC.
//! It is deliberately a diagnostics buffer, not a log: old entries fall off
//! the front, and the whole thing costs a few KiB however hard the server
//! is being hammered.

use std::collections::VecDeque;
use std::sync::Mutex;

use fairgen_graph::GraphFingerprint;

use crate::tenant::TenantId;

/// Why a job was dropped instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Rejected at admission: the shard queue was at capacity.
    QueueFull,
    /// Rejected at admission: the tenant's token bucket was empty.
    RateLimited,
    /// Shed at drain: the job's deadline expired while it was queued.
    DeadlineExpired,
}

impl DropReason {
    /// A stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::RateLimited => "rate_limited",
            DropReason::DeadlineExpired => "deadline_expired",
        }
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One dropped job's diagnostic record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DroppedEntry {
    /// Who the job belonged to.
    pub tenant: TenantId,
    /// The request's routing/cache key.
    pub fingerprint: GraphFingerprint,
    /// Why it was dropped.
    pub reason: DropReason,
    /// How long it had been queued when dropped (0 for admission-time
    /// rejections, which never entered the queue).
    pub queue_age_nanos: u64,
}

struct RingState {
    entries: VecDeque<DroppedEntry>,
    total: u64,
}

/// A bounded, thread-safe ring of [`DroppedEntry`] records. Capacity 0
/// keeps only the lifetime counter.
pub struct DroppedRing {
    capacity: usize,
    state: Mutex<RingState>,
}

impl DroppedRing {
    /// An empty ring holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        DroppedRing {
            capacity,
            state: Mutex::new(RingState { entries: VecDeque::new(), total: 0 }),
        }
    }

    /// Records a drop, evicting the oldest entry when full.
    pub fn record(&self, entry: DroppedEntry) {
        let mut state = self.state.lock().expect("dropped ring lock");
        state.total += 1;
        if self.capacity == 0 {
            return;
        }
        if state.entries.len() >= self.capacity {
            state.entries.pop_front();
        }
        state.entries.push_back(entry);
    }

    /// Lifetime drop count (including entries that have aged out).
    pub fn total(&self) -> u64 {
        self.state.lock().expect("dropped ring lock").total
    }

    /// The retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<DroppedEntry> {
        self.state.lock().expect("dropped ring lock").entries.iter().cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().expect("dropped ring lock").entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for DroppedRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("dropped ring lock");
        f.debug_struct("DroppedRing")
            .field("capacity", &self.capacity)
            .field("retained", &state.entries.len())
            .field("total", &state.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_graph::FingerprintBuilder;

    fn fp(tag: u64) -> GraphFingerprint {
        let mut b = FingerprintBuilder::new();
        b.add_u64(tag);
        b.finish()
    }

    fn entry(tag: u64, reason: DropReason) -> DroppedEntry {
        DroppedEntry {
            tenant: TenantId::new(format!("t{tag}")),
            fingerprint: fp(tag),
            reason,
            queue_age_nanos: tag * 10,
        }
    }

    #[test]
    fn keeps_the_newest_entries_and_counts_everything() {
        let ring = DroppedRing::new(3);
        for i in 0..5 {
            ring.record(entry(i, DropReason::QueueFull));
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.queue_age_nanos / 10).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest first, oldest evicted");
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let ring = DroppedRing::new(0);
        ring.record(entry(1, DropReason::RateLimited));
        ring.record(entry(2, DropReason::DeadlineExpired));
        assert_eq!(ring.total(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn reasons_have_stable_wire_names() {
        assert_eq!(DropReason::QueueFull.as_str(), "queue_full");
        assert_eq!(DropReason::RateLimited.as_str(), "rate_limited");
        assert_eq!(DropReason::DeadlineExpired.as_str(), "deadline_expired");
    }
}
