//! Property tests for the deterministic token bucket: under an injected
//! clock, (1) the balance never exceeds `burst` no matter how time
//! advances, (2) the same admit/advance trace always yields the same
//! admit/reject decisions, and (3) accounting is exact — tokens spent never
//! exceed the initial burst plus what the elapsed time could have refilled.

use std::sync::Arc;

use fairgen_admission::{Clock, ManualClock, RateConfig, RateLimiter, TenantId, TokenBucket};
use proptest::collection::vec;
use proptest::prelude::*;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Decodes one fuzz draw into an (advance, cost) step: the low bits pick a
/// time advance up to ~2 s, the high bits a take cost up to 8 tokens.
fn step(draw: u64) -> (u64, u64) {
    let advance = draw % (2 * NANOS_PER_SEC);
    let cost = (draw >> 32) % 8;
    (advance, cost)
}

proptest! {
    #[test]
    fn balance_never_exceeds_burst(
        burst in 1u64..32,
        rate in 0u64..10_000,
        draws in vec(any::<u64>(), 1..64),
    ) {
        let cfg = RateConfig { burst, tokens_per_sec: rate };
        let mut bucket = TokenBucket::new(cfg, 0);
        let mut now = 0u64;
        for &draw in &draws {
            let (advance, cost) = step(draw);
            now += advance;
            bucket.try_take(now, cost);
            prop_assert!(
                bucket.available(now) <= burst,
                "balance {} over burst {}",
                bucket.available(now),
                burst
            );
        }
    }

    #[test]
    fn decisions_are_deterministic_under_the_injected_clock(
        burst in 1u64..32,
        rate in 0u64..10_000,
        draws in vec(any::<u64>(), 1..64),
    ) {
        let cfg = RateConfig { burst, tokens_per_sec: rate };
        let run = || -> Vec<bool> {
            let clock = Arc::new(ManualClock::at(0));
            let limiter = RateLimiter::new(cfg, clock.clone());
            let tenant = TenantId::new("prop");
            draws
                .iter()
                .map(|&draw| {
                    let (advance, cost) = step(draw);
                    clock.advance(advance);
                    limiter.try_admit(&tenant, cost)
                })
                .collect()
        };
        prop_assert_eq!(run(), run(), "same trace, same decisions");
    }

    #[test]
    fn spending_is_bounded_by_burst_plus_refill(
        burst in 1u64..32,
        rate in 0u64..1_000,
        draws in vec(any::<u64>(), 1..64),
    ) {
        let cfg = RateConfig { burst, tokens_per_sec: rate };
        let clock = Arc::new(ManualClock::at(0));
        let limiter = RateLimiter::new(cfg, clock.clone());
        let tenant = TenantId::default();
        let mut spent: u128 = 0;
        for &draw in &draws {
            let (advance, cost) = step(draw);
            clock.advance(advance);
            if limiter.try_admit(&tenant, cost) {
                spent += cost as u128;
            }
        }
        // Conservation: everything spent came from the initial burst or the
        // exact integer refill over the elapsed window (in nano-tokens).
        let elapsed = clock.now_nanos() as u128;
        let ceiling_nano = burst as u128 * NANOS_PER_SEC as u128 + elapsed * rate as u128;
        prop_assert!(
            spent * NANOS_PER_SEC as u128 <= ceiling_nano,
            "spent {} tokens, ceiling {} nano-tokens",
            spent,
            ceiling_nano
        );
    }
}
