//! FairGen hyperparameters (paper Section III-B) and ablation variants.

use crate::error::{FairGenError, Result};

/// Ablation variants studied in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FairGenVariant {
    /// The full model.
    Full,
    /// FairGen-R: `f_S` replaced by *uniform* first-order random walks
    /// (no label guidance, no node2vec bias).
    RandomSampling,
    /// FairGen-w/o-SPL: a single cycle, no pseudo-label propagation.
    NoSelfPaced,
    /// FairGen-w/o-Parity: `γ = 0` and no fair assembly quota.
    NoParity,
    /// Table III's "Negative Sampling": `f_S` replaced by the node2vec
    /// negative-sampling corpus (structural second-order walks only).
    NegativeSampling,
}

impl FairGenVariant {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FairGenVariant::Full => "FairGen",
            FairGenVariant::RandomSampling => "FairGen-R",
            FairGenVariant::NoSelfPaced => "FairGen-w/o-SPL",
            FairGenVariant::NoParity => "FairGen-w/o-Parity",
            FairGenVariant::NegativeSampling => "NegativeSampling",
        }
    }
}

/// Hyperparameters of FairGen. Field names follow the paper's notation;
/// defaults follow Section III-B where given ("batch size N₁ = 128,
/// batch iterations T₁ = 3, walk length T = 10, learning rate 0.01,
/// 4 transformer heads, α = β = γ = 1"), with CPU-scaled model width and
/// walk counts.
#[derive(Clone, Copy, Debug)]
pub struct FairGenConfig {
    /// Walk length `T` (number of nodes per walk).
    pub walk_len: usize,
    /// Number of walks `K` sampled per self-paced cycle.
    pub num_walks: usize,
    /// Self-paced cycles `p`.
    pub cycles: usize,
    /// Discriminator batch iterations `T₁` per cycle.
    pub batch_iters: usize,
    /// Discriminator batch size `N₁`.
    pub batch_size: usize,
    /// Structural-walk probability `r` of `f_S`.
    pub ratio_r: f64,
    /// Weight `α` of the prediction loss `J_P`.
    pub alpha: f64,
    /// Weight `β` of the label-propagation loss `J_L`.
    pub beta: f64,
    /// Weight `γ` of the parity regularizer `J_F`.
    pub gamma: f64,
    /// Initial self-paced threshold `λ`.
    pub lambda_init: f64,
    /// Multiplicative growth of `λ` per cycle (Algorithm 1 step 7).
    pub lambda_growth: f64,
    /// Generator width (`d_model`; paper uses embedding dim 100).
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Generator training epochs over the walk pools per cycle.
    pub gen_epochs: usize,
    /// Unlikelihood weight for negative walks.
    pub negative_weight: f64,
    /// Learning rate (shared by generator and discriminator Adam).
    pub lr: f64,
    /// Walk-pool cap: `N⁺`/`N⁻` keep only the most recent this-many walks.
    pub pool_cap: usize,
    /// Synthetic walks generated for assembly = `num_walks × gen_multiplier`.
    pub gen_multiplier: usize,
    /// node2vec `p` for structural walks.
    pub p: f64,
    /// node2vec `q` for structural walks.
    pub q: f64,
    /// Filter label seeds through the `(δ, t)`-diffusion core (Definition 1).
    pub use_diffusion_core: bool,
    /// `δ` of the diffusion core.
    pub core_delta: f64,
    /// `t` of the diffusion core.
    pub core_t: usize,
}

impl Default for FairGenConfig {
    fn default() -> Self {
        FairGenConfig {
            walk_len: 10,
            num_walks: 800,
            cycles: 3,
            batch_iters: 3,
            batch_size: 128,
            ratio_r: 0.5,
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            lambda_init: 0.7,
            lambda_growth: 1.4,
            d_model: 32,
            heads: 4,
            layers: 1,
            gen_epochs: 3,
            negative_weight: 0.3,
            lr: 0.01,
            pool_cap: 2400,
            gen_multiplier: 6,
            p: 1.0,
            q: 1.0,
            use_diffusion_core: true,
            core_delta: 2.0,
            core_t: 3,
        }
    }
}

impl FairGenConfig {
    /// A deliberately tiny budget for unit tests.
    pub fn test_budget() -> Self {
        FairGenConfig {
            walk_len: 6,
            num_walks: 150,
            cycles: 2,
            batch_iters: 2,
            batch_size: 32,
            d_model: 16,
            heads: 2,
            gen_epochs: 2,
            lr: 0.02,
            pool_cap: 450,
            gen_multiplier: 4,
            ..Default::default()
        }
    }

    /// Folds every hyperparameter into a serving-cache fingerprint — the
    /// whole config shapes training, so all fields participate.
    pub fn fold_config(&self, fp: &mut fairgen_graph::FingerprintBuilder) {
        fp.add_usize(self.walk_len)
            .add_usize(self.num_walks)
            .add_usize(self.cycles)
            .add_usize(self.batch_iters)
            .add_usize(self.batch_size)
            .add_f64(self.ratio_r)
            .add_f64(self.alpha)
            .add_f64(self.beta)
            .add_f64(self.gamma)
            .add_f64(self.lambda_init)
            .add_f64(self.lambda_growth)
            .add_usize(self.d_model)
            .add_usize(self.heads)
            .add_usize(self.layers)
            .add_usize(self.gen_epochs)
            .add_f64(self.negative_weight)
            .add_f64(self.lr)
            .add_usize(self.pool_cap)
            .add_usize(self.gen_multiplier)
            .add_f64(self.p)
            .add_f64(self.q)
            .add_bool(self.use_diffusion_core)
            .add_f64(self.core_delta)
            .add_usize(self.core_t);
    }

    /// Validates internal consistency, returning
    /// [`FairGenError::InvalidConfig`] naming the offending field.
    ///
    /// [`FairGen::train`](crate::FairGen::train) runs this automatically;
    /// call it eagerly to fail fast when assembling configurations from
    /// untrusted input.
    pub fn validate(&self) -> Result<()> {
        fn bad(field: &'static str, message: impl Into<String>) -> Result<()> {
            Err(FairGenError::InvalidConfig { field, message: message.into() })
        }
        if self.walk_len < 2 {
            return bad("walk_len", "walks need at least two nodes");
        }
        if self.num_walks == 0 {
            return bad("num_walks", "must be positive");
        }
        if self.cycles == 0 {
            return bad("cycles", "must be positive");
        }
        if !(0.0..=1.0).contains(&self.ratio_r) {
            return bad("ratio_r", format!("r must be in [0,1], got {}", self.ratio_r));
        }
        if self.lambda_init.is_nan() || self.lambda_init <= 0.0 {
            return bad("lambda_init", format!("must be positive, got {}", self.lambda_init));
        }
        if self.lambda_growth.is_nan() || self.lambda_growth < 1.0 {
            return bad(
                "lambda_growth",
                format!("must be at least 1, got {}", self.lambda_growth),
            );
        }
        if self.heads == 0 || !self.d_model.is_multiple_of(self.heads) {
            return bad(
                "d_model",
                format!("d_model {} must divide by heads {}", self.d_model, self.heads),
            );
        }
        for (field, v) in [("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)] {
            // NaN weights are as degenerate as negative ones.
            if v.is_nan() || v < 0.0 {
                return bad(field, format!("must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

impl fairgen_graph::Codec for FairGenVariant {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_u8(match self {
            FairGenVariant::Full => 0,
            FairGenVariant::RandomSampling => 1,
            FairGenVariant::NoSelfPaced => 2,
            FairGenVariant::NoParity => 3,
            FairGenVariant::NegativeSampling => 4,
        });
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        Ok(match dec.take_u8()? {
            0 => FairGenVariant::Full,
            1 => FairGenVariant::RandomSampling,
            2 => FairGenVariant::NoSelfPaced,
            3 => FairGenVariant::NoParity,
            4 => FairGenVariant::NegativeSampling,
            other => {
                return Err(FairGenError::CorruptCheckpoint {
                    detail: format!("unknown FairGen variant discriminant {other}"),
                })
            }
        })
    }
}

impl fairgen_graph::Codec for FairGenConfig {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.walk_len);
        enc.put_usize(self.num_walks);
        enc.put_usize(self.cycles);
        enc.put_usize(self.batch_iters);
        enc.put_usize(self.batch_size);
        enc.put_f64(self.ratio_r);
        enc.put_f64(self.alpha);
        enc.put_f64(self.beta);
        enc.put_f64(self.gamma);
        enc.put_f64(self.lambda_init);
        enc.put_f64(self.lambda_growth);
        enc.put_usize(self.d_model);
        enc.put_usize(self.heads);
        enc.put_usize(self.layers);
        enc.put_usize(self.gen_epochs);
        enc.put_f64(self.negative_weight);
        enc.put_f64(self.lr);
        enc.put_usize(self.pool_cap);
        enc.put_usize(self.gen_multiplier);
        enc.put_f64(self.p);
        enc.put_f64(self.q);
        enc.put_bool(self.use_diffusion_core);
        enc.put_f64(self.core_delta);
        enc.put_usize(self.core_t);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let cfg = FairGenConfig {
            walk_len: dec.take_usize()?,
            num_walks: dec.take_usize()?,
            cycles: dec.take_usize()?,
            batch_iters: dec.take_usize()?,
            batch_size: dec.take_usize()?,
            ratio_r: dec.take_f64()?,
            alpha: dec.take_f64()?,
            beta: dec.take_f64()?,
            gamma: dec.take_f64()?,
            lambda_init: dec.take_f64()?,
            lambda_growth: dec.take_f64()?,
            d_model: dec.take_usize()?,
            heads: dec.take_usize()?,
            layers: dec.take_usize()?,
            gen_epochs: dec.take_usize()?,
            negative_weight: dec.take_f64()?,
            lr: dec.take_f64()?,
            pool_cap: dec.take_usize()?,
            gen_multiplier: dec.take_usize()?,
            p: dec.take_f64()?,
            q: dec.take_f64()?,
            use_diffusion_core: dec.take_bool()?,
            core_delta: dec.take_f64()?,
            core_t: dec.take_usize()?,
        };
        // The same validation train() runs: a checkpoint carrying a config
        // this build considers degenerate is treated as corrupt.
        cfg.validate().map_err(|e| FairGenError::CorruptCheckpoint {
            detail: format!("checkpointed config rejected: {e}"),
        })?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = FairGenConfig::default();
        assert_eq!(c.walk_len, 10);
        assert_eq!(c.batch_iters, 3);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.heads, 4);
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.gamma, 1.0);
        c.validate().expect("defaults are valid");
    }

    #[test]
    fn test_budget_is_valid() {
        FairGenConfig::test_budget().validate().expect("test budget is valid");
    }

    #[test]
    fn variant_names() {
        assert_eq!(FairGenVariant::Full.name(), "FairGen");
        assert_eq!(FairGenVariant::RandomSampling.name(), "FairGen-R");
        assert_eq!(FairGenVariant::NoSelfPaced.name(), "FairGen-w/o-SPL");
        assert_eq!(FairGenVariant::NoParity.name(), "FairGen-w/o-Parity");
    }

    #[test]
    fn invalid_fields_name_themselves() {
        let check = |mutate: &dyn Fn(&mut FairGenConfig), field: &str| {
            let mut c = FairGenConfig::default();
            mutate(&mut c);
            match c.validate() {
                Err(FairGenError::InvalidConfig { field: got, .. }) => {
                    assert_eq!(got, field);
                }
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        };
        check(&|c| c.ratio_r = 2.0, "ratio_r");
        check(&|c| c.walk_len = 1, "walk_len");
        check(&|c| c.num_walks = 0, "num_walks");
        check(&|c| c.cycles = 0, "cycles");
        check(&|c| c.lambda_init = 0.0, "lambda_init");
        check(&|c| c.lambda_growth = 0.5, "lambda_growth");
        check(&|c| c.heads = 3, "d_model");
        check(&|c| c.gamma = -1.0, "gamma");
        check(&|c| c.alpha = f64::NAN, "alpha");
    }
}
