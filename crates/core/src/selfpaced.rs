//! Self-paced vectors `v^(c)` and the closed-form update of Eq. 14 (M3).

use fairgen_graph::NodeId;
use fairgen_nn::Mat;

/// State of the self-paced learning module: per-class selection vectors,
/// the threshold `λ`, and the induced pseudo-labels.
#[derive(Clone, Debug)]
pub struct SelfPacedState {
    /// `v[c][i] = 1` ⇔ node `i` is selected for class `c` (Eq. 14).
    pub v: Vec<Vec<bool>>,
    /// Current threshold `λ`.
    pub lambda: f64,
    /// Ground-truth labels (never overridden).
    truth: Vec<Option<usize>>,
    /// Current pseudo-label assignment (includes ground truth).
    pub assigned: Vec<Option<usize>>,
}

impl SelfPacedState {
    /// Initializes from the few-shot labeled vertices (Algorithm 1 step 1):
    /// `v^(c)_i = 1` for every `x_i` labeled `c`, 0 elsewhere.
    pub fn init(
        n: usize,
        num_classes: usize,
        labeled: &[(NodeId, usize)],
        lambda: f64,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(lambda > 0.0, "lambda must be positive");
        let mut v = vec![vec![false; n]; num_classes];
        let mut truth = vec![None; n];
        for &(x, c) in labeled {
            assert!(c < num_classes, "class {c} out of range");
            v[c][x as usize] = true;
            truth[x as usize] = Some(c);
        }
        let assigned = truth.clone();
        SelfPacedState { v, lambda, truth, assigned }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.v.len()
    }

    /// Grows `λ` (Algorithm 1 step 7).
    pub fn augment_lambda(&mut self, growth: f64) {
        assert!(growth >= 1.0, "lambda must not shrink");
        self.lambda *= growth;
    }

    /// Applies Eq. 14 given per-node class log-probabilities
    /// (`log_probs: n × C`, rows are `log P(ŷ = c | x)`), then re-derives
    /// pseudo-labels: a node gets class `c` when `v^(c)` selects it, taking
    /// the most probable class when several select it. Ground-truth nodes
    /// are never relabeled. Returns the number of pseudo-labeled nodes
    /// (excluding ground truth).
    pub fn update(&mut self, log_probs: &Mat) -> usize {
        let n = self.truth.len();
        assert_eq!(log_probs.rows(), n, "row count mismatch");
        assert_eq!(log_probs.cols(), self.num_classes(), "class count mismatch");
        let mut pseudo = 0usize;
        for i in 0..n {
            if let Some(c) = self.truth[i] {
                // Ground truth stays pinned.
                for (cls, vc) in self.v.iter_mut().enumerate() {
                    vc[i] = cls == c;
                }
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for c in 0..self.num_classes() {
                let lp = log_probs.get(i, c);
                let selected = -lp < self.lambda; // Eq. 14
                self.v[c][i] = selected;
                if selected && best.is_none_or(|(_, b)| lp > b) {
                    best = Some((c, lp));
                }
            }
            self.assigned[i] = best.map(|(c, _)| c);
            if best.is_some() {
                pseudo += 1;
            }
        }
        self.assigned = self.truth.iter().zip(&self.assigned).map(|(t, a)| t.or(*a)).collect();
        pseudo
    }

    /// All currently labeled vertices (ground truth + pseudo), as
    /// `(node, class)` pairs — the augmented `L` of Algorithm 1 step 8.
    pub fn labeled_set(&self) -> Vec<(NodeId, usize)> {
        self.assigned
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i as NodeId, c)))
            .collect()
    }

    /// `Σ_i Σ_c v^(c)_i` — the count entering `J_S`.
    pub fn selection_count(&self) -> usize {
        self.v.iter().map(|vc| vc.iter().filter(|&&b| b).count()).sum()
    }
}

impl fairgen_graph::Codec for SelfPacedState {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        let n = self.truth.len();
        enc.put_usize(n);
        enc.put_usize(self.num_classes());
        enc.put_f64(self.lambda);
        for vc in &self.v {
            for &b in vc {
                enc.put_bool(b);
            }
        }
        let put_assignment = |enc: &mut fairgen_graph::Encoder, slot: &Option<usize>| match slot
        {
            Some(c) => {
                enc.put_bool(true);
                enc.put_usize(*c);
            }
            None => enc.put_bool(false),
        };
        for slot in &self.truth {
            put_assignment(enc, slot);
        }
        for slot in &self.assigned {
            put_assignment(enc, slot);
        }
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let corrupt =
            |detail: String| fairgen_graph::FairGenError::CorruptCheckpoint { detail };
        let n = dec.take_usize()?;
        let num_classes = dec.take_usize()?;
        if num_classes == 0 {
            return Err(corrupt("self-paced state with zero classes".into()));
        }
        let lambda = dec.take_f64()?;
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(corrupt(format!("invalid self-paced lambda {lambda}")));
        }
        // Bound the declared sizes by the bytes that actually follow
        // (num_classes·n selection bools + 2·n assignment flags, one byte
        // each at minimum) before allocating anything — a hostile length
        // prefix must error, not abort on an absurd allocation.
        let min_bytes = num_classes.saturating_mul(n).saturating_add(n.saturating_mul(2));
        if min_bytes > dec.remaining() {
            return Err(corrupt(format!(
                "self-paced state declares {num_classes} classes × {n} nodes but only {} \
                 bytes remain",
                dec.remaining()
            )));
        }
        let mut v = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let mut vc = Vec::with_capacity(n);
            for _ in 0..n {
                vc.push(dec.take_bool()?);
            }
            v.push(vc);
        }
        let take_assignments = |dec: &mut fairgen_graph::Decoder,
                                what: &str|
         -> fairgen_graph::Result<Vec<Option<usize>>> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(if dec.take_bool()? {
                    let c = dec.take_usize()?;
                    if c >= num_classes {
                        return Err(corrupt(format!(
                            "{what} class {c} out of range for {num_classes} classes"
                        )));
                    }
                    Some(c)
                } else {
                    None
                });
            }
            Ok(out)
        };
        let truth = take_assignments(dec, "ground-truth")?;
        let assigned = take_assignments(dec, "assigned")?;
        Ok(SelfPacedState { v, lambda, truth, assigned })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_probs(rows: &[[f64; 2]]) -> Mat {
        Mat::from_fn(rows.len(), 2, |r, c| rows[r][c])
    }

    #[test]
    fn init_pins_ground_truth() {
        let sp = SelfPacedState::init(4, 2, &[(0, 1), (3, 0)], 0.5);
        assert!(sp.v[1][0] && sp.v[0][3]);
        assert!(!sp.v[0][0] && !sp.v[1][3]);
        assert_eq!(sp.labeled_set(), vec![(0, 1), (3, 0)]);
    }

    #[test]
    fn update_selects_confident_nodes() {
        let mut sp = SelfPacedState::init(3, 2, &[(0, 0)], 0.5);
        // Node 1 confident class 1 (-log p = 0.1 < 0.5); node 2 uncertain.
        let lp = log_probs(&[[-0.1, -3.0], [-3.0, -0.1], [-0.9, -0.9]]);
        let pseudo = sp.update(&lp);
        assert_eq!(pseudo, 1);
        assert_eq!(sp.assigned[1], Some(1));
        assert_eq!(sp.assigned[2], None);
        assert_eq!(sp.labeled_set().len(), 2);
    }

    #[test]
    fn raising_lambda_admits_harder_nodes() {
        let mut sp = SelfPacedState::init(3, 2, &[], 0.5);
        let lp = log_probs(&[[-0.1, -3.0], [-0.8, -2.0], [-1.2, -2.0]]);
        assert_eq!(sp.update(&lp), 1); // only node 0
        sp.augment_lambda(2.0); // λ = 1.0
        assert_eq!(sp.update(&lp), 2); // nodes 0 and 1
        sp.augment_lambda(1.5); // λ = 1.5
        assert_eq!(sp.update(&lp), 3); // all three — easy to hard
    }

    #[test]
    fn ground_truth_never_relabeled() {
        let mut sp = SelfPacedState::init(2, 2, &[(0, 0)], 10.0);
        // The model is confident node 0 is class 1 — must not override.
        let lp = log_probs(&[[-5.0, -0.01], [-0.01, -5.0]]);
        sp.update(&lp);
        assert_eq!(sp.assigned[0], Some(0));
        assert!(sp.v[0][0] && !sp.v[1][0]);
    }

    #[test]
    fn multiple_classes_select_highest_prob() {
        let mut sp = SelfPacedState::init(1, 2, &[], 5.0);
        // Both classes pass the threshold; class 1 is more probable.
        let lp = log_probs(&[[-0.9, -0.5]]);
        sp.update(&lp);
        assert!(sp.v[0][0] && sp.v[1][0]);
        assert_eq!(sp.assigned[0], Some(1));
        assert_eq!(sp.selection_count(), 2);
    }

    #[test]
    #[should_panic(expected = "class 5 out of range")]
    fn oob_class_panics() {
        let _ = SelfPacedState::init(3, 2, &[(0, 5)], 1.0);
    }

    #[test]
    fn decode_rejects_hostile_length_prefix_before_allocating() {
        use fairgen_graph::{Codec, Decoder, Encoder, FairGenError};
        let mut enc = Encoder::new();
        enc.put_usize(usize::MAX / 4); // n — would be a multi-exabyte alloc
        enc.put_usize(3); // num_classes
        enc.put_f64(1.0); // lambda
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            <SelfPacedState as Codec>::decode(&mut dec),
            Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("remain")
        ));
    }
}
