//! The five-term objective of Eq. 3, for reporting and the sensitivity
//! analysis of Figure 7.

/// Snapshot of every term of `J = J_G + J_P + J_F + J_L + J_S` (Eq. 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectiveReport {
    /// Label-informed generative loss `J_G` (mean walk NLL).
    pub j_g: f64,
    /// Cost-sensitive prediction loss `J_P` (already scaled by `α`).
    pub j_p: f64,
    /// Parity regularizer `J_F` (already scaled by `γ`).
    pub j_f: f64,
    /// Label-propagation loss `J_L` (already scaled by `β`).
    pub j_l: f64,
    /// Self-paced regularizer `J_S = −λ Σ v` (negative by construction).
    pub j_s: f64,
}

impl ObjectiveReport {
    /// The overall objective `J`.
    pub fn total(&self) -> f64 {
        self.j_g + self.j_p + self.j_f + self.j_l + self.j_s
    }

    /// The discriminator-side portion `J_P + J_F + J_L + J_S`
    /// (the "discriminator loss" series of Figure 7c).
    pub fn discriminator_part(&self) -> f64 {
        self.j_p + self.j_f + self.j_l + self.j_s
    }
}

impl fairgen_graph::Codec for ObjectiveReport {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_f64(self.j_g);
        enc.put_f64(self.j_p);
        enc.put_f64(self.j_f);
        enc.put_f64(self.j_l);
        enc.put_f64(self.j_s);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        Ok(ObjectiveReport {
            j_g: dec.take_f64()?,
            j_p: dec.take_f64()?,
            j_f: dec.take_f64()?,
            j_l: dec.take_f64()?,
            j_s: dec.take_f64()?,
        })
    }
}

impl std::fmt::Display for ObjectiveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "J={:.4} (J_G={:.4} J_P={:.4} J_F={:.4} J_L={:.4} J_S={:.4})",
            self.total(),
            self.j_g,
            self.j_p,
            self.j_f,
            self.j_l,
            self.j_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_terms() {
        let r = ObjectiveReport { j_g: 2.0, j_p: 0.5, j_f: 0.1, j_l: 0.3, j_s: -0.4 };
        assert!((r.total() - 2.5).abs() < 1e-12);
        assert!((r.discriminator_part() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_all_terms() {
        let r = ObjectiveReport { j_g: 1.0, j_p: 0.0, j_f: 0.0, j_l: 0.0, j_s: 0.0 };
        let s = r.to_string();
        assert!(s.contains("J_G") && s.contains("J_S"));
    }
}
