//! Representation-disparity measurement (Eqs. 1–2).
//!
//! The paper defines the general reconstruction loss `R(θ)` as the expected
//! walk NLL over the whole graph and the group-wise loss `R_S(θ)` over the
//! subgraph `G_S`; representation disparity is a low `R(θ)` paired with a
//! high `R_{S⁺}(θ)`. This module estimates both for any trained model and
//! packages the gap, which the Figure-1 experiment tracks over training.

use fairgen_graph::{induced_subgraph, Graph, NodeSet};
use fairgen_walks::{Node2VecWalker, Walk};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::model::TrainedFairGen;

/// Estimated reconstruction losses of a generator (Eqs. 1–2).
#[derive(Clone, Copy, Debug)]
pub struct DisparityReport {
    /// `R(θ)` — mean walk NLL over the full graph (Eq. 1).
    pub overall: f64,
    /// `R_{S⁺}(θ)` — mean walk NLL over the protected subgraph (Eq. 2).
    pub protected: f64,
    /// `R_{S⁻}(θ)` — mean walk NLL over the unprotected subgraph.
    pub unprotected: f64,
}

impl DisparityReport {
    /// The disparity gap `R_{S⁺}(θ) − R(θ)`: positive values mean the
    /// protected group is served worse than average.
    pub fn gap(&self) -> f64 {
        self.protected - self.overall
    }

    /// The group ratio `R_{S⁺}(θ) / R_{S⁻}(θ)`: > 1 means the protected
    /// group reconstructs worse than the unprotected group.
    pub fn ratio(&self) -> f64 {
        if self.unprotected == 0.0 {
            f64::NAN
        } else {
            self.protected / self.unprotected
        }
    }
}

/// Samples a walk corpus from the subgraph induced by `set`, translated
/// back to parent-graph node ids (so a generator over the parent vocabulary
/// can score it). Walks whose support has no edges are skipped.
pub fn group_walks(g: &Graph, set: &NodeSet, count: usize, len: usize, seed: u64) -> Vec<Walk> {
    let (sub, map) = induced_subgraph(g, set.members());
    if sub.m() == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let walker = Node2VecWalker::default();
    walker
        .walk_corpus(&sub, count, len, &mut rng)
        .into_iter()
        .map(|w| w.iter().map(|&v| map.to_parent[v as usize]).collect())
        .collect()
}

/// Estimates `R(θ)`, `R_{S⁺}(θ)` and `R_{S⁻}(θ)` for a trained model with
/// `count` Monte-Carlo walks of length `len` per estimate.
pub fn measure_disparity(
    model: &mut TrainedFairGen,
    g: &Graph,
    protected: &NodeSet,
    count: usize,
    len: usize,
    seed: u64,
) -> DisparityReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let walker = Node2VecWalker::default();
    let overall_walks = walker.walk_corpus(g, count, len, &mut rng);
    let protected_walks = group_walks(g, protected, count, len, seed ^ 0xaaaa);
    let unprotected_walks = group_walks(g, &protected.complement(), count, len, seed ^ 0x5555);
    DisparityReport {
        overall: model.walk_nll(&overall_walks),
        protected: model.walk_nll(&protected_walks),
        unprotected: model.walk_nll(&unprotected_walks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairGenConfig;
    use crate::model::FairGen;
    use fairgen_baselines::TaskSpec;
    use fairgen_data::toy_two_community;

    fn trained() -> (TrainedFairGen, Graph, TaskSpec) {
        let lg = toy_two_community(31);
        let mut rng = StdRng::seed_from_u64(1);
        let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
        let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
        let model = FairGen::new(FairGenConfig::test_budget())
            .train(&lg.graph, &task, 2)
            .expect("valid input");
        (model, lg.graph, task)
    }

    #[test]
    fn group_walks_stay_in_group() {
        let lg = toy_two_community(32);
        let s = lg.protected.clone().unwrap();
        let walks = group_walks(&lg.graph, &s, 20, 6, 3);
        assert!(!walks.is_empty());
        for w in &walks {
            assert!(w.iter().all(|&v| s.contains(v)), "walk left the group: {w:?}");
        }
    }

    #[test]
    fn group_walks_empty_for_edgeless_support() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        let s = NodeSet::from_members(5, &[2, 3]);
        assert!(group_walks(&g, &s, 10, 4, 1).is_empty());
    }

    #[test]
    fn disparity_report_is_finite_and_consistent() {
        let (mut model, g, task) = trained();
        let s = task.protected.clone().unwrap();
        let report = measure_disparity(&mut model, &g, &s, 30, 6, 7);
        assert!(report.overall.is_finite() && report.overall > 0.0);
        assert!(report.protected.is_finite() && report.protected > 0.0);
        assert!(report.unprotected.is_finite() && report.unprotected > 0.0);
        assert!((report.gap() - (report.protected - report.overall)).abs() < 1e-12);
        assert!(report.ratio().is_finite());
    }

    #[test]
    fn fairgen_keeps_disparity_bounded() {
        // With label-informed sampling the protected group's NLL should not
        // be wildly worse than the unprotected group's.
        let (mut model, g, task) = trained();
        let s = task.protected.clone().unwrap();
        let report = measure_disparity(&mut model, &g, &s, 40, 6, 9);
        assert!(report.ratio() < 2.0, "protected group served far worse: {report:?}");
    }
}
