//! The FairGen model: joint training (Algorithm 1) and fair generation,
//! exposed through the fallible two-phase lifecycle — [`FairGen::train`]
//! once, [`TrainedFairGen::generate`] many.

use std::ops::ControlFlow;

use fairgen_baselines::TaskSpec;
use fairgen_graph::{Graph, NodeId, NodeSet};
use fairgen_nn::param::{add_grads, collect_grads, HasParams};
use fairgen_nn::{
    clip_gradients, cross_entropy, log_softmax, sample_walk_batch, softmax_rows, Activation,
    Adam, Mat, Mlp, TransformerConfig, TransformerLm,
};
use fairgen_par::{predraw, ThreadPool};
use fairgen_walks::context::ContextEntry;
use fairgen_walks::{diffusion_core, negative, ContextSampler, ContextSamplerConfig, Walk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{FairGenConfig, FairGenVariant};
use crate::error::{FairGenError, Result};
use crate::objective::ObjectiveReport;
use crate::observer::{NullObserver, TrainObserver};
use crate::selfpaced::SelfPacedState;

/// Per-cycle training diagnostics.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Self-paced cycle index `l` (1-based).
    pub cycle: usize,
    /// Threshold `λ` at the end of the cycle.
    pub lambda: f64,
    /// Number of pseudo-labeled vertices (excluding ground truth).
    pub pseudo_labels: usize,
    /// The objective terms at the end of the cycle.
    pub objective: ObjectiveReport,
}

/// The FairGen trainer.
#[derive(Clone, Copy, Debug)]
pub struct FairGen {
    cfg: FairGenConfig,
    variant: FairGenVariant,
}

impl FairGen {
    /// A trainer with the given configuration (full model).
    ///
    /// Construction is infallible; the configuration is validated by
    /// [`FairGen::train`] (or eagerly via
    /// [`FairGenConfig::validate`]), which returns
    /// [`FairGenError::InvalidConfig`] on degenerate settings.
    pub fn new(cfg: FairGenConfig) -> Self {
        FairGen { cfg, variant: FairGenVariant::Full }
    }

    /// Selects an ablation variant.
    pub fn with_variant(mut self, variant: FairGenVariant) -> Self {
        self.variant = variant;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &FairGenConfig {
        &self.cfg
    }

    /// The variant.
    pub fn variant(&self) -> FairGenVariant {
        self.variant
    }

    /// Trains on `g` under `task` (Algorithm 1), deterministically in
    /// `seed`.
    ///
    /// # Errors
    ///
    /// * [`FairGenError::InvalidConfig`] — degenerate configuration;
    /// * [`FairGenError::GraphTooSmall`] — fewer than two vertices;
    /// * [`FairGenError::NodeOutOfRange`] /
    ///   [`FairGenError::LabelOutOfRange`] /
    ///   [`FairGenError::GroupUniverseMismatch`] — malformed [`TaskSpec`];
    /// * [`FairGenError::MissingProtectedGroup`] — labels present and
    ///   `γ > 0`, but no `S⁺` to enforce parity on (ablation variants with
    ///   parity disabled are exempt). Unlabeled tasks degrade to structural
    ///   generation instead of erroring.
    pub fn train(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<TrainedFairGen> {
        self.train_observed(g, task, seed, &mut NullObserver)
    }

    /// [`FairGen::train`] with a [`TrainObserver`] streaming each
    /// [`CycleReport`] as it is produced; the observer can stop training at
    /// any cycle boundary (the partially-trained model is returned, its
    /// `history` truncated to the cycles that ran). Fans the per-cycle hot
    /// loops out over the process-wide [`ThreadPool`].
    pub fn train_observed(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
        observer: &mut dyn TrainObserver,
    ) -> Result<TrainedFairGen> {
        self.train_observed_with_pool(g, task, seed, observer, ThreadPool::global())
    }

    /// [`FairGen::train_observed`] against an explicit pool. Training is
    /// deterministic in `seed` **for any pool width**: walk sampling
    /// replays pre-drawn master-RNG slices per walk, and minibatch
    /// gradients are merged per item in item order, so the parallel path is
    /// bit-identical to the sequential one (asserted at widths {1, 2, 8} in
    /// `tests/parallel_parity.rs`).
    pub fn train_observed_with_pool(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
        observer: &mut dyn TrainObserver,
        pool: &ThreadPool,
    ) -> Result<TrainedFairGen> {
        let cfg = self.cfg;
        let variant = self.variant;
        cfg.validate()?;
        let n = g.n();
        if n < 2 {
            return Err(FairGenError::GraphTooSmall { nodes: n, min_nodes: 2 });
        }
        task.validate(g)?;
        let has_labels = task.has_labels();
        if cfg.gamma > 0.0
            && has_labels
            && task.protected.is_none()
            && variant != FairGenVariant::NoParity
        {
            return Err(FairGenError::MissingProtectedGroup { gamma: cfg.gamma });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let parity_on =
            cfg.gamma > 0.0 && variant != FairGenVariant::NoParity && task.protected.is_some();

        // Generator g_θ.
        let gen_cfg = TransformerConfig {
            vocab: n,
            d_model: cfg.d_model,
            heads: cfg.heads,
            layers: cfg.layers,
            max_len: cfg.walk_len + 2,
        };
        let mut generator = TransformerLm::new(gen_cfg, &mut rng);
        let mut opt_gen = Adam::new(cfg.lr);

        // Discriminator d_ω: a three-layer MLP on the shared embeddings.
        let num_classes = task.num_classes.max(1);
        let mut discriminator =
            Mlp::new(&[cfg.d_model, 64, 64, num_classes], Activation::Tanh, &mut rng);
        let mut opt_disc = Adam::new(cfg.lr);

        // Step 1: initialize d_ω and the self-paced vectors from L.
        let mut sp = SelfPacedState::init(
            n,
            num_classes,
            if has_labels { &task.labeled } else { &[] },
            cfg.lambda_init,
        );

        // f_S sampler. Ablations change what it samples:
        //   RandomSampling  — uniform walks, no label entries (p=q=1, r=1);
        //   NegativeSampling — node2vec structural walks only (r=1).
        let (ratio_r, p, q, use_label_entries) = match variant {
            FairGenVariant::RandomSampling => (1.0, 1.0, 1.0, false),
            FairGenVariant::NegativeSampling => (1.0, cfg.p, cfg.q, false),
            _ => (cfg.ratio_r, cfg.p, cfg.q, true),
        };
        let sampler_cfg = ContextSamplerConfig { walk_len: cfg.walk_len, ratio_r, p, q };
        let mut sampler = ContextSampler::new(sampler_cfg, Vec::new());
        if use_label_entries {
            sampler.set_entries(build_entries(
                g,
                &sp.labeled_set(),
                num_classes,
                task.protected.as_ref(),
                &cfg,
            ));
        }

        // Step 2: initial pools N⁺ / N⁻.
        let mut n_pos = sampler.sample_corpus(g, cfg.num_walks, &mut rng);
        let mut n_neg = negative::random_sequences(n, cfg.num_walks, cfg.walk_len, &mut rng);

        let cycles = if variant == FairGenVariant::NoSelfPaced { 1 } else { cfg.cycles };
        let mut history: Vec<CycleReport> = Vec::with_capacity(cycles);

        for cycle in 1..=cycles {
            // Step 4: update g_θ from N⁺ and N⁻ (data-parallel gradient
            // accumulation across the pool).
            train_generator(
                &mut generator,
                &mut opt_gen,
                &n_pos,
                &n_neg,
                cfg.gen_epochs,
                cfg.negative_weight,
                &mut rng,
                pool,
            );

            // Step 5: new positive walks under the updated self-paced state.
            if use_label_entries {
                sampler.set_entries(build_entries(
                    g,
                    &sp.labeled_set(),
                    num_classes,
                    task.protected.as_ref(),
                    &cfg,
                ));
            }
            n_pos.extend(sampler.sample_corpus(g, cfg.num_walks, &mut rng));
            cap_pool(&mut n_pos, cfg.pool_cap);

            // Step 6: new negative walks from the current generator —
            // KV-cached incremental decoding fanned out across the pool,
            // each worker stepping a chunk of walks in lockstep through a
            // batched decode state (one GEMM per layer per token), each
            // walk replaying its slice of the pre-drawn master stream
            // (bit-identical to the sequential loop at any width).
            let draws = predraw(&mut rng, cfg.num_walks * cfg.walk_len);
            let sampled =
                sample_walk_batch(pool, &generator, cfg.num_walks, cfg.walk_len, 1.0, &draws)?;
            for seq in &sampled {
                n_neg.push(seq.iter().map(|&t| t as NodeId).collect());
            }
            cap_pool(&mut n_neg, cfg.pool_cap);

            // Steps 7–8: augment λ, update v, augment L.
            let mut pseudo = 0usize;
            if has_labels && variant != FairGenVariant::NoSelfPaced {
                sp.augment_lambda(cfg.lambda_growth);
                let lp = predict_log_probs_pool(&discriminator, &generator, n, pool);
                pseudo = sp.update(&lp);
            }

            // Steps 9–11: T₁ discriminator updates on J_P + J_L + J_F.
            if has_labels {
                for _ in 0..cfg.batch_iters {
                    discriminator_step(
                        &mut discriminator,
                        &mut opt_disc,
                        &generator,
                        &sp,
                        &task.labeled,
                        task.protected.as_ref(),
                        &cfg,
                        parity_on,
                        &mut rng,
                    );
                }
            }

            let objective = compute_objective(
                &mut generator,
                &discriminator,
                &sp,
                &task.labeled,
                task.protected.as_ref(),
                &n_pos,
                &cfg,
                parity_on,
                has_labels,
                pool,
            );
            let report =
                CycleReport { cycle, lambda: sp.lambda, pseudo_labels: pseudo, objective };
            let flow = observer.on_cycle(&report);
            history.push(report);
            if let ControlFlow::Break(()) = flow {
                break;
            }
        }

        // Protected-volume target for fair assembly: the number of edges
        // incident to S⁺ in the input graph.
        let protected_incident = task
            .protected
            .as_ref()
            .map(|s| g.edges().filter(|&(u, v)| s.contains(u) || s.contains(v)).count());

        Ok(TrainedFairGen {
            cfg,
            variant,
            generator,
            discriminator,
            graph: g.clone(),
            protected: task.protected.clone(),
            protected_incident,
            selfpaced: sp,
            history,
            parity_on,
        })
    }
}

/// A trained FairGen model.
#[derive(Clone, Debug)]
pub struct TrainedFairGen {
    cfg: FairGenConfig,
    variant: FairGenVariant,
    generator: TransformerLm,
    discriminator: Mlp,
    graph: Graph,
    protected: Option<NodeSet>,
    protected_incident: Option<usize>,
    selfpaced: SelfPacedState,
    /// Per-cycle diagnostics.
    pub history: Vec<CycleReport>,
    parity_on: bool,
}

impl TrainedFairGen {
    /// The variant this model was trained as.
    pub fn variant(&self) -> FairGenVariant {
        self.variant
    }

    /// The final self-paced state (selection vectors, λ, pseudo-labels).
    pub fn self_paced(&self) -> &SelfPacedState {
        &self.selfpaced
    }

    /// The final objective report.
    pub fn final_objective(&self) -> Option<&ObjectiveReport> {
        self.history.last().map(|c| &c.objective)
    }

    /// Generates a synthetic graph with the fair assembly of Section II-D,
    /// deterministically in `seed`. One training run amortizes across any
    /// number of calls; each seed is an independent, reproducible draw.
    /// The walk fan-out runs on the process-wide [`ThreadPool`].
    pub fn generate(&self, seed: u64) -> Result<Graph> {
        self.generate_with_pool(seed, ThreadPool::global())
    }

    /// [`TrainedFairGen::generate`] against an explicit pool — the per-draw
    /// hot path (see tab4_runtime's fit/generate split). Walk sampling fans
    /// out with one batched KV-cache decode state per worker, each worker
    /// stepping a chunk of walks in lockstep (one GEMM per layer per token
    /// across the chunk), each walk replaying its slice of the pre-drawn
    /// master stream; score-matrix counting merges per-worker partials in
    /// chunk order. Output is bit-identical to the sequential path for any
    /// pool width (asserted in `tests/parallel_parity.rs`), so per-seed
    /// determinism holds regardless of `FAIRGEN_THREADS`.
    pub fn generate_with_pool(&self, seed: u64, pool: &ThreadPool) -> Result<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.cfg.num_walks * self.cfg.gen_multiplier;
        let draws = predraw(&mut rng, total * self.cfg.walk_len);
        let walks =
            sample_walk_batch(pool, &self.generator, total, self.cfg.walk_len, 1.0, &draws)?;
        let scores = fairgen_walks::ScoreMatrix::from_token_walks(pool, self.graph.n(), &walks);
        Ok(match (&self.protected, self.protected_incident, self.parity_on) {
            (Some(s), Some(quota), true) => {
                scores.assemble_fair(self.graph.m(), s, quota, &mut rng)
            }
            _ => scores.assemble(self.graph.m(), &mut rng),
        })
    }

    /// Generates one synthetic graph per seed; equivalent to mapping
    /// [`TrainedFairGen::generate`] over `seeds`, with the seeds fanned out
    /// across the process-wide [`ThreadPool`] (see
    /// [`TrainedFairGen::generate_batch_with_pool`]).
    pub fn generate_batch(&self, seeds: &[u64]) -> Result<Vec<Graph>> {
        self.generate_batch_with_pool(seeds, ThreadPool::global())
    }

    /// Cross-seed parallel batch generation: each seed's entire draw
    /// (predraw → walk sampling → score assembly) runs as one unit of work
    /// on the pool, which is the coarser — and for serving-sized batches,
    /// better-scaling — grain than parallelizing walks *within* each seed.
    ///
    /// Every seed samples against an inline (width-1) pool on its worker, so
    /// no pool broadcast ever nests inside another. Since the per-seed walk
    /// fan-out is bit-identical to sequential sampling at any width (the
    /// PR 4 parity contract), the batch output equals the sequential
    /// per-seed loop exactly — asserted at widths {1, 2, 8} in
    /// `tests/parallel_parity.rs`.
    pub fn generate_batch_with_pool(
        &self,
        seeds: &[u64],
        pool: &ThreadPool,
    ) -> Result<Vec<Graph>> {
        if pool.threads() == 1 || seeds.len() <= 1 {
            let mut out = Vec::with_capacity(seeds.len());
            for &s in seeds {
                out.push(self.generate_with_pool(s, pool)?);
            }
            return Ok(out);
        }
        pool.par_map_init(
            seeds.len(),
            || ThreadPool::new(1),
            |inline, i| self.generate_with_pool(seeds[i], inline),
        )
        .into_iter()
        .collect()
    }

    /// Per-node class log-probabilities under the discriminator (`n × C`),
    /// computed in row chunks across the process-wide pool (bit-identical
    /// to the fused batch at any width).
    pub fn predict_log_probs(&self) -> Mat {
        predict_log_probs_pool(
            &self.discriminator,
            &self.generator,
            self.graph.n(),
            ThreadPool::global(),
        )
    }

    /// Hard label predictions (argmax class per node).
    pub fn predict_labels(&self) -> Vec<usize> {
        let lp = self.predict_log_probs();
        (0..lp.rows())
            .map(|r| {
                (0..lp.cols())
                    .max_by(|&a, &b| lp.get(r, a).partial_cmp(&lp.get(r, b)).expect("finite"))
                    .expect("at least one class")
            })
            .collect()
    }

    /// Mean NLL the generator assigns to a walk corpus — the group-wise
    /// reconstruction loss `R_S(θ)` of Eq. 2 when the corpus is sampled from
    /// the subgraph `G_S`.
    pub fn walk_nll(&mut self, walks: &[Walk]) -> f64 {
        if walks.is_empty() {
            return 0.0;
        }
        let total: f64 = walks
            .iter()
            .map(|w| {
                let seq: Vec<usize> = w.iter().map(|&v| v as usize).collect();
                self.generator.nll(&seq)
            })
            .sum();
        total / walks.len() as f64
    }
}

impl fairgen_graph::Codec for CycleReport {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.cycle);
        enc.put_f64(self.lambda);
        enc.put_usize(self.pseudo_labels);
        self.objective.encode(enc);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        Ok(CycleReport {
            cycle: dec.take_usize()?,
            lambda: dec.take_f64()?,
            pseudo_labels: dec.take_usize()?,
            objective: ObjectiveReport::decode(dec)?,
        })
    }
}

/// The FairGen checkpoint payload (behind tag `"FairGen"`): config, variant,
/// both networks, the training graph, protected-group data, the final
/// self-paced state, and the per-cycle history. Everything [`generate`]
/// (and the inspection API) touches — a reloaded model is indistinguishable
/// from the in-memory original, per seed.
///
/// [`generate`]: TrainedFairGen::generate
impl fairgen_graph::Codec for TrainedFairGen {
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        self.cfg.encode(enc);
        self.variant.encode(enc);
        self.generator.encode(enc);
        self.discriminator.encode(enc);
        self.graph.encode(enc);
        enc.put_opt(&self.protected);
        enc.put_opt(&self.protected_incident);
        self.selfpaced.encode(enc);
        enc.put_seq(&self.history);
        enc.put_bool(self.parity_on);
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let cfg = FairGenConfig::decode(dec)?;
        let variant = FairGenVariant::decode(dec)?;
        let generator = TransformerLm::decode(dec)?;
        let discriminator = Mlp::decode(dec)?;
        let graph = Graph::decode(dec)?;
        let protected: Option<NodeSet> = dec.take_opt()?;
        let protected_incident: Option<usize> = dec.take_opt()?;
        let selfpaced = SelfPacedState::decode(dec)?;
        let history: Vec<CycleReport> = dec.take_seq()?;
        let parity_on = dec.take_bool()?;
        let corrupt = |detail: String| FairGenError::CorruptCheckpoint { detail };
        let n = graph.n();
        if generator.config().vocab != n {
            return Err(corrupt(format!(
                "generator vocab {} disagrees with {} graph nodes",
                generator.config().vocab,
                n
            )));
        }
        if generator.config().d_model != cfg.d_model {
            return Err(corrupt(format!(
                "generator width {} disagrees with configured d_model {}",
                generator.config().d_model,
                cfg.d_model
            )));
        }
        if discriminator.input_dim() != cfg.d_model {
            return Err(corrupt(format!(
                "discriminator input {} disagrees with d_model {}",
                discriminator.input_dim(),
                cfg.d_model
            )));
        }
        if selfpaced.assigned.len() != n {
            return Err(corrupt(format!(
                "self-paced state over {} nodes used with a {n}-node graph",
                selfpaced.assigned.len()
            )));
        }
        if let Some(s) = &protected {
            if s.universe() != n {
                return Err(corrupt(format!(
                    "protected group over {} nodes used with a {n}-node graph",
                    s.universe()
                )));
            }
        }
        Ok(TrainedFairGen {
            cfg,
            variant,
            generator,
            discriminator,
            graph,
            protected,
            protected_incident,
            selfpaced,
            history,
            parity_on,
        })
    }
}

/// Caps a walk pool to its most recent `cap` entries.
fn cap_pool(pool: &mut Vec<Walk>, cap: usize) {
    if pool.len() > cap {
        let drop = pool.len() - cap;
        pool.drain(0..drop);
    }
}

/// Builds the f_S entries from the current (pseudo-)labeled set: one entry
/// per class × group, seeds filtered through the diffusion core when
/// enabled. Balancing protected and unprotected entries with equal weight is
/// how FairGen approximately minimizes both R(θ) and R_{S⁺}(θ).
fn build_entries(
    g: &Graph,
    labeled: &[(NodeId, usize)],
    num_classes: usize,
    protected: Option<&NodeSet>,
    cfg: &FairGenConfig,
) -> Vec<ContextEntry> {
    let n = g.n();
    let mut by_class: Vec<Vec<NodeId>> = vec![Vec::new(); num_classes];
    for &(v, c) in labeled {
        by_class[c].push(v);
    }
    let mut entries = Vec::new();
    // Entries are weighted by their support size: the label-guided branch
    // then spends walk mass proportionally to how much context each group
    // actually has, instead of over-concentrating on the (small) protected
    // support and assembling a spurious near-clique on S⁺. The protected
    // group's guarantee comes from the parity term and the assembly quota,
    // not from walk over-sampling.
    let mut push_entry = |seeds: Vec<NodeId>, support: NodeSet| {
        if seeds.is_empty() || support.is_empty() {
            return;
        }
        let seeds = if cfg.use_diffusion_core {
            let core = diffusion_core(g, &support, cfg.core_delta, cfg.core_t);
            let in_core: Vec<NodeId> =
                seeds.iter().copied().filter(|&s| core.contains(s)).collect();
            if in_core.is_empty() {
                seeds
            } else {
                in_core
            }
        } else {
            seeds
        };
        let weight = support.len().max(1) as f64;
        entries.push(ContextEntry { seeds, support, weight });
    };
    for members in by_class.iter() {
        if members.is_empty() {
            continue;
        }
        let support = NodeSet::from_members(n, members);
        match protected {
            Some(s) => {
                let prot: Vec<NodeId> =
                    members.iter().copied().filter(|&v| s.contains(v)).collect();
                let unprot: Vec<NodeId> =
                    members.iter().copied().filter(|&v| !s.contains(v)).collect();
                // Protected sub-entry confined to the class∩group context
                // (falls back to the class support when the intersection is
                // too thin to walk in).
                if !prot.is_empty() {
                    let prot_support = support.intersect(s);
                    let sup =
                        if prot_support.len() >= 2 { prot_support } else { support.clone() };
                    push_entry(prot.clone(), sup);
                }
                if !unprot.is_empty() {
                    push_entry(unprot, support.clone());
                }
            }
            None => push_entry(members.clone(), support),
        }
    }
    // If the protected group never appears among the labeled vertices, add a
    // group-level entry so its context is still sampled (label scarcity is
    // exactly the C3 challenge).
    if let Some(s) = protected {
        let has_protected_seed = entries.iter().any(|e| e.seeds.iter().any(|&v| s.contains(v)));
        if !has_protected_seed && s.len() >= 2 {
            let seeds: Vec<NodeId> = s.members().iter().copied().take(10).collect();
            let weight = s.len() as f64;
            entries.push(ContextEntry { seeds, support: s.clone(), weight });
        }
    }
    entries
}

/// Step 4 of Algorithm 1: likelihood on N⁺, unlikelihood on N⁻, with the
/// per-minibatch forward/backward passes fanned out across `pool`.
///
/// Parallelism is data-parallel and **bit-identical across pool widths**:
/// every RNG draw (epoch shuffle, negative picks) comes from the master
/// stream in the sequential order; each minibatch item computes its
/// gradient in isolation (on a worker-local replica cloned from the
/// current weights when parallel, against zeroed master buffers when
/// sequential); and the per-item gradients are merged in item order
/// (`grad = g_0 + g_1 + …`, see [`add_grads`]), an accumulation whose
/// shape does not depend on how items were scheduled.
#[allow(clippy::too_many_arguments)]
fn train_generator(
    generator: &mut TransformerLm,
    opt: &mut Adam,
    n_pos: &[Walk],
    n_neg: &[Walk],
    epochs: usize,
    negative_weight: f64,
    rng: &mut StdRng,
    pool: &ThreadPool,
) {
    if n_pos.is_empty() {
        return;
    }
    let to_ids = |w: &Walk| -> Vec<usize> { w.iter().map(|&v| v as usize).collect() };
    let batch = 8usize;
    for _ in 0..epochs {
        let mut order: Vec<usize> = (0..n_pos.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for chunk in order.chunks(batch) {
            // Pre-draw the negative picks in sequential item order, so the
            // master stream is independent of how items are scheduled.
            let negs: Vec<Option<usize>> = chunk
                .iter()
                .map(|_| {
                    (negative_weight > 0.0 && !n_neg.is_empty())
                        .then(|| rng.gen_range(0..n_neg.len()))
                })
                .collect();
            let item_grads: Vec<Vec<f64>> = if pool.threads() == 1 || chunk.len() == 1 {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| {
                        generator.zero_grad();
                        generator.train_step(&to_ids(&n_pos[i]), 1.0);
                        if let Some(ni) = negs[j] {
                            generator.train_step(&to_ids(&n_neg[ni]), -negative_weight);
                        }
                        collect_grads(generator)
                    })
                    .collect()
            } else {
                // Each worker clones the current weights once per chunk
                // (they change at every `opt.step`, so a persistent replica
                // would need the same full value copy to resync). The copy
                // is O(params) against O(items · T · params) of
                // forward/backward work per chunk — a few percent at the
                // quickstart shapes.
                let replica_of: &TransformerLm = generator;
                pool.par_map_init(
                    chunk.len(),
                    || replica_of.clone(),
                    |replica, j| {
                        replica.zero_grad();
                        replica.train_step(&to_ids(&n_pos[chunk[j]]), 1.0);
                        if let Some(ni) = negs[j] {
                            replica.train_step(&to_ids(&n_neg[ni]), -negative_weight);
                        }
                        collect_grads(replica)
                    },
                )
            };
            generator.zero_grad();
            for flat in &item_grads {
                add_grads(generator, flat);
            }
            clip_gradients(generator, 5.0);
            opt.step(generator);
        }
    }
}

/// Node features for the discriminator: rows of the generator's token
/// embedding (the "mutually beneficial" coupling of M1 and M2).
fn node_features(generator: &TransformerLm, nodes: &[NodeId]) -> Mat {
    let emb = generator.token_embedding();
    let dim = emb.dim();
    let mut x = Mat::zeros(nodes.len(), dim);
    for (r, &v) in nodes.iter().enumerate() {
        x.row_mut(r).copy_from_slice(emb.vector(v as usize));
    }
    x
}

/// Inference: class log-probabilities for every node.
fn predict_log_probs(discriminator: &Mlp, generator: &TransformerLm, n: usize) -> Mat {
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    let x = node_features(generator, &nodes);
    let logits = discriminator.forward_inference(&x);
    log_softmax(&logits)
}

/// [`predict_log_probs`] with the discriminator's full-graph batch split
/// into fixed row chunks across `pool`. Bit-identical to the fused batch
/// at any width: the chunk grid ignores the pool width, the blocked GEMM
/// accumulates per output row independently, and `log_softmax` is
/// row-local (asserted in `fairgen-nn`'s `tests/parallel_parity.rs`).
fn predict_log_probs_pool(
    discriminator: &Mlp,
    generator: &TransformerLm,
    n: usize,
    pool: &ThreadPool,
) -> Mat {
    /// Rows per parallel task.
    const ROWS: usize = 64;
    if pool.threads() == 1 || n <= ROWS {
        return predict_log_probs(discriminator, generator, n);
    }
    let chunks = n.div_ceil(ROWS);
    let parts: Vec<Mat> = pool.par_map(chunks, |c| {
        let lo = c * ROWS;
        let hi = ((c + 1) * ROWS).min(n);
        let nodes: Vec<NodeId> = (lo as NodeId..hi as NodeId).collect();
        discriminator.forward_inference(&node_features(generator, &nodes))
    });
    let cols = parts[0].cols();
    let mut logits = Mat::zeros(n, cols);
    let mut row = 0usize;
    for part in &parts {
        for r in 0..part.rows() {
            logits.row_mut(row).copy_from_slice(part.row(r));
            row += 1;
        }
    }
    log_softmax(&logits)
}

/// Cost-sensitive weights ξ of Eq. 9, normalized over the batch by
/// `cross_entropy` itself.
fn xi_weight(v: NodeId, protected: Option<&NodeSet>) -> f64 {
    match protected {
        Some(s) => {
            let plus = s.len().max(1) as f64;
            let minus = (s.universe() - s.len()).max(1) as f64;
            if s.contains(v) {
                1.0 / plus
            } else {
                1.0 / minus
            }
        }
        None => 1.0,
    }
}

/// One discriminator update (Algorithm 1 step 10): a gradient step on
/// `J_P + J_L + J_F` over a sampled batch.
#[allow(clippy::too_many_arguments)]
fn discriminator_step(
    discriminator: &mut Mlp,
    opt: &mut Adam,
    generator: &TransformerLm,
    sp: &SelfPacedState,
    ground_truth: &[(NodeId, usize)],
    protected: Option<&NodeSet>,
    cfg: &FairGenConfig,
    parity_on: bool,
    rng: &mut StdRng,
) {
    let augmented = sp.labeled_set();
    if augmented.is_empty() {
        return;
    }
    let truth_mask: std::collections::HashSet<NodeId> =
        ground_truth.iter().map(|&(v, _)| v).collect();
    // Sample N₁ labeled vertices.
    let mut batch: Vec<(NodeId, usize)> = Vec::with_capacity(cfg.batch_size);
    for _ in 0..cfg.batch_size.min(4 * augmented.len()) {
        batch.push(augmented[rng.gen_range(0..augmented.len())]);
    }
    let nodes: Vec<NodeId> = batch.iter().map(|&(v, _)| v).collect();
    let targets: Vec<usize> = batch.iter().map(|&(_, c)| c).collect();
    // J_P for ground truth (weight α·ξ), J_L for pseudo labels (weight β·ξ).
    let weights: Vec<f64> = batch
        .iter()
        .map(|&(v, _)| {
            let base = if truth_mask.contains(&v) { cfg.alpha } else { cfg.beta };
            base * xi_weight(v, protected)
        })
        .collect();
    discriminator.zero_grad();
    let x = node_features(generator, &nodes);
    let logits = discriminator.forward(&x);
    let (_, dlogits) = cross_entropy(&logits, &targets, Some(&weights));
    discriminator.backward(&dlogits);

    // J_F: statistical parity over S⁺ vs S⁻ (Eqs. 10–11) on a group batch.
    if parity_on {
        if let Some(s) = protected {
            let plus: Vec<NodeId> = s.members().to_vec();
            let minus_all = s.complement();
            let sample_size = plus.len().clamp(1, cfg.batch_size);
            let minus: Vec<NodeId> = (0..sample_size)
                .map(|_| minus_all.members()[rng.gen_range(0..minus_all.len())])
                .collect();
            if !plus.is_empty() && !minus.is_empty() {
                let dlogits =
                    parity_gradient(discriminator, generator, &plus, &minus, cfg.gamma);
                discriminator.backward(&dlogits);
            }
        }
    }
    clip_gradients(discriminator, 5.0);
    opt.step(discriminator);
}

/// Computes the gradient of `γ Σ_c |m⁺_c − m⁻_c|` with respect to the
/// discriminator logits of the concatenated `[plus; minus]` batch, leaving
/// the forward cache populated for the subsequent backward call.
fn parity_gradient(
    discriminator: &mut Mlp,
    generator: &TransformerLm,
    plus: &[NodeId],
    minus: &[NodeId],
    gamma: f64,
) -> Mat {
    let mut nodes: Vec<NodeId> = Vec::with_capacity(plus.len() + minus.len());
    nodes.extend_from_slice(plus);
    nodes.extend_from_slice(minus);
    let x = node_features(generator, &nodes);
    let logits = discriminator.forward(&x);
    let lp = log_softmax(&logits);
    let probs = softmax_rows(&logits);
    let c = logits.cols();
    let (np, nm) = (plus.len() as f64, minus.len() as f64);
    // m⁺_c, m⁻_c (Eqs. 10–11).
    let mut m_plus = vec![0.0; c];
    let mut m_minus = vec![0.0; c];
    for r in 0..plus.len() {
        for (cls, m) in m_plus.iter_mut().enumerate() {
            *m += lp.get(r, cls) / np;
        }
    }
    for r in plus.len()..nodes.len() {
        for (cls, m) in m_minus.iter_mut().enumerate() {
            *m += lp.get(r, cls) / nm;
        }
    }
    // d|m⁺_c − m⁻_c|/dlogits: sign(m⁺_c − m⁻_c)·(∂m⁺_c − ∂m⁻_c), with
    // ∂ log p_c / ∂ logit_j = δ_cj − p_j.
    let mut dlogits = Mat::zeros(nodes.len(), c);
    for cls in 0..c {
        let sign = (m_plus[cls] - m_minus[cls]).signum();
        if sign == 0.0 {
            continue;
        }
        for (r, group_coef) in (0..nodes.len()).map(|r| {
            if r < plus.len() {
                (r, gamma * sign / np)
            } else {
                (r, -gamma * sign / nm)
            }
        }) {
            for j in 0..c {
                let delta = if j == cls { 1.0 } else { 0.0 };
                let cur = dlogits.get(r, j);
                dlogits.set(r, j, cur + group_coef * (delta - probs.get(r, j)));
            }
        }
    }
    dlogits
}

/// The parity value `γ Σ_c |m⁺_c − m⁻_c|` (for reporting).
fn parity_value(
    discriminator: &Mlp,
    generator: &TransformerLm,
    s: &NodeSet,
    gamma: f64,
) -> f64 {
    let plus: Vec<NodeId> = s.members().to_vec();
    let minus: Vec<NodeId> = s.complement().members().to_vec();
    if plus.is_empty() || minus.is_empty() {
        return 0.0;
    }
    let lp_plus =
        log_softmax(&discriminator.forward_inference(&node_features(generator, &plus)));
    let lp_minus =
        log_softmax(&discriminator.forward_inference(&node_features(generator, &minus)));
    let c = lp_plus.cols();
    let mut total = 0.0;
    for cls in 0..c {
        let mp: f64 =
            (0..plus.len()).map(|r| lp_plus.get(r, cls)).sum::<f64>() / plus.len() as f64;
        let mm: f64 =
            (0..minus.len()).map(|r| lp_minus.get(r, cls)).sum::<f64>() / minus.len() as f64;
        total += (mp - mm).abs();
    }
    gamma * total
}

/// End-of-cycle objective snapshot (all terms of Eq. 3, suitably normalized
/// for comparability across graph sizes).
#[allow(clippy::too_many_arguments)]
fn compute_objective(
    generator: &mut TransformerLm,
    discriminator: &Mlp,
    sp: &SelfPacedState,
    ground_truth: &[(NodeId, usize)],
    protected: Option<&NodeSet>,
    n_pos: &[Walk],
    cfg: &FairGenConfig,
    parity_on: bool,
    has_labels: bool,
    pool: &ThreadPool,
) -> ObjectiveReport {
    // J_G: mean NLL over a fixed-size sample of recent positive walks.
    let sample = 40.min(n_pos.len());
    let j_g = if sample == 0 {
        0.0
    } else {
        n_pos[n_pos.len() - sample..]
            .iter()
            .map(|w| {
                let seq: Vec<usize> = w.iter().map(|&v| v as usize).collect();
                generator.nll(&seq)
            })
            .sum::<f64>()
            / sample as f64
    };
    if !has_labels {
        return ObjectiveReport { j_g, j_p: 0.0, j_f: 0.0, j_l: 0.0, j_s: 0.0 };
    }
    // J_P: cost-sensitive CE over the ground-truth set.
    let nodes: Vec<NodeId> = ground_truth.iter().map(|&(v, _)| v).collect();
    let targets: Vec<usize> = ground_truth.iter().map(|&(_, c)| c).collect();
    let weights: Vec<f64> = nodes.iter().map(|&v| xi_weight(v, protected)).collect();
    let logits = discriminator.forward_inference(&node_features(generator, &nodes));
    let (ce, _) = cross_entropy(&logits, &targets, Some(&weights));
    let j_p = cfg.alpha * ce;
    // J_F.
    let j_f = match (parity_on, protected) {
        (true, Some(s)) => parity_value(discriminator, generator, s, cfg.gamma),
        _ => 0.0,
    };
    // J_L and J_S over the self-paced selections, normalized by n.
    let n = sp.assigned.len();
    let lp = predict_log_probs_pool(discriminator, generator, n, pool);
    let mut j_l = 0.0;
    let mut selected = 0usize;
    for (c, vc) in sp.v.iter().enumerate() {
        for (i, &sel) in vc.iter().enumerate() {
            if sel {
                j_l -= lp.get(i, c);
                selected += 1;
            }
        }
    }
    let j_l = cfg.beta * j_l / n as f64;
    let j_s = -sp.lambda * selected as f64 / n as f64;
    ObjectiveReport { j_g, j_p, j_f, j_l, j_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::{toy_two_community, Dataset};

    fn toy_task() -> (Graph, TaskSpec) {
        let lg = toy_two_community(3);
        let mut rng = StdRng::seed_from_u64(1);
        let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
        (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
    }

    #[test]
    fn trains_and_generates_on_toy() {
        let (g, task) = toy_task();
        let fairgen = FairGen::new(FairGenConfig::test_budget());
        let trained = fairgen.train(&g, &task, 7).expect("valid input");
        assert_eq!(trained.history.len(), 2);
        let out = trained.generate(1).expect("generate");
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
        assert!(out.min_degree() >= 1);
    }

    #[test]
    fn one_train_amortizes_and_reproduces_per_seed() {
        let (g, task) = toy_task();
        let trained =
            FairGen::new(FairGenConfig::test_budget()).train(&g, &task, 7).expect("train");
        let batch = trained.generate_batch(&[1, 2, 1]).expect("batch");
        assert_eq!(batch[0], batch[2], "same seed must reproduce");
        assert_ne!(batch[0], batch[1], "different seeds must differ");
        assert_eq!(batch[0], trained.generate(1).expect("generate"));
    }

    #[test]
    fn fair_assembly_preserves_protected_volume() {
        let (g, task) = toy_task();
        let s = task.protected.clone().unwrap();
        let quota = g.edges().filter(|&(u, v)| s.contains(u) || s.contains(v)).count();
        let fairgen = FairGen::new(FairGenConfig::test_budget());
        let trained = fairgen.train(&g, &task, 7).expect("valid input");
        let out = trained.generate(2).expect("generate");
        let incident = out.edges().filter(|&(u, v)| s.contains(u) || s.contains(v)).count();
        assert!(
            incident as f64 >= 0.8 * quota as f64,
            "protected volume collapsed: {incident} vs {quota}"
        );
    }

    #[test]
    fn generator_learns_real_walk_distribution() {
        // After training, held-out real walks must score below the
        // uniform-baseline NLL of ln(n) (an untrained model's level), and
        // sampled walks must traverse real edges well above chance.
        let (g, task) = toy_task();
        let mut cfg = FairGenConfig::test_budget();
        cfg.cycles = 3;
        cfg.num_walks = 400;
        cfg.pool_cap = 1200;
        let mut trained = FairGen::new(cfg).train(&g, &task, 5).expect("valid input");
        let mut rng = StdRng::seed_from_u64(9);
        let walker = fairgen_walks::Node2VecWalker::default();
        let held_out = walker.walk_corpus(&g, 40, 6, &mut rng);
        let nll = trained.walk_nll(&held_out);
        let uniform = (g.n() as f64).ln();
        assert!(nll < uniform - 0.1, "trained NLL {nll} vs uniform {uniform}");
        // Edge consistency of the generated graph: most selected edges real.
        let density = g.m() as f64 / (g.n() * (g.n() - 1) / 2) as f64;
        let out = trained.generate(3).expect("generate");
        let real = out.edges().filter(|&(u, v)| g.has_edge(u, v)).count();
        let frac = real as f64 / out.m() as f64;
        assert!(
            frac > 2.0 * density,
            "generated edges barely better than chance: {frac} vs density {density}"
        );
    }

    #[test]
    fn lambda_grows_and_pseudo_labels_appear() {
        let (g, task) = toy_task();
        let mut cfg = FairGenConfig::test_budget();
        cfg.cycles = 3;
        cfg.lambda_init = 1.0;
        cfg.lambda_growth = 2.0;
        let trained = FairGen::new(cfg).train(&g, &task, 5).expect("valid input");
        let lambdas: Vec<f64> = trained.history.iter().map(|c| c.lambda).collect();
        assert!(lambdas.windows(2).all(|w| w[1] > w[0]), "λ must grow: {lambdas:?}");
        // With one class and a growing λ, eventually many nodes are admitted.
        assert!(trained.history.last().unwrap().pseudo_labels > 0);
    }

    #[test]
    fn unlabeled_input_still_generates() {
        let lg = Dataset::Ca.generate(2);
        let mut cfg = FairGenConfig::test_budget();
        cfg.cycles = 1;
        cfg.num_walks = 40;
        let trained = FairGen::new(cfg)
            .train(&lg.graph, &TaskSpec::unlabeled(), 3)
            .expect("unlabeled tasks degrade to structural generation");
        let out = trained.generate(1).expect("generate");
        assert_eq!(out.m(), lg.graph.m());
        let obj = trained.final_objective().unwrap();
        assert_eq!(obj.j_p, 0.0);
        assert_eq!(obj.j_f, 0.0);
    }

    #[test]
    fn variants_train() {
        let (g, task) = toy_task();
        for variant in [
            FairGenVariant::RandomSampling,
            FairGenVariant::NoSelfPaced,
            FairGenVariant::NoParity,
            FairGenVariant::NegativeSampling,
        ] {
            let mut cfg = FairGenConfig::test_budget();
            cfg.cycles = 2;
            cfg.num_walks = 40;
            let trained = FairGen::new(cfg)
                .with_variant(variant)
                .train(&g, &task, 4)
                .expect("valid input");
            let out = trained.generate(1).expect("generate");
            assert_eq!(out.m(), g.m(), "{:?}", variant);
            if variant == FairGenVariant::NoSelfPaced {
                assert_eq!(trained.history.len(), 1);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, task) = toy_task();
        let fairgen = FairGen::new(FairGenConfig::test_budget());
        let a = fairgen.train(&g, &task, 11).expect("valid input");
        let b = fairgen.train(&g, &task, 11).expect("valid input");
        assert_eq!(a.generate(5).expect("a"), b.generate(5).expect("b"));
    }

    #[test]
    fn predict_labels_shape() {
        let (g, task) = toy_task();
        let trained =
            FairGen::new(FairGenConfig::test_budget()).train(&g, &task, 2).expect("valid");
        let labels = trained.predict_labels();
        assert_eq!(labels.len(), g.n());
        assert!(labels.iter().all(|&c| c < task.num_classes));
    }

    #[test]
    fn walk_nll_protected_vs_all() {
        // The group-wise reconstruction loss R_{S+}(θ) is computable.
        let (g, task) = toy_task();
        let mut trained =
            FairGen::new(FairGenConfig::test_budget()).train(&g, &task, 2).expect("valid");
        let s = task.protected.clone().unwrap();
        let (sub, map) = fairgen_graph::induced_subgraph(&g, s.members());
        let mut rng = StdRng::seed_from_u64(0);
        let walker = fairgen_walks::Node2VecWalker::default();
        let sub_walks = walker.walk_corpus(&sub, 20, 6, &mut rng);
        // Translate to parent ids.
        let walks: Vec<Walk> = sub_walks
            .iter()
            .map(|w| w.iter().map(|&v| map.to_parent[v as usize]).collect())
            .collect();
        let nll = trained.walk_nll(&walks);
        assert!(nll.is_finite() && nll > 0.0);
        assert_eq!(trained.walk_nll(&[]), 0.0);
    }

    #[test]
    fn observer_streams_reports_and_can_stop_training() {
        let (g, task) = toy_task();
        let mut cfg = FairGenConfig::test_budget();
        cfg.cycles = 4;
        cfg.num_walks = 40;

        // Stream: every cycle report arrives, in order.
        let mut cycles_seen = Vec::new();
        let mut observer = |r: &CycleReport| {
            cycles_seen.push(r.cycle);
            ControlFlow::Continue(())
        };
        let trained =
            FairGen::new(cfg).train_observed(&g, &task, 8, &mut observer).expect("valid input");
        assert_eq!(cycles_seen, vec![1, 2, 3, 4]);
        assert_eq!(trained.history.len(), 4);

        // Cancel: breaking at cycle 2 truncates history but returns a
        // usable model.
        let mut observer = |r: &CycleReport| {
            if r.cycle >= 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        let stopped =
            FairGen::new(cfg).train_observed(&g, &task, 8, &mut observer).expect("valid input");
        assert_eq!(stopped.history.len(), 2);
        let out = stopped.generate(1).expect("partial model still generates");
        assert_eq!(out.m(), g.m());
    }

    #[test]
    fn invalid_inputs_error_instead_of_panicking() {
        let (g, task) = toy_task();
        // Degenerate config.
        let mut cfg = FairGenConfig::test_budget();
        cfg.ratio_r = 7.0;
        assert!(matches!(
            FairGen::new(cfg).train(&g, &task, 1),
            Err(FairGenError::InvalidConfig { field: "ratio_r", .. })
        ));
        // Too-small graph.
        let tiny = Graph::empty(1);
        assert!(matches!(
            FairGen::new(FairGenConfig::test_budget()).train(&tiny, &TaskSpec::unlabeled(), 1),
            Err(FairGenError::GraphTooSmall { nodes: 1, min_nodes: 2 })
        ));
        // Labels present, gamma > 0, no protected group.
        let stripped = TaskSpec::new(task.labeled.clone(), task.num_classes, None);
        assert!(matches!(
            FairGen::new(FairGenConfig::test_budget()).train(&g, &stripped, 1),
            Err(FairGenError::MissingProtectedGroup { .. })
        ));
        // ... but the parity-free ablation accepts the same task.
        let mut cfg = FairGenConfig::test_budget();
        cfg.cycles = 1;
        cfg.num_walks = 30;
        assert!(FairGen::new(cfg)
            .with_variant(FairGenVariant::NoParity)
            .train(&g, &stripped, 1)
            .is_ok());
    }
}
