//! Persistent checkpoints: fitted generators that survive process restarts.
//!
//! This is the application-facing entry point of the persistence layer.
//! [`save_to`] seals any [`PersistableGenerator`] — the six baselines *and*
//! [`TrainedFairGen`] — into the versioned, checksummed container of
//! [`fairgen_graph::codec`]; [`load_from`] reopens a checkpoint of **any**
//! known family, dispatching on the container tag, and hands back a
//! ready-to-serve model:
//!
//! ```no_run
//! use fairgen_core::{checkpoint, FairGen, FairGenConfig, TaskSpec};
//! # fn demo(graph: fairgen_graph::Graph, task: TaskSpec)
//! #     -> fairgen_core::error::Result<()> {
//! let trained = FairGen::new(FairGenConfig::default()).train(&graph, &task, 42)?;
//! checkpoint::save_to("fairgen.ckpt", &trained)?;          // fit once…
//! let mut served = checkpoint::load_from("fairgen.ckpt")?; // …any process later
//! let sample = served.generate(7)?;                        // identical to the
//! # let _ = sample; Ok(())                                 // in-memory draw
//! # }
//! ```
//!
//! Checkpoints are **optimizer-free** (weights only; see
//! [`fairgen_graph::codec`] for the byte format) and **bit-exact**:
//! `save → load → generate(seed)` reproduces the in-memory model's output
//! graph exactly, which is what lets a serving layer spill cold models to
//! disk and warm-start them later without re-validating outputs.

use std::path::Path;

use fairgen_baselines::persist::{decode_baseline, fitted_to_bytes, PersistableGenerator};
use fairgen_graph::codec;

use crate::error::{FairGenError, Result};
use crate::model::TrainedFairGen;

/// Seals a fitted model into checkpoint bytes (container format of
/// [`fairgen_graph::codec`], tagged with the model's family).
pub fn to_bytes(model: &dyn PersistableGenerator) -> Vec<u8> {
    fitted_to_bytes(model)
}

/// Reconstructs a fitted model of **any** known family from checkpoint
/// bytes, dispatching on the container tag.
///
/// # Errors
///
/// * [`FairGenError::CorruptCheckpoint`] — framing, checksum, or state
///   validation failed;
/// * [`FairGenError::UnknownCheckpointTag`] — structurally valid container
///   holding a family this build does not know.
pub fn from_bytes(bytes: &[u8]) -> Result<Box<dyn PersistableGenerator>> {
    let (tag, mut dec) = codec::open(bytes)?;
    if let Some(model) = decode_baseline(&tag, &mut dec)? {
        return Ok(model);
    }
    match tag.as_str() {
        "FairGen" => {
            let model = <TrainedFairGen as codec::Codec>::decode(&mut dec)?;
            dec.finish()?;
            Ok(Box::new(model))
        }
        _ => Err(FairGenError::UnknownCheckpointTag { tag }),
    }
}

/// [`to_bytes`] plus the filesystem trip.
pub fn save_to<P: AsRef<Path>>(path: P, model: &dyn PersistableGenerator) -> Result<()> {
    codec::write_file(path, &to_bytes(model))
}

/// [`from_bytes`] plus the filesystem trip.
pub fn load_from<P: AsRef<Path>>(path: P) -> Result<Box<dyn PersistableGenerator>> {
    from_bytes(&codec::read_file(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairGenConfig;
    use crate::model::FairGen;
    use fairgen_baselines::TaskSpec;
    use fairgen_data::toy_two_community;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained() -> (TrainedFairGen, fairgen_graph::Graph) {
        let lg = toy_two_community(3);
        let mut rng = StdRng::seed_from_u64(1);
        let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
        let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
        let model = FairGen::new(FairGenConfig::test_budget())
            .train(&lg.graph, &task, 7)
            .expect("valid input");
        (model, lg.graph.clone())
    }

    #[test]
    fn fairgen_roundtrips_through_bytes() {
        let (model, g) = trained();
        let bytes = to_bytes(&model);
        let mut back = from_bytes(&bytes).expect("decode");
        assert_eq!(back.name(), "FairGen");
        let mem = model.generate(5).expect("mem");
        let disk = back.generate(5).expect("disk");
        assert_eq!(mem, disk, "reloaded FairGen diverged from the in-memory model");
        assert_eq!(mem.n(), g.n());
        assert_eq!(mem.m(), g.m());
    }

    #[test]
    fn reloaded_model_keeps_history_and_predictions() {
        let (model, _) = trained();
        let bytes = to_bytes(&model);
        let back = from_bytes(&bytes).expect("decode");
        // The trait object can be downcast-free inspected by re-decoding as
        // the concrete type (same payload).
        let (tag, mut dec) = codec::open(&bytes).expect("container");
        assert_eq!(tag, "FairGen");
        let concrete = <TrainedFairGen as codec::Codec>::decode(&mut dec).expect("decode");
        assert_eq!(concrete.history.len(), model.history.len());
        assert_eq!(concrete.predict_labels(), model.predict_labels());
        assert_eq!(concrete.variant(), model.variant());
        drop(back);
    }

    #[test]
    fn file_roundtrip_and_unknown_tag() {
        let (model, _) = trained();
        let dir = std::env::temp_dir().join("fairgen-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.ckpt");
        save_to(&path, &model).expect("save");
        let mut back = load_from(&path).expect("load");
        assert_eq!(model.generate(3).expect("mem"), back.generate(3).expect("disk"));
        let _ = std::fs::remove_file(&path);

        let alien = codec::seal("SomeFutureFamily", &[]);
        assert!(matches!(
            from_bytes(&alien),
            Err(FairGenError::UnknownCheckpointTag { tag }) if tag == "SomeFutureFamily"
        ));
    }

    #[test]
    fn corrupt_bytes_error_instead_of_panicking() {
        let (model, _) = trained();
        let mut bytes = to_bytes(&model);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(from_bytes(&bytes), Err(FairGenError::CorruptCheckpoint { .. })));
    }
}
