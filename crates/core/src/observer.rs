//! Training observability: stream per-cycle diagnostics out of
//! [`FairGen::train`](crate::FairGen::train) and cancel or early-stop a run
//! from the outside.
//!
//! [`FairGen::train_observed`](crate::FairGen::train_observed) calls
//! [`TrainObserver::on_cycle`] after every self-paced cycle with the fresh
//! [`CycleReport`]. Returning [`ControlFlow::Break`] stops training at that
//! cycle boundary; the partially-trained model is still returned (with its
//! `history` truncated to the cycles that ran), so a serving layer can
//! impose deadlines without losing the work already done.
//!
//! Closures observe directly:
//!
//! ```
//! use std::ops::ControlFlow;
//! use fairgen_core::{CycleReport, TrainObserver};
//!
//! let mut seen = 0usize;
//! let mut observer = |report: &CycleReport| {
//!     seen += 1;
//!     if report.objective.total() < 0.05 {
//!         ControlFlow::Break(()) // converged early
//!     } else {
//!         ControlFlow::Continue(())
//!     }
//! };
//! // &mut observer implements TrainObserver; pass it to train_observed.
//! let _: &mut dyn TrainObserver = &mut observer;
//! ```

use std::ops::ControlFlow;

use crate::model::CycleReport;

/// Receives a [`CycleReport`] after each self-paced training cycle and
/// decides whether training continues.
pub trait TrainObserver {
    /// Called once per completed cycle. Return [`ControlFlow::Break`] to
    /// stop training at this cycle boundary (cancellation / early stop);
    /// the model trained so far is still returned.
    fn on_cycle(&mut self, report: &CycleReport) -> ControlFlow<()>;
}

/// Ignores every report and never stops training; what
/// [`FairGen::train`](crate::FairGen::train) uses internally.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl TrainObserver for NullObserver {
    fn on_cycle(&mut self, _report: &CycleReport) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

impl<F: FnMut(&CycleReport) -> ControlFlow<()>> TrainObserver for F {
    fn on_cycle(&mut self, report: &CycleReport) -> ControlFlow<()> {
        self(report)
    }
}

/// Stops training after a fixed number of cycles — a deadline in cycle
/// units, useful for bounding work under load.
///
/// Observation happens at cycle *boundaries*, so at least one full cycle
/// always runs: `StopAfter::new(0)` and `StopAfter::new(1)` both stop
/// after the first cycle. To skip training entirely, don't train.
#[derive(Clone, Copy, Debug)]
pub struct StopAfter {
    /// Number of cycles to allow.
    pub cycles: usize,
    seen: usize,
}

impl StopAfter {
    /// An observer allowing `cycles` cycles (minimum one — see the type
    /// docs).
    pub fn new(cycles: usize) -> Self {
        StopAfter { cycles, seen: 0 }
    }
}

impl TrainObserver for StopAfter {
    fn on_cycle(&mut self, _report: &CycleReport) -> ControlFlow<()> {
        self.seen += 1;
        if self.seen >= self.cycles {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveReport;

    fn report(cycle: usize) -> CycleReport {
        CycleReport {
            cycle,
            lambda: 1.0,
            pseudo_labels: 0,
            objective: ObjectiveReport { j_g: 0.0, j_p: 0.0, j_f: 0.0, j_l: 0.0, j_s: 0.0 },
        }
    }

    #[test]
    fn null_observer_always_continues() {
        let mut obs = NullObserver;
        for c in 1..5 {
            assert_eq!(obs.on_cycle(&report(c)), ControlFlow::Continue(()));
        }
    }

    #[test]
    fn closures_observe_and_break() {
        let mut count = 0usize;
        let mut obs = |r: &CycleReport| {
            count += 1;
            if r.cycle >= 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        assert_eq!(TrainObserver::on_cycle(&mut obs, &report(1)), ControlFlow::Continue(()));
        assert_eq!(TrainObserver::on_cycle(&mut obs, &report(2)), ControlFlow::Break(()));
        assert_eq!(count, 2);
    }

    #[test]
    fn stop_after_counts_cycles() {
        let mut obs = StopAfter::new(2);
        assert_eq!(obs.on_cycle(&report(1)), ControlFlow::Continue(()));
        assert_eq!(obs.on_cycle(&report(2)), ControlFlow::Break(()));
    }
}
