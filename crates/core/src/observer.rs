//! Training observability: stream per-cycle diagnostics out of
//! [`FairGen::train`](crate::FairGen::train) and cancel or early-stop a run
//! from the outside.
//!
//! [`FairGen::train_observed`](crate::FairGen::train_observed) calls
//! [`TrainObserver::on_cycle`] after every self-paced cycle with the fresh
//! [`CycleReport`]. Returning [`ControlFlow::Break`] stops training at that
//! cycle boundary; the partially-trained model is still returned (with its
//! `history` truncated to the cycles that ran), so a serving layer can
//! impose deadlines without losing the work already done.
//!
//! Closures observe directly:
//!
//! ```
//! use std::ops::ControlFlow;
//! use fairgen_core::{CycleReport, TrainObserver};
//!
//! let mut seen = 0usize;
//! let mut observer = |report: &CycleReport| {
//!     seen += 1;
//!     if report.objective.total() < 0.05 {
//!         ControlFlow::Break(()) // converged early
//!     } else {
//!         ControlFlow::Continue(())
//!     }
//! };
//! // &mut observer implements TrainObserver; pass it to train_observed.
//! let _: &mut dyn TrainObserver = &mut observer;
//! ```

use std::ops::ControlFlow;

use crate::model::CycleReport;

/// Receives a [`CycleReport`] after each self-paced training cycle and
/// decides whether training continues.
pub trait TrainObserver {
    /// Called once per completed cycle. Return [`ControlFlow::Break`] to
    /// stop training at this cycle boundary (cancellation / early stop);
    /// the model trained so far is still returned.
    fn on_cycle(&mut self, report: &CycleReport) -> ControlFlow<()>;
}

/// Ignores every report and never stops training; what
/// [`FairGen::train`](crate::FairGen::train) uses internally.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl TrainObserver for NullObserver {
    fn on_cycle(&mut self, _report: &CycleReport) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

impl<F: FnMut(&CycleReport) -> ControlFlow<()>> TrainObserver for F {
    fn on_cycle(&mut self, report: &CycleReport) -> ControlFlow<()> {
        self(report)
    }
}

/// Stops training after a fixed number of cycles — a deadline in cycle
/// units, useful for bounding work under load.
///
/// Observation happens at cycle *boundaries*, so at least one full cycle
/// always runs: `StopAfter::new(0)` and `StopAfter::new(1)` both stop
/// after the first cycle. To skip training entirely, don't train.
#[derive(Clone, Copy, Debug)]
pub struct StopAfter {
    /// Number of cycles to allow.
    pub cycles: usize,
    seen: usize,
}

impl StopAfter {
    /// An observer allowing `cycles` cycles (minimum one — see the type
    /// docs).
    pub fn new(cycles: usize) -> Self {
        StopAfter { cycles, seen: 0 }
    }
}

impl TrainObserver for StopAfter {
    fn on_cycle(&mut self, _report: &CycleReport) -> ControlFlow<()> {
        self.seen += 1;
        if self.seen >= self.cycles {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// Streams each [`CycleReport`] as one JSON object per line (JSONL) to a
/// writer — a dashboard, a log shipper, or a file that `tail -f` and
/// `jq` understand while a long run is still training:
///
/// ```json
/// {"cycle":1,"lambda":0.980,"pseudo_labels":4,"objective":{"j_g":3.91,
///  "j_p":0.69,"j_f":0.02,"j_l":0.41,"j_s":-0.09,"total":4.94}}
/// ```
///
/// Each line is flushed as it is produced, so the sink observes cycles in
/// real time. Non-finite objective terms serialize as `null` (JSON has no
/// NaN). A write failure stops training at the cycle boundary (the model
/// trained so far is still returned) and is retrievable through
/// [`JsonlObserver::io_error`] — a dead sink should surface, not silently
/// drop telemetry.
#[derive(Debug)]
pub struct JsonlObserver<W: std::io::Write> {
    sink: W,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> JsonlObserver<W> {
    /// An observer streaming to `sink`.
    pub fn new(sink: W) -> Self {
        JsonlObserver { sink, error: None }
    }

    /// The first write error, if any (training was stopped at that cycle).
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consumes the observer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    fn render(report: &CycleReport) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let o = &report.objective;
        format!(
            "{{\"cycle\":{},\"lambda\":{},\"pseudo_labels\":{},\"objective\":{{\
             \"j_g\":{},\"j_p\":{},\"j_f\":{},\"j_l\":{},\"j_s\":{},\"total\":{}}}}}\n",
            report.cycle,
            num(report.lambda),
            report.pseudo_labels,
            num(o.j_g),
            num(o.j_p),
            num(o.j_f),
            num(o.j_l),
            num(o.j_s),
            num(o.total()),
        )
    }
}

impl<W: std::io::Write> TrainObserver for JsonlObserver<W> {
    fn on_cycle(&mut self, report: &CycleReport) -> ControlFlow<()> {
        let line = Self::render(report);
        match self.sink.write_all(line.as_bytes()).and_then(|()| self.sink.flush()) {
            Ok(()) => ControlFlow::Continue(()),
            Err(e) => {
                self.error = Some(e);
                ControlFlow::Break(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveReport;

    fn report(cycle: usize) -> CycleReport {
        CycleReport {
            cycle,
            lambda: 1.0,
            pseudo_labels: 0,
            objective: ObjectiveReport { j_g: 0.0, j_p: 0.0, j_f: 0.0, j_l: 0.0, j_s: 0.0 },
        }
    }

    #[test]
    fn null_observer_always_continues() {
        let mut obs = NullObserver;
        for c in 1..5 {
            assert_eq!(obs.on_cycle(&report(c)), ControlFlow::Continue(()));
        }
    }

    #[test]
    fn closures_observe_and_break() {
        let mut count = 0usize;
        let mut obs = |r: &CycleReport| {
            count += 1;
            if r.cycle >= 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        assert_eq!(TrainObserver::on_cycle(&mut obs, &report(1)), ControlFlow::Continue(()));
        assert_eq!(TrainObserver::on_cycle(&mut obs, &report(2)), ControlFlow::Break(()));
        assert_eq!(count, 2);
    }

    #[test]
    fn stop_after_counts_cycles() {
        let mut obs = StopAfter::new(2);
        assert_eq!(obs.on_cycle(&report(1)), ControlFlow::Continue(()));
        assert_eq!(obs.on_cycle(&report(2)), ControlFlow::Break(()));
    }

    #[test]
    fn jsonl_observer_streams_one_line_per_cycle() {
        let mut obs = JsonlObserver::new(Vec::new());
        assert_eq!(obs.on_cycle(&report(1)), ControlFlow::Continue(()));
        assert_eq!(obs.on_cycle(&report(2)), ControlFlow::Continue(()));
        assert!(obs.io_error().is_none());
        let text = String::from_utf8(obs.into_inner()).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"cycle\":1,"));
        assert!(lines[1].contains("\"lambda\":1"));
        assert!(lines[0].contains("\"objective\":{\"j_g\":0,"));
        assert!(lines[0].ends_with("}}"));
    }

    #[test]
    fn jsonl_observer_serializes_non_finite_as_null() {
        let mut r = report(1);
        r.objective.j_g = f64::NAN;
        r.objective.j_f = f64::INFINITY;
        let mut obs = JsonlObserver::new(Vec::new());
        assert_eq!(obs.on_cycle(&r), ControlFlow::Continue(()));
        let text = String::from_utf8(obs.into_inner()).expect("utf-8");
        assert!(text.contains("\"j_g\":null"));
        assert!(text.contains("\"j_f\":null"));
        assert!(!text.contains("NaN") && !text.contains("inf"));
    }

    #[test]
    fn jsonl_observer_breaks_on_dead_sink() {
        struct Dead;
        impl std::io::Write for Dead {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "sink gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut obs = JsonlObserver::new(Dead);
        assert_eq!(obs.on_cycle(&report(1)), ControlFlow::Break(()));
        assert!(obs.io_error().is_some());
    }
}
