//! FAIRGEN — a fairness-aware graph generative model (Zheng et al.,
//! ICDE 2024) in pure Rust.
//!
//! FairGen jointly trains a label-informed walk generator `g_θ` and a fair
//! discriminator `d_ω` under the objective of Eq. 3:
//!
//! ```text
//! J = J_G + J_P + J_F + J_L + J_S
//! ```
//!
//! * `J_G` — autoregressive reconstruction of walks sampled by the
//!   label-informed context sampler `f_S` (module M1), trained
//!   contrastively against negative walks;
//! * `J_P` — cost-sensitive prediction loss with the group weights `ξ` of
//!   Eq. 9 (module M2);
//! * `J_F` — the statistical-parity regularizer `γ Σ_c ‖m⁺_c − m⁻_c‖`
//!   (Eqs. 10–11);
//! * `J_L`, `J_S` — the self-paced label-propagation terms of Eq. 12 with
//!   the closed-form vector update of Eq. 14 (module M3).
//!
//! Training follows Algorithm 1 step-for-step; generation follows the fair
//! assembly of Section II-D (protected-volume preservation, minimum degree
//! one, exact edge-count matching).
//!
//! # The two-phase lifecycle: train once, generate many
//!
//! The public API is fallible and split into an expensive training phase
//! and a cheap, repeatable sampling phase:
//!
//! ```no_run
//! use fairgen_core::{FairGen, FairGenConfig, TaskSpec};
//! # fn demo(graph: fairgen_graph::Graph, task: TaskSpec)
//! #     -> fairgen_core::error::Result<()> {
//! let fairgen = FairGen::new(FairGenConfig::default());
//! let mut model = fairgen.train(&graph, &task, 42)?;   // expensive, once
//! let samples = model.generate_batch(&[1, 2, 3])?;     // cheap, many
//! # let _ = samples; Ok(())
//! # }
//! ```
//!
//! Invalid inputs (degenerate configs, too-small graphs, out-of-range
//! labels, a positive parity weight without a protected group) surface as
//! typed [`error::FairGenError`]s rather than panics, and
//! [`FairGen::train_observed`] streams [`CycleReport`]s to a
//! [`TrainObserver`] that can cancel or early-stop training at any cycle
//! boundary.
//!
//! Entry points:
//!
//! * [`FairGen`] + [`FairGenConfig`] — configure; [`FairGen::train`] /
//!   [`FairGen::train_observed`] to fit.
//! * [`TaskSpec`] — few-shot labels and the protected group (shared with
//!   every baseline through `fairgen_baselines`).
//! * [`TrainedFairGen`] — [`generate`](TrainedFairGen::generate) /
//!   [`generate_batch`](TrainedFairGen::generate_batch) synthetic graphs,
//!   predict labels, inspect the per-cycle [`CycleReport`]s. Also usable as
//!   a boxed [`fairgen_baselines::FittedGenerator`] trait object.
//! * [`FairGenGenerator`] — the [`fairgen_baselines::GraphGenerator`]
//!   adapter for experiment harnesses.
//! * [`FairGenVariant`] — the paper's ablations (FairGen-R, w/o SPL,
//!   w/o Parity, negative sampling).
//! * [`error`] — [`error::FairGenError`] and the workspace [`error::Result`]
//!   alias.

pub mod adapter;
pub mod checkpoint;
pub mod config;
pub mod disparity;
pub mod error;
pub mod model;
pub mod objective;
pub mod observer;
pub mod selfpaced;

pub use adapter::FairGenGenerator;
pub use config::{FairGenConfig, FairGenVariant};
pub use disparity::{group_walks, measure_disparity, DisparityReport};
pub use error::{FairGenError, Result};
pub use model::{CycleReport, FairGen, TrainedFairGen};
pub use objective::ObjectiveReport;
pub use observer::{JsonlObserver, NullObserver, StopAfter, TrainObserver};

// Re-exported so `fairgen_core` alone covers the whole generator lifecycle.
pub use fairgen_baselines::{
    FittedGenerator, GraphGenerator, PersistableGenerator, PersistableGraphGenerator, TaskSpec,
};
