//! FAIRGEN — a fairness-aware graph generative model (Zheng et al.,
//! ICDE 2024) in pure Rust.
//!
//! FairGen jointly trains a label-informed walk generator `g_θ` and a fair
//! discriminator `d_ω` under the objective of Eq. 3:
//!
//! ```text
//! J = J_G + J_P + J_F + J_L + J_S
//! ```
//!
//! * `J_G` — autoregressive reconstruction of walks sampled by the
//!   label-informed context sampler `f_S` (module M1), trained
//!   contrastively against negative walks;
//! * `J_P` — cost-sensitive prediction loss with the group weights `ξ` of
//!   Eq. 9 (module M2);
//! * `J_F` — the statistical-parity regularizer `γ Σ_c ‖m⁺_c − m⁻_c‖`
//!   (Eqs. 10–11);
//! * `J_L`, `J_S` — the self-paced label-propagation terms of Eq. 12 with
//!   the closed-form vector update of Eq. 14 (module M3).
//!
//! Training follows Algorithm 1 step-for-step; generation follows the fair
//! assembly of Section II-D (protected-volume preservation, minimum degree
//! one, exact edge-count matching).
//!
//! Entry points:
//!
//! * [`FairGen`] + [`FairGenConfig`] — configure and train.
//! * [`FairGenInput`] — graph, few-shot labels, protected group.
//! * [`TrainedFairGen`] — generate graphs, predict labels, inspect the
//!   per-cycle [`CycleReport`]s.
//! * [`FairGenVariant`] — the paper's ablations (FairGen-R, w/o SPL,
//!   w/o Parity, negative sampling).

pub mod adapter;
pub mod config;
pub mod disparity;
pub mod model;
pub mod objective;
pub mod selfpaced;

pub use adapter::FairGenGenerator;
pub use disparity::{group_walks, measure_disparity, DisparityReport};
pub use config::{FairGenConfig, FairGenVariant};
pub use model::{CycleReport, FairGen, FairGenInput, TrainedFairGen};
pub use objective::ObjectiveReport;
