//! The canonical error surface of the FairGen public API.
//!
//! [`FairGenError`] and the [`Result`] alias are defined in
//! `fairgen_graph::error` (the root of the crate graph, so every layer —
//! graph I/O, dataset loaders, the generator traits, and this crate — can
//! share one type); this module is their canonical user-facing path.
//!
//! Every fallible entry point of the two-phase generator lifecycle returns
//! these types:
//!
//! * [`FairGenConfig::validate`](crate::FairGenConfig::validate) →
//!   [`FairGenError::InvalidConfig`]
//! * [`FairGen::train`](crate::FairGen::train) → `InvalidConfig`,
//!   [`FairGenError::GraphTooSmall`],
//!   [`FairGenError::NodeOutOfRange`] / [`FairGenError::LabelOutOfRange`]
//!   (bad few-shot labels), [`FairGenError::GroupUniverseMismatch`], and
//!   [`FairGenError::MissingProtectedGroup`] (labels present, `γ > 0`, no
//!   `S⁺`)
//! * [`TrainedFairGen::generate`](crate::TrainedFairGen::generate) and the
//!   [`FittedGenerator`](fairgen_baselines::FittedGenerator) trait methods
//!   propagate the same type.

pub use fairgen_graph::error::{FairGenError, Result};
