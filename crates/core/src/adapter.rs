//! [`GraphGenerator`] adapter so FairGen (and its ablations) drop into the
//! same experiment harnesses as the baselines.

use fairgen_baselines::GraphGenerator;
use fairgen_graph::{Graph, NodeId, NodeSet};

use crate::config::{FairGenConfig, FairGenVariant};
use crate::model::{FairGen, FairGenInput};

/// Wraps FairGen with fixed task metadata (labels + protected group) so it
/// can be fitted on a graph through the uniform [`GraphGenerator`] trait.
#[derive(Clone, Debug)]
pub struct FairGenGenerator {
    /// The trainer.
    pub fairgen: FairGen,
    /// Few-shot labels to train with.
    pub labeled: Vec<(NodeId, usize)>,
    /// Number of classes.
    pub num_classes: usize,
    /// Protected group.
    pub protected: Option<NodeSet>,
}

impl FairGenGenerator {
    /// A full-model adapter.
    pub fn new(
        cfg: FairGenConfig,
        labeled: Vec<(NodeId, usize)>,
        num_classes: usize,
        protected: Option<NodeSet>,
    ) -> Self {
        FairGenGenerator { fairgen: FairGen::new(cfg), labeled, num_classes, protected }
    }

    /// Selects an ablation variant.
    pub fn with_variant(mut self, variant: FairGenVariant) -> Self {
        self.fairgen = self.fairgen.with_variant(variant);
        self
    }

    /// An adapter with no task metadata (structural generation only).
    pub fn unlabeled(cfg: FairGenConfig) -> Self {
        FairGenGenerator {
            fairgen: FairGen::new(cfg),
            labeled: Vec::new(),
            num_classes: 0,
            protected: None,
        }
    }
}

impl GraphGenerator for FairGenGenerator {
    fn name(&self) -> &'static str {
        self.fairgen.variant().name()
    }

    fn fit_generate(&self, g: &Graph, seed: u64) -> Graph {
        let input = FairGenInput {
            graph: g.clone(),
            labeled: self.labeled.clone(),
            num_classes: self.num_classes,
            protected: self.protected.clone(),
        };
        let mut trained = self.fairgen.train(&input, seed);
        trained.generate(seed.wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::toy_two_community;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adapter_matches_trait_contract() {
        let lg = toy_two_community(1);
        let mut rng = StdRng::seed_from_u64(0);
        let labeled = lg.sample_few_shot_labels(3, &mut rng);
        let gen = FairGenGenerator::new(
            FairGenConfig::test_budget(),
            labeled,
            lg.num_classes,
            lg.protected.clone(),
        );
        assert_eq!(gen.name(), "FairGen");
        let out = gen.fit_generate(&lg.graph, 3);
        assert_eq!(out.n(), lg.graph.n());
        assert_eq!(out.m(), lg.graph.m());
    }

    #[test]
    fn variant_names_propagate() {
        let gen = FairGenGenerator::unlabeled(FairGenConfig::test_budget())
            .with_variant(FairGenVariant::RandomSampling);
        assert_eq!(gen.name(), "FairGen-R");
    }
}
