//! [`GraphGenerator`] adapter so FairGen (and its ablations) drop into the
//! same experiment harnesses as the baselines.
//!
//! With the two-phase API the adapter is a thin configuration wrapper:
//! task metadata (labels + protected group) arrives uniformly through the
//! [`TaskSpec`] parameter of [`GraphGenerator::fit`] instead of being
//! stored on the adapter, and [`TrainedFairGen`] itself is the
//! [`FittedGenerator`].

use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
use fairgen_baselines::{FittedGenerator, GraphGenerator, TaskSpec};
use fairgen_graph::{Codec, Encoder, Graph};

use crate::config::{FairGenConfig, FairGenVariant};
use crate::error::Result;
use crate::model::{FairGen, TrainedFairGen};

/// Wraps a [`FairGen`] trainer behind the uniform [`GraphGenerator`]
/// interface.
#[derive(Clone, Copy, Debug)]
pub struct FairGenGenerator {
    /// The trainer.
    pub fairgen: FairGen,
}

impl FairGenGenerator {
    /// A full-model adapter.
    pub fn new(cfg: FairGenConfig) -> Self {
        FairGenGenerator { fairgen: FairGen::new(cfg) }
    }

    /// Selects an ablation variant.
    pub fn with_variant(mut self, variant: FairGenVariant) -> Self {
        self.fairgen = self.fairgen.with_variant(variant);
        self
    }
}

impl GraphGenerator for FairGenGenerator {
    fn name(&self) -> &'static str {
        self.fairgen.variant().name()
    }

    fn fit(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Box<dyn FittedGenerator>> {
        Ok(Box::new(self.fairgen.train(g, task, seed)?))
    }
}

impl FittedGenerator for TrainedFairGen {
    fn name(&self) -> &'static str {
        self.variant().name()
    }

    fn generate(&mut self, seed: u64) -> Result<Graph> {
        TrainedFairGen::generate(self, seed)
    }

    /// Routes batches through the cross-seed fan-out
    /// ([`TrainedFairGen::generate_batch_with_pool`]) instead of the default
    /// sequential loop, so registry-batched requests scale with the pool.
    fn generate_batch(&mut self, seeds: &[u64]) -> Result<Vec<Graph>> {
        TrainedFairGen::generate_batch(self, seeds)
    }
}

impl PersistableGenerator for TrainedFairGen {
    /// One tag for every variant: the variant is part of the payload, so
    /// `FairGen-R` et al. reload through the same `"FairGen"` dispatch arm.
    fn checkpoint_tag(&self) -> &'static str {
        "FairGen"
    }

    fn encode_state(&self, enc: &mut Encoder) {
        Codec::encode(self, enc);
    }
}

impl PersistableGraphGenerator for FairGenGenerator {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        Ok(Box::new(self.fairgen.train(g, task, seed)?))
    }

    fn fold_config(&self, fp: &mut fairgen_graph::FingerprintBuilder) {
        // name() already distinguishes variants, but fold the discriminant
        // anyway so the key never rests on display strings alone.
        let mut enc = Encoder::new();
        Codec::encode(&self.fairgen.variant(), &mut enc);
        fp.add_bytes(&enc.into_bytes());
        self.fairgen.config().fold_config(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::toy_two_community;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adapter_matches_trait_contract() {
        let lg = toy_two_community(1);
        let mut rng = StdRng::seed_from_u64(0);
        let labeled = lg.sample_few_shot_labels(3, &mut rng).expect("toy is labeled");
        let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
        let gen = FairGenGenerator::new(FairGenConfig::test_budget());
        assert_eq!(gen.name(), "FairGen");
        let mut fitted = gen.fit(&lg.graph, &task, 3).expect("fit");
        let out = fitted.generate(4).expect("generate");
        assert_eq!(out.n(), lg.graph.n());
        assert_eq!(out.m(), lg.graph.m());
        // One fit, many reproducible draws.
        let batch = fitted.generate_batch(&[4, 9, 4]).expect("batch");
        assert_eq!(batch[0], out);
        assert_eq!(batch[0], batch[2]);
        // The one-shot convenience matches fit + generate(seed + 1).
        let one_shot = gen.fit_generate(&lg.graph, &task, 3).expect("one-shot");
        let mut refit = gen.fit(&lg.graph, &task, 3).expect("fit");
        assert_eq!(one_shot, refit.generate(4).expect("generate"));
    }

    #[test]
    fn invalid_task_surfaces_through_the_trait() {
        use crate::error::FairGenError;
        let lg = toy_two_community(1);
        let task = TaskSpec::new(vec![(0, 99)], lg.num_classes, lg.protected.clone());
        let gen = FairGenGenerator::new(FairGenConfig::test_budget());
        assert!(matches!(
            gen.fit(&lg.graph, &task, 0),
            Err(FairGenError::LabelOutOfRange { label: 99, .. })
        ));
    }

    #[test]
    fn variant_names_propagate() {
        let gen = FairGenGenerator::new(FairGenConfig::test_budget())
            .with_variant(FairGenVariant::RandomSampling);
        assert_eq!(gen.name(), "FairGen-R");
    }
}
