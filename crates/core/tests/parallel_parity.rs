//! End-to-end parallel-vs-sequential parity for the FairGen pipeline:
//! training and generation must be bit-identical across pool widths
//! {1, 2, 8} for the same seed.

use fairgen_core::{FairGen, FairGenConfig, NullObserver, TaskSpec};
use fairgen_data::toy_two_community;
use fairgen_graph::Graph;
use fairgen_par::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTHS: [usize; 3] = [1, 2, 8];

fn toy_task() -> (Graph, TaskSpec) {
    let lg = toy_two_community(3);
    let mut rng = StdRng::seed_from_u64(1);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
}

fn small_config() -> FairGenConfig {
    let mut cfg = FairGenConfig::test_budget();
    cfg.cycles = 2;
    cfg.num_walks = 40;
    cfg
}

#[test]
fn training_is_bit_identical_across_pool_widths() {
    let (g, task) = toy_task();
    let fairgen = FairGen::new(small_config());
    let reference_pool = ThreadPool::new(1);
    let reference = fairgen
        .train_observed_with_pool(&g, &task, 7, &mut NullObserver, &reference_pool)
        .expect("train");
    let ref_graph = reference.generate_with_pool(1, &reference_pool).expect("generate");
    let ref_history: Vec<(usize, u64, usize)> = reference
        .history
        .iter()
        .map(|c| (c.cycle, c.lambda.to_bits(), c.pseudo_labels))
        .collect();
    let ref_objective: Vec<u64> = reference
        .history
        .iter()
        .flat_map(|c| {
            [
                c.objective.j_g.to_bits(),
                c.objective.j_p.to_bits(),
                c.objective.j_f.to_bits(),
                c.objective.j_l.to_bits(),
                c.objective.j_s.to_bits(),
            ]
        })
        .collect();

    for width in WIDTHS {
        let pool = ThreadPool::new(width);
        let trained = fairgen
            .train_observed_with_pool(&g, &task, 7, &mut NullObserver, &pool)
            .expect("train");
        let history: Vec<(usize, u64, usize)> = trained
            .history
            .iter()
            .map(|c| (c.cycle, c.lambda.to_bits(), c.pseudo_labels))
            .collect();
        assert_eq!(history, ref_history, "history diverged at width {width}");
        let objective: Vec<u64> = trained
            .history
            .iter()
            .flat_map(|c| {
                [
                    c.objective.j_g.to_bits(),
                    c.objective.j_p.to_bits(),
                    c.objective.j_f.to_bits(),
                    c.objective.j_l.to_bits(),
                    c.objective.j_s.to_bits(),
                ]
            })
            .collect();
        assert_eq!(objective, ref_objective, "objective bits diverged at width {width}");
        let out = trained.generate_with_pool(1, &pool).expect("generate");
        assert_eq!(out, ref_graph, "generated graph diverged at width {width}");
    }
}

#[test]
fn generation_is_bit_identical_across_pool_widths() {
    let (g, task) = toy_task();
    let trained = FairGen::new(small_config()).train(&g, &task, 11).expect("train");
    for seed in [0u64, 1, 42] {
        let reference = trained.generate_with_pool(seed, &ThreadPool::new(1)).expect("seq");
        for width in WIDTHS {
            let pool = ThreadPool::new(width);
            let out = trained.generate_with_pool(seed, &pool).expect("par");
            assert_eq!(out, reference, "seed {seed} diverged at width {width}");
        }
    }
}

#[test]
fn cross_seed_batch_generation_matches_the_sequential_per_seed_loop() {
    // The cross-seed `par_map` fan-out in `generate_batch_with_pool`: one
    // worker per seed, each sampling against an inline width-1 pool, must
    // be bit-identical to the plain sequential per-seed loop at every
    // outer width — including a repeated seed, which must reproduce.
    let (g, task) = toy_task();
    let trained = FairGen::new(small_config()).train(&g, &task, 11).expect("train");
    let seeds = [0u64, 1, 42, 7, 7];
    let seq_pool = ThreadPool::new(1);
    let reference: Vec<_> =
        seeds.iter().map(|&s| trained.generate_with_pool(s, &seq_pool).expect("seq")).collect();
    assert_eq!(reference[3], reference[4], "same seed must reproduce");
    for width in WIDTHS {
        let pool = ThreadPool::new(width);
        let out = trained.generate_batch_with_pool(&seeds, &pool).expect("batch");
        assert_eq!(out, reference, "cross-seed batch diverged at width {width}");
    }
    // The global-pool convenience path agrees as well.
    assert_eq!(trained.generate_batch(&seeds).expect("global"), reference);
}

#[test]
fn predicted_labels_are_width_independent() {
    let (g, task) = toy_task();
    let trained = FairGen::new(small_config()).train(&g, &task, 3).expect("train");
    // `predict_log_probs` routes through the global pool; comparing against
    // a second call (and the argmax labels) guards the row-chunked path's
    // determinism end to end.
    let a = trained.predict_log_probs();
    let b = trained.predict_log_probs();
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(a.get(r, c).to_bits(), b.get(r, c).to_bits());
        }
    }
    assert_eq!(trained.predict_labels().len(), g.n());
}
