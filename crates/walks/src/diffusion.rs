//! Diffusion cores (Definition 1) and the Lemma 2.1 containment bound.

use fairgen_graph::{conductance, Graph, NodeId, NodeSet, TransitionOp};
use rand::Rng;

/// The `(δ, t)`-diffusion core of `S` (Definition 1):
/// `C_S = { x ∈ S | 1 − χ_Sᵀ M^t χ_x < δ·φ(S) }`,
/// i.e. the members of `S` whose `t`-step lazy-walk escape probability is
/// below `δ` times the conductance of `S`.
pub fn diffusion_core(g: &Graph, s: &NodeSet, delta: f64, t: usize) -> NodeSet {
    assert!((0.0..1.0).contains(&delta) || delta > 0.0, "delta must be positive");
    let op = TransitionOp::new(g);
    let phi = conductance(g, s);
    let threshold = delta * phi;
    let members: Vec<NodeId> = s
        .members()
        .iter()
        .copied()
        .filter(|&x| op.escape_probability(x, s, t) < threshold)
        .collect();
    NodeSet::from_members(g.n(), &members)
}

/// The Lemma 2.1 lower bound on the probability that a `T`-length walk from
/// a diffusion-core seed stays entirely inside `S`: `1 − T·δ·φ(S)`
/// (clamped at 0).
pub fn lemma21_bound(g: &Graph, s: &NodeSet, delta: f64, t: usize) -> f64 {
    (1.0 - t as f64 * delta * conductance(g, s)).max(0.0)
}

/// Monte-Carlo estimate of the probability that a `t`-step *lazy* random walk
/// started at `start` never leaves `S`. The lazy walk matches the operator
/// `M = (AD⁻¹ + I)/2`: at each step it stays put with probability ½ and
/// otherwise moves to a uniform neighbor.
pub fn monte_carlo_containment<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    s: &NodeSet,
    t: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "trials must be positive");
    let mut contained = 0usize;
    'trial: for _ in 0..trials {
        let mut cur = start;
        for _ in 0..t {
            if rng.gen::<f64>() < 0.5 {
                continue; // lazy self-loop
            }
            let nb = g.neighbors(cur);
            if nb.is_empty() {
                continue;
            }
            cur = nb[rng.gen_range(0..nb.len())];
            if !s.contains(cur) {
                continue 'trial;
            }
        }
        contained += 1;
    }
    contained as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two dense cliques of size 5 joined by a single bridge.
    fn two_cliques() -> (Graph, NodeSet) {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((4, 5));
        let g = Graph::from_edges(10, &edges);
        let s = NodeSet::from_members(10, &[0, 1, 2, 3, 4]);
        (g, s)
    }

    #[test]
    fn core_is_subset_of_s() {
        let (g, s) = two_cliques();
        let core = diffusion_core(&g, &s, 0.9, 3);
        for &v in core.members() {
            assert!(s.contains(v));
        }
    }

    #[test]
    fn interior_nodes_in_core_boundary_excluded() {
        let (g, s) = two_cliques();
        // φ(S) = 1/21; with t=2 the boundary node 4 escapes with probability
        // ≈ ¼·(1/5)·stuff ≫ interior nodes. Choose δ so interior passes.
        let op = fairgen_graph::TransitionOp::new(&g);
        let esc_interior = op.escape_probability(0, &s, 2);
        let esc_boundary = op.escape_probability(4, &s, 2);
        assert!(esc_boundary > esc_interior);
        let phi = fairgen_graph::conductance(&g, &s);
        // Pick delta between the two escape levels (relative to phi).
        let delta = (esc_interior + esc_boundary) / 2.0 / phi;
        let core = diffusion_core(&g, &s, delta, 2);
        assert!(core.contains(0), "interior clique node should be in the core");
        assert!(!core.contains(4), "bridge endpoint should be excluded");
    }

    #[test]
    fn lemma21_holds_for_core_members() {
        // The actual statement: for x ∈ C_S, a T-length walk stays inside S
        // with probability ≥ 1 − T·δ·φ(S). Verify with the exact operator.
        let (g, s) = two_cliques();
        let delta = 0.9;
        for t in [2usize, 4, 6] {
            let core = diffusion_core(&g, &s, delta, t);
            let op = fairgen_graph::TransitionOp::new(&g);
            let bound = lemma21_bound(&g, &s, delta, t);
            for &x in core.members() {
                let contained = op.containment_probability(x, &s, t);
                assert!(
                    contained >= bound - 1e-9,
                    "x={x} t={t}: containment {contained} < bound {bound}"
                );
            }
        }
    }

    #[test]
    fn monte_carlo_close_to_exact() {
        let (g, s) = two_cliques();
        let op = fairgen_graph::TransitionOp::new(&g);
        let exact = op.containment_probability(0, &s, 4);
        let mc = monte_carlo_containment(&g, 0, &s, 4, 20_000, &mut StdRng::seed_from_u64(1));
        assert!((mc - exact).abs() < 0.02, "mc={mc}, exact={exact}");
    }

    #[test]
    fn bound_clamps_at_zero() {
        let (g, s) = two_cliques();
        assert_eq!(lemma21_bound(&g, &s, 100.0, 100), 0.0);
    }

    #[test]
    fn full_set_core_is_everything_with_positive_phi_zero() {
        // φ(V) = 0 so the threshold is 0 and no strict inequality holds:
        // the core of the full set is empty. Documented edge case.
        let (g, _) = two_cliques();
        let core = diffusion_core(&g, &NodeSet::full(10), 0.5, 3);
        assert!(core.is_empty());
    }
}
