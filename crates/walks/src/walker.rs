//! First-order random walks.

use fairgen_graph::{Graph, NodeId, NodeSet};
use rand::Rng;

/// A random-walk sequence `w = {x_1, …, x_T}` of incident nodes.
pub type Walk = Vec<NodeId>;

/// Samples a `T`-node first-order random walk starting at `start`.
///
/// At each step a uniform neighbor is chosen. If the walk reaches a node
/// with no neighbors it stays there (only possible when `start` itself is
/// isolated, since simple graphs have symmetric adjacency).
pub fn random_walk<R: Rng + ?Sized>(g: &Graph, start: NodeId, len: usize, rng: &mut R) -> Walk {
    let mut walk = Vec::with_capacity(len);
    let mut cur = start;
    walk.push(cur);
    for _ in 1..len {
        let nb = g.neighbors(cur);
        if nb.is_empty() {
            walk.push(cur);
            continue;
        }
        cur = nb[rng.gen_range(0..nb.len())];
        walk.push(cur);
    }
    walk
}

/// Samples a `T`-node walk that prefers to stay inside `confine`.
///
/// At each step the walk chooses uniformly among neighbors inside the set;
/// only when the current node has *no* neighbor inside the set does it fall
/// back to a uniform unrestricted step. This implements the label-guided
/// branch of f_S (Fig. 3: red walks traversing within the subgraph `S`).
pub fn random_walk_confined<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    confine: &NodeSet,
    rng: &mut R,
) -> Walk {
    let mut walk = Vec::with_capacity(len);
    let mut cur = start;
    walk.push(cur);
    let mut inside_buf: Vec<NodeId> = Vec::new();
    for _ in 1..len {
        let nb = g.neighbors(cur);
        if nb.is_empty() {
            walk.push(cur);
            continue;
        }
        inside_buf.clear();
        inside_buf.extend(nb.iter().copied().filter(|&v| confine.contains(v)));
        cur = if inside_buf.is_empty() {
            nb[rng.gen_range(0..nb.len())]
        } else {
            inside_buf[rng.gen_range(0..inside_buf.len())]
        };
        walk.push(cur);
    }
    walk
}

/// Checks that every consecutive pair of a walk is an edge of `g`
/// (or a repeated isolated node). Used pervasively by tests.
pub fn is_valid_walk(g: &Graph, walk: &[NodeId]) -> bool {
    walk.windows(2).all(|w| {
        let (u, v) = (w[0], w[1]);
        g.has_edge(u, v) || (u == v && g.degree(u) == 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn barbell() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn walk_has_requested_length() {
        let g = barbell();
        let w = random_walk(&g, 0, 10, &mut rng());
        assert_eq!(w.len(), 10);
        assert_eq!(w[0], 0);
    }

    #[test]
    fn walk_follows_edges() {
        let g = barbell();
        let mut r = rng();
        for _ in 0..50 {
            let w = random_walk(&g, 1, 12, &mut r);
            assert!(is_valid_walk(&g, &w));
        }
    }

    #[test]
    fn isolated_start_stays_put() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let w = random_walk(&g, 2, 5, &mut rng());
        assert_eq!(w, vec![2, 2, 2, 2, 2]);
    }

    #[test]
    fn confined_walk_stays_inside_closed_set() {
        let g = barbell();
        let s = NodeSet::from_members(6, &[0, 1, 2]);
        let mut r = rng();
        for _ in 0..50 {
            let w = random_walk_confined(&g, 0, 20, &s, &mut r);
            // {0,1,2} is a triangle: every node always has an inside neighbor,
            // so the walk can never leave.
            assert!(w.iter().all(|&v| s.contains(v)), "walk left the set: {w:?}");
            assert!(is_valid_walk(&g, &w));
        }
    }

    #[test]
    fn confined_walk_escapes_when_stuck() {
        // Star: confine = {0, 1}; from 1 the only inside neighbor is 0; from 0
        // inside neighbor is 1 → never stuck. Now confine = {1}: from 1 the
        // only neighbors are outside → must fall back to hub 0.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let s = NodeSet::from_members(4, &[1]);
        let w = random_walk_confined(&g, 1, 3, &s, &mut rng());
        assert_eq!(w[1], 0, "must fall back to an unrestricted step");
        assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = barbell();
        let w1 = random_walk(&g, 0, 15, &mut StdRng::seed_from_u64(7));
        let w2 = random_walk(&g, 0, 15, &mut StdRng::seed_from_u64(7));
        assert_eq!(w1, w2);
    }
}
