//! Negative-walk sampling (Algorithm 1, steps 2 and 6).
//!
//! The generator is trained contrastively: positive walks come from `f_S`,
//! negative walks are implausible sequences the generator must learn to
//! assign low likelihood. Before the generator exists (step 2) negatives are
//! uniform random node sequences; in later cycles they also include
//! corrupted real walks and the generator's own stale samples.

use fairgen_graph::{Graph, NodeId};
use rand::Rng;

use crate::walker::Walk;

/// `k` uniform random node sequences of length `len` over `n` nodes.
/// These almost never follow edges in a sparse graph and serve as the
/// initial negative pool `N⁻`.
pub fn random_sequences<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    len: usize,
    rng: &mut R,
) -> Vec<Walk> {
    assert!(n > 0, "need at least one node");
    (0..k).map(|_| (0..len).map(|_| rng.gen_range(0..n as NodeId)).collect()).collect()
}

/// Corrupts each input walk by replacing `corruptions` random positions with
/// uniform random nodes — harder negatives that are mostly edge-consistent.
pub fn corrupted_walks<R: Rng + ?Sized>(
    g: &Graph,
    walks: &[Walk],
    corruptions: usize,
    rng: &mut R,
) -> Vec<Walk> {
    assert!(g.n() > 0, "need at least one node");
    walks
        .iter()
        .map(|w| {
            let mut c = w.clone();
            for _ in 0..corruptions.min(c.len()) {
                let pos = rng.gen_range(0..c.len());
                c[pos] = rng.gen_range(0..g.n() as NodeId);
            }
            c
        })
        .collect()
}

/// Fraction of consecutive pairs across a walk corpus that are real edges of
/// `g` — a cheap plausibility score used in tests and diagnostics.
pub fn edge_consistency(g: &Graph, walks: &[Walk]) -> f64 {
    let mut good = 0usize;
    let mut total = 0usize;
    for w in walks {
        for pair in w.windows(2) {
            total += 1;
            if g.has_edge(pair[0], pair[1]) {
                good += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        good as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node2vec::Node2VecWalker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn random_sequences_shape() {
        let seqs = random_sequences(50, 20, 8, &mut StdRng::seed_from_u64(1));
        assert_eq!(seqs.len(), 20);
        assert!(seqs.iter().all(|w| w.len() == 8));
        assert!(seqs.iter().flatten().all(|&v| v < 50));
    }

    #[test]
    fn random_sequences_rarely_follow_sparse_edges() {
        let g = ring(100);
        let seqs = random_sequences(100, 50, 10, &mut StdRng::seed_from_u64(2));
        // A ring on 100 nodes has edge density ~2%; random pairs match rarely.
        assert!(edge_consistency(&g, &seqs) < 0.2);
    }

    #[test]
    fn real_walks_fully_consistent() {
        let g = ring(20);
        let walker = Node2VecWalker::default();
        let mut rng = StdRng::seed_from_u64(3);
        let walks = walker.walk_corpus(&g, 30, 8, &mut rng);
        assert_eq!(edge_consistency(&g, &walks), 1.0);
    }

    #[test]
    fn corruption_reduces_consistency() {
        let g = ring(50);
        let walker = Node2VecWalker::default();
        let mut rng = StdRng::seed_from_u64(4);
        let walks = walker.walk_corpus(&g, 40, 10, &mut rng);
        let corrupted = corrupted_walks(&g, &walks, 3, &mut rng);
        assert_eq!(corrupted.len(), walks.len());
        assert!(edge_consistency(&g, &corrupted) < 1.0);
        assert!(
            edge_consistency(&g, &corrupted)
                > edge_consistency(&g, &random_sequences(50, 40, 10, &mut rng))
        );
    }

    #[test]
    fn edge_consistency_empty() {
        let g = ring(5);
        assert_eq!(edge_consistency(&g, &[]), 0.0);
    }
}
