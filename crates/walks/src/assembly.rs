//! Fair graph assembly from generated walks (Section II-D).
//!
//! The trained generator emits synthetic walks; every traversed pair is an
//! edge observation accumulated in a score matrix `B`. Thresholding `B`
//! naively leaves out low-degree and protected-group nodes, so assembly
//! enforces the paper's criteria, in priority order:
//!
//! 1. the protected group's volume (edges incident to `S⁺`) in the output is
//!    at least a caller-provided target (its volume in the input graph);
//! 2. every node has at least one incident edge;
//! 3. the output has the same number of edges as the input (filled by the
//!    highest-scoring remaining candidates).

use std::collections::HashMap;

use fairgen_graph::{Graph, GraphBuilder, NodeId, NodeSet};
use rand::Rng;

use crate::walker::Walk;

/// Sparse symmetric edge-score accumulator `B ∈ R^{n×n}`.
#[derive(Clone, Debug)]
pub struct ScoreMatrix {
    n: usize,
    counts: HashMap<u64, f64>,
}

#[inline]
fn key(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

#[inline]
fn unkey(k: u64) -> (NodeId, NodeId) {
    ((k >> 32) as NodeId, (k & 0xffff_ffff) as NodeId)
}

impl ScoreMatrix {
    /// An empty score matrix over `n` nodes.
    pub fn new(n: usize) -> Self {
        ScoreMatrix { n, counts: HashMap::new() }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct candidate edges observed.
    pub fn num_candidates(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation for edge `{u, v}`. Self-pairs are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!((u as usize) < self.n && (v as usize) < self.n, "node out of range");
        if u == v {
            return;
        }
        *self.counts.entry(key(u, v)).or_insert(0.0) += weight;
    }

    /// Accumulates every consecutive pair of `walk`.
    pub fn add_walk(&mut self, walk: &Walk) {
        for pair in walk.windows(2) {
            self.add_edge(pair[0], pair[1], 1.0);
        }
    }

    /// Accumulates a corpus of walks.
    pub fn add_walks(&mut self, walks: &[Walk]) {
        for w in walks {
            self.add_walk(w);
        }
    }

    /// Accumulates every consecutive pair of a token-id walk (the `usize`
    /// sequences the language models emit), saving the caller the
    /// `Vec<usize> → Walk` conversion on the per-draw hot path.
    pub fn add_token_walk(&mut self, seq: &[usize]) {
        for pair in seq.windows(2) {
            self.add_edge(pair[0] as NodeId, pair[1] as NodeId, 1.0);
        }
    }

    /// Merges another score matrix (over the same `n`) into this one.
    ///
    /// # Panics
    ///
    /// Panics on mismatched node counts.
    pub fn merge(&mut self, other: &ScoreMatrix) {
        assert_eq!(self.n, other.n, "merging score matrices over different node counts");
        for (&k, &w) in &other.counts {
            *self.counts.entry(k).or_insert(0.0) += w;
        }
    }

    /// Builds the score matrix of a token-walk corpus across `pool`:
    /// fixed-size chunks of walks are counted into per-worker partial
    /// matrices and merged in chunk order.
    ///
    /// The result is **bit-identical to the sequential
    /// [`ScoreMatrix::add_token_walk`] loop for any worker count**: the
    /// chunk grid is independent of the pool width, each chunk's partial is
    /// deterministic, and walk observations carry unit weight, so every
    /// per-pair total is an exactly-representable small integer whose sum
    /// is association-free. Asserted at widths {1, 2, 8} in
    /// `tests/parallel_parity.rs`.
    pub fn from_token_walks(
        pool: &fairgen_par::ThreadPool,
        n: usize,
        walks: &[Vec<usize>],
    ) -> ScoreMatrix {
        /// Walks per parallel task — enough to amortize the per-task map
        /// allocation, small enough to steal well.
        const CHUNK: usize = 64;
        if pool.threads() == 1 || walks.len() <= CHUNK {
            let mut scores = ScoreMatrix::new(n);
            for w in walks {
                scores.add_token_walk(w);
            }
            return scores;
        }
        let chunks = walks.len().div_ceil(CHUNK);
        let partials = pool.par_map(chunks, |c| {
            let mut partial = ScoreMatrix::new(n);
            for w in &walks[c * CHUNK..((c + 1) * CHUNK).min(walks.len())] {
                partial.add_token_walk(w);
            }
            partial
        });
        let mut scores = ScoreMatrix::new(n);
        for partial in &partials {
            scores.merge(partial);
        }
        scores
    }

    /// The score of edge `{u, v}`.
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        self.counts.get(&key(u, v)).copied().unwrap_or(0.0)
    }

    /// Candidate edges sorted by descending score (ties broken by edge id
    /// for determinism).
    fn ranked_candidates(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut cands: Vec<(u64, f64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        cands.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("scores are finite").then(a.0.cmp(&b.0))
        });
        cands
            .into_iter()
            .map(|(k, c)| {
                let (u, v) = unkey(k);
                (u, v, c)
            })
            .collect()
    }

    /// Assembles a graph with (up to) `target_m` edges using only criteria
    /// (2) and (3): min-degree 1 and edge-count matching.
    pub fn assemble<R: Rng + ?Sized>(&self, target_m: usize, rng: &mut R) -> Graph {
        self.assemble_impl(target_m, None, rng)
    }

    /// Assembles a graph enforcing all three fairness-aware criteria.
    /// `target_protected_incident` is the desired number of output edges with
    /// at least one endpoint in `protected` (use the input graph's count).
    pub fn assemble_fair<R: Rng + ?Sized>(
        &self,
        target_m: usize,
        protected: &NodeSet,
        target_protected_incident: usize,
        rng: &mut R,
    ) -> Graph {
        self.assemble_impl(target_m, Some((protected, target_protected_incident)), rng)
    }

    /// Checkpoint decode guard: rejects keys naming nodes outside `0..n`.
    fn validate_key(n: usize, k: u64) -> bool {
        let (u, v) = unkey(k);
        (u as usize) < n && (v as usize) < n && u < v
    }

    fn assemble_impl<R: Rng + ?Sized>(
        &self,
        target_m: usize,
        fair: Option<(&NodeSet, usize)>,
        rng: &mut R,
    ) -> Graph {
        let ranked = self.ranked_candidates();
        let mut selected: HashMap<u64, ()> = HashMap::with_capacity(target_m);
        let mut degree = vec![0usize; self.n];
        let mut protected_incident = 0usize;
        let select = |u: NodeId,
                      v: NodeId,
                      selected: &mut HashMap<u64, ()>,
                      degree: &mut [usize],
                      protected_incident: &mut usize|
         -> bool {
            let k = key(u, v);
            if selected.contains_key(&k) {
                return false;
            }
            selected.insert(k, ());
            degree[u as usize] += 1;
            degree[v as usize] += 1;
            if let Some((s, _)) = fair {
                if s.contains(u) || s.contains(v) {
                    *protected_incident += 1;
                }
            }
            true
        };

        // Phase A — protected-volume quota (criterion 1).
        if let Some((s, quota)) = fair {
            for &(u, v, _) in &ranked {
                if protected_incident >= quota || selected.len() >= target_m {
                    break;
                }
                if s.contains(u) || s.contains(v) {
                    select(u, v, &mut selected, &mut degree, &mut protected_incident);
                }
            }
        }

        // Phase B — minimum degree 1 (criterion 2): give every degree-0 node
        // its best-scoring candidate, or a random partner if it never
        // co-occurred in any walk.
        // `ranked` is sorted by descending score, so the first candidate seen
        // for a node is its best-scoring partner.
        let mut best_for: Vec<Option<NodeId>> = vec![None; self.n];
        for &(u, v, _) in &ranked {
            for (a, b) in [(u, v), (v, u)] {
                let slot = &mut best_for[a as usize];
                if slot.is_none() {
                    *slot = Some(b);
                }
            }
        }
        for node in 0..self.n as NodeId {
            if degree[node as usize] > 0 {
                continue;
            }
            let partner = match best_for[node as usize] {
                Some(p) => p,
                None => {
                    if self.n < 2 {
                        continue;
                    }
                    // Never observed: attach to a random other node.
                    let mut p = rng.gen_range(0..self.n as NodeId);
                    while p == node {
                        p = rng.gen_range(0..self.n as NodeId);
                    }
                    p
                }
            };
            select(node, partner, &mut selected, &mut degree, &mut protected_incident);
        }

        // Phase C — fill to target_m with the best remaining candidates
        // (criterion 3). The protected-incident count is *softly capped* at
        // 110% of the quota so that criterion 1 means "similar volume", not
        // "as much volume as the generator's (possibly over-concentrated)
        // samples would give": without the cap, a generator that over-weights
        // the minority context assembles a near-clique on S⁺ and inflates
        // its triangle count and degrees far beyond the original.
        let cap = fair.map(|(_, quota)| quota + quota / 10 + 1);
        for &(u, v, _) in &ranked {
            if selected.len() >= target_m {
                break;
            }
            if let (Some((s, _)), Some(cap)) = (fair, cap) {
                if protected_incident >= cap && (s.contains(u) || s.contains(v)) {
                    continue;
                }
            }
            select(u, v, &mut selected, &mut degree, &mut protected_incident);
        }

        // If candidates ran out (generator produced too few distinct pairs),
        // top up with random edges so the edge count still matches.
        let mut guard = 0usize;
        let max_possible = self.n * (self.n.saturating_sub(1)) / 2;
        while selected.len() < target_m.min(max_possible) && guard < 100 * target_m {
            guard += 1;
            let u = rng.gen_range(0..self.n as NodeId);
            let v = rng.gen_range(0..self.n as NodeId);
            if u != v {
                select(u, v, &mut selected, &mut degree, &mut protected_incident);
            }
        }

        let mut builder = GraphBuilder::with_capacity(self.n, selected.len());
        builder.ensure_nodes(self.n);
        for &k in selected.keys() {
            let (u, v) = unkey(k);
            builder.add_edge(u, v);
        }
        builder.build()
    }
}

impl fairgen_graph::Codec for ScoreMatrix {
    /// Entries are written in ascending key order so equal matrices encode
    /// to equal bytes regardless of `HashMap` iteration order.
    fn encode(&self, enc: &mut fairgen_graph::Encoder) {
        enc.put_usize(self.n);
        let mut keys: Vec<u64> = self.counts.keys().copied().collect();
        keys.sort_unstable();
        enc.put_usize(keys.len());
        for k in keys {
            enc.put_u64(k);
            enc.put_f64(self.counts[&k]);
        }
    }

    fn decode(dec: &mut fairgen_graph::Decoder) -> fairgen_graph::Result<Self> {
        let n = dec.take_usize()?;
        let len = dec.take_len(16)?;
        let mut counts = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = dec.take_u64()?;
            let w = dec.take_f64()?;
            if !Self::validate_key(n, k) {
                let (u, v) = unkey(k);
                return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                    detail: format!("score entry ({u}, {v}) invalid for {n} nodes"),
                });
            }
            if counts.insert(k, w).is_some() {
                let (u, v) = unkey(k);
                return Err(fairgen_graph::FairGenError::CorruptCheckpoint {
                    detail: format!("duplicate score entry ({u}, {v})"),
                });
            }
        }
        Ok(ScoreMatrix { n, counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn add_walk_counts_pairs() {
        let mut b = ScoreMatrix::new(5);
        b.add_walk(&vec![0, 1, 2, 1]);
        assert_eq!(b.score(0, 1), 1.0);
        assert_eq!(b.score(1, 2), 2.0); // 1→2 and 2→1
        assert_eq!(b.score(2, 0), 0.0);
        assert_eq!(b.num_candidates(), 2);
    }

    #[test]
    fn self_pairs_ignored() {
        let mut b = ScoreMatrix::new(3);
        b.add_walk(&vec![1, 1, 1]);
        assert_eq!(b.num_candidates(), 0);
    }

    #[test]
    fn symmetric_scores() {
        let mut b = ScoreMatrix::new(4);
        b.add_edge(2, 3, 1.5);
        assert_eq!(b.score(3, 2), 1.5);
    }

    #[test]
    fn assemble_exact_edge_count() {
        let mut b = ScoreMatrix::new(6);
        for w in [vec![0u32, 1, 2, 3], vec![1, 2, 3, 4], vec![2, 3, 4, 5], vec![0, 2, 4, 1]] {
            b.add_walk(&w);
        }
        let g = b.assemble(5, &mut rng());
        assert_eq!(g.m(), 5);
    }

    #[test]
    fn assemble_min_degree_one() {
        let mut b = ScoreMatrix::new(8);
        // Only nodes 0..4 appear in walks; 4..8 are never observed.
        b.add_walk(&vec![0, 1, 2, 3, 0, 1]);
        let g = b.assemble(8, &mut rng());
        assert!(g.min_degree() >= 1, "degrees: {:?}", g.degrees());
    }

    #[test]
    fn assemble_prefers_high_scores() {
        let mut b = ScoreMatrix::new(4);
        b.add_edge(0, 1, 10.0);
        b.add_edge(1, 2, 5.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(0, 3, 0.5);
        let g = b.assemble(2, &mut rng());
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        // m may exceed 2 because min-degree rescue adds edges for 3.
        assert!(g.m() >= 2);
    }

    #[test]
    fn fair_assembly_meets_protected_quota() {
        let n = 10;
        let mut b = ScoreMatrix::new(n);
        // Unprotected block 0..6 heavily observed; protected block 6..10
        // weakly observed (mirroring representation disparity).
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_edge(i, j, 100.0);
            }
        }
        b.add_edge(6, 7, 1.0);
        b.add_edge(7, 8, 1.0);
        b.add_edge(8, 9, 1.0);
        b.add_edge(6, 9, 1.0);
        let protected = NodeSet::from_members(n, &[6, 7, 8, 9]);
        let quota = 4;
        let g = b.assemble_fair(12, &protected, quota, &mut rng());
        let incident = g
            .edge_list()
            .iter()
            .filter(|&&(u, v)| protected.contains(u) || protected.contains(v))
            .count();
        assert!(incident >= quota, "only {incident} protected-incident edges");
        assert!(g.min_degree() >= 1);
    }

    #[test]
    fn unfair_assembly_starves_protected_group() {
        // Same setup as above but without the quota: with only 6 edge slots,
        // thresholding picks only the heavy unprotected candidates, except for
        // the min-degree rescue.
        let n = 10;
        let mut b = ScoreMatrix::new(n);
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_edge(i, j, 100.0);
            }
        }
        b.add_edge(6, 7, 1.0);
        b.add_edge(7, 8, 1.0);
        b.add_edge(8, 9, 1.0);
        b.add_edge(6, 9, 1.0);
        let protected = NodeSet::from_members(n, &[6, 7, 8, 9]);
        let plain = b.assemble(6, &mut rng());
        let fair = b.assemble_fair(6, &protected, 4, &mut rng());
        let count = |g: &Graph| {
            g.edge_list()
                .iter()
                .filter(|&&(u, v)| protected.contains(u) || protected.contains(v))
                .count()
        };
        assert!(count(&fair) >= count(&plain));
        assert!(count(&fair) >= 4);
    }

    #[test]
    fn assemble_caps_at_complete_graph() {
        let mut b = ScoreMatrix::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.assemble(10, &mut rng());
        assert_eq!(g.m(), 3); // K3 maximum
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = ScoreMatrix::new(20);
        for i in 0..19u32 {
            b.add_edge(i, i + 1, (i % 5) as f64 + 1.0);
        }
        let g1 = b.assemble(15, &mut StdRng::seed_from_u64(5));
        let g2 = b.assemble(15, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut b = ScoreMatrix::new(2);
        b.add_edge(0, 5, 1.0);
    }
}
