//! The label-informed context sampling strategy `f_S(·)` (Section II-B, M1).
//!
//! With probability `r` the sampler emits a structural node2vec walk from a
//! uniformly random non-isolated start node — this encodes the general
//! structure distribution (minimizing `R(θ)` of Eq. 1). With probability
//! `1 − r` it emits a label-guided walk: a seed node is drawn from one of the
//! registered [`ContextEntry`]s and the walk is confined to that entry's
//! support subgraph `S` — this encodes group/class context (minimizing
//! `R_{S}(θ)` of Eq. 2 for each group). Entries are drawn proportionally to
//! their weight, which is how `fairgen-core` balances the protected and
//! unprotected groups.

use fairgen_graph::{Graph, NodeId, NodeSet};
use rand::Rng;

use crate::node2vec::Node2VecWalker;
use crate::walker::{random_walk_confined, Walk};

/// One label-informed sampling context: seeds (labeled or pseudo-labeled
/// vertices of one class/group) and the support subgraph they live in.
#[derive(Clone, Debug)]
pub struct ContextEntry {
    /// Seed vertices the guided walks start from (ideally inside the
    /// diffusion core `C_S` of the support — see Lemma 2.1).
    pub seeds: Vec<NodeId>,
    /// The subgraph support `S` the walk should stay inside.
    pub support: NodeSet,
    /// Selection weight relative to the other entries.
    pub weight: f64,
}

/// Configuration of the `f_S` sampler.
#[derive(Clone, Copy, Debug)]
pub struct ContextSamplerConfig {
    /// Walk length `T` (number of nodes per walk). Paper default: 10.
    pub walk_len: usize,
    /// Probability `r` of sampling a structural (unlabeled) walk.
    pub ratio_r: f64,
    /// node2vec return parameter for the structural branch.
    pub p: f64,
    /// node2vec in-out parameter for the structural branch.
    pub q: f64,
}

impl Default for ContextSamplerConfig {
    fn default() -> Self {
        ContextSamplerConfig { walk_len: 10, ratio_r: 0.5, p: 1.0, q: 1.0 }
    }
}

/// The label-informed context sampler `f_S(·)`.
#[derive(Clone, Debug)]
pub struct ContextSampler {
    cfg: ContextSamplerConfig,
    walker: Node2VecWalker,
    entries: Vec<ContextEntry>,
    total_weight: f64,
}

impl ContextSampler {
    /// Creates a sampler; `entries` may be empty, in which case every walk is
    /// structural regardless of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio_r ∉ [0, 1]`, `walk_len == 0`, an entry has
    /// non-positive weight, or an entry has no seeds.
    pub fn new(cfg: ContextSamplerConfig, entries: Vec<ContextEntry>) -> Self {
        assert!((0.0..=1.0).contains(&cfg.ratio_r), "r must be in [0,1]");
        assert!(cfg.walk_len > 0, "walk_len must be positive");
        for e in &entries {
            assert!(e.weight > 0.0, "entry weight must be positive");
            assert!(!e.seeds.is_empty(), "entry must have at least one seed");
        }
        let total_weight = entries.iter().map(|e| e.weight).sum();
        ContextSampler { walker: Node2VecWalker::new(cfg.p, cfg.q), cfg, entries, total_weight }
    }

    /// The configuration.
    pub fn config(&self) -> &ContextSamplerConfig {
        &self.cfg
    }

    /// The registered entries.
    pub fn entries(&self) -> &[ContextEntry] {
        &self.entries
    }

    /// Replaces the label-informed entries (used between self-paced cycles
    /// when pseudo-labels change).
    pub fn set_entries(&mut self, entries: Vec<ContextEntry>) {
        for e in &entries {
            assert!(e.weight > 0.0, "entry weight must be positive");
            assert!(!e.seeds.is_empty(), "entry must have at least one seed");
        }
        self.total_weight = entries.iter().map(|e| e.weight).sum();
        self.entries = entries;
    }

    /// Samples one structural walk (the probability-`r` branch).
    pub fn sample_structural<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Walk {
        let n = g.n() as NodeId;
        debug_assert!(n > 0);
        // Rejection-sample a non-isolated start (falls back after n tries to
        // whatever node was drawn, which then emits a self-repeating walk).
        let mut start = rng.gen_range(0..n);
        for _ in 0..g.n() {
            if g.degree(start) > 0 {
                break;
            }
            start = rng.gen_range(0..n);
        }
        self.walker.walk(g, start, self.cfg.walk_len, rng)
    }

    /// Samples one label-guided walk (the probability-`1−r` branch), or
    /// `None` when no entries are registered.
    pub fn sample_labeled<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Option<Walk> {
        if self.entries.is_empty() {
            return None;
        }
        let mut target = rng.gen_range(0.0..self.total_weight);
        let mut entry = &self.entries[self.entries.len() - 1];
        for e in &self.entries {
            if target < e.weight {
                entry = e;
                break;
            }
            target -= e.weight;
        }
        let seed = entry.seeds[rng.gen_range(0..entry.seeds.len())];
        Some(random_walk_confined(g, seed, self.cfg.walk_len, &entry.support, rng))
    }

    /// Samples one walk via the full `f_S` strategy.
    pub fn sample<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Walk {
        if rng.gen::<f64>() < self.cfg.ratio_r {
            self.sample_structural(g, rng)
        } else {
            self.sample_labeled(g, rng).unwrap_or_else(|| self.sample_structural(g, rng))
        }
    }

    /// Samples `k` walks.
    pub fn sample_corpus<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        k: usize,
        rng: &mut R,
    ) -> Vec<Walk> {
        (0..k).map(|_| self.sample(g, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::is_valid_walk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn entry(n: usize, seeds: &[NodeId], support: &[NodeId], weight: f64) -> ContextEntry {
        ContextEntry {
            seeds: seeds.to_vec(),
            support: NodeSet::from_members(n, support),
            weight,
        }
    }

    #[test]
    fn r_zero_always_label_guided() {
        let g = two_triangles();
        let cfg = ContextSamplerConfig { ratio_r: 0.0, walk_len: 8, ..Default::default() };
        let sampler = ContextSampler::new(cfg, vec![entry(6, &[3], &[3, 4, 5], 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let w = sampler.sample(&g, &mut rng);
            assert!(w.iter().all(|&v| v >= 3), "structural walk leaked through: {w:?}");
            assert!(is_valid_walk(&g, &w));
        }
    }

    #[test]
    fn r_one_always_structural() {
        let g = two_triangles();
        let cfg = ContextSamplerConfig { ratio_r: 1.0, walk_len: 8, ..Default::default() };
        // Entry confined to the second triangle; with r=1 walks may still
        // start anywhere — check that at least one walk visits the first
        // triangle (a confined walk from seed 3 never could).
        let sampler = ContextSampler::new(cfg, vec![entry(6, &[3], &[3, 4, 5], 1.0)]);
        let mut rng = StdRng::seed_from_u64(2);
        let visits_first =
            (0..100).map(|_| sampler.sample(&g, &mut rng)).any(|w| w.iter().any(|&v| v < 3));
        assert!(visits_first);
    }

    #[test]
    fn no_entries_falls_back_to_structural() {
        let g = two_triangles();
        let cfg = ContextSamplerConfig { ratio_r: 0.0, walk_len: 6, ..Default::default() };
        let sampler = ContextSampler::new(cfg, vec![]);
        let w = sampler.sample(&g, &mut StdRng::seed_from_u64(3));
        assert_eq!(w.len(), 6);
        assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn weights_bias_entry_selection() {
        let g = two_triangles();
        let cfg = ContextSamplerConfig { ratio_r: 0.0, walk_len: 4, ..Default::default() };
        let sampler = ContextSampler::new(
            cfg,
            vec![entry(6, &[0], &[0, 1, 2], 9.0), entry(6, &[3], &[3, 4, 5], 1.0)],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut first = 0usize;
        let trials = 500;
        for _ in 0..trials {
            let w = sampler.sample(&g, &mut rng);
            if w[0] == 0 {
                first += 1;
            }
        }
        let frac = first as f64 / trials as f64;
        assert!((0.8..1.0).contains(&frac), "fraction from heavy entry = {frac}");
    }

    #[test]
    fn corpus_has_k_walks_of_len_t() {
        let g = two_triangles();
        let cfg = ContextSamplerConfig { walk_len: 5, ..Default::default() };
        let sampler = ContextSampler::new(cfg, vec![entry(6, &[0], &[0, 1, 2], 1.0)]);
        let corpus = sampler.sample_corpus(&g, 40, &mut StdRng::seed_from_u64(5));
        assert_eq!(corpus.len(), 40);
        assert!(corpus.iter().all(|w| w.len() == 5));
    }

    #[test]
    fn set_entries_swaps_contexts() {
        let g = two_triangles();
        let cfg = ContextSamplerConfig { ratio_r: 0.0, walk_len: 6, ..Default::default() };
        let mut sampler = ContextSampler::new(cfg, vec![entry(6, &[0], &[0, 1, 2], 1.0)]);
        sampler.set_entries(vec![entry(6, &[4], &[3, 4, 5], 1.0)]);
        let w = sampler.sample(&g, &mut StdRng::seed_from_u64(6));
        assert!(w.iter().all(|&v| v >= 3));
    }

    #[test]
    #[should_panic(expected = "r must be in [0,1]")]
    fn invalid_r_panics() {
        let cfg = ContextSamplerConfig { ratio_r: 1.5, ..Default::default() };
        let _ = ContextSampler::new(cfg, vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_entry_panics() {
        let cfg = ContextSamplerConfig::default();
        let _ = ContextSampler::new(cfg, vec![entry(6, &[], &[0], 1.0)]);
    }
}
