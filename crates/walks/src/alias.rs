//! Alias-method sampling (Walker/Vose) — O(1) draws from a fixed discrete
//! distribution.
//!
//! node2vec's reference implementation precomputes per-edge alias tables;
//! this workspace's walkers compute transition weights on the fly (cheaper
//! to set up at our graph scales), but the alias table is provided for the
//! cases where a distribution *is* fixed and sampled many times: degree-
//! proportional start-node selection and negative-sampling tables.

use fairgen_graph::error::{FairGenError, Result};
use rand::Rng;

/// A Vose alias table over `0..n` built from non-negative weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table in O(n).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero. Serving paths should prefer
    /// [`AliasTable::try_new`], which reports the same conditions as a
    /// typed [`FairGenError::DegenerateDistribution`] so a degenerate input
    /// fails the request instead of crashing the process.
    pub fn new(weights: &[f64]) -> Self {
        match Self::try_new(weights) {
            Ok(table) => table,
            // Preserve the historical panic messages for the assert-style
            // contract.
            Err(FairGenError::DegenerateDistribution { detail }) => panic!("{detail}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AliasTable::new`].
    ///
    /// # Errors
    ///
    /// [`FairGenError::DegenerateDistribution`] if `weights` is empty,
    /// contains a negative or non-finite value, or sums to zero.
    pub fn try_new(weights: &[f64]) -> Result<Self> {
        let degenerate = |detail: String| Err(FairGenError::DegenerateDistribution { detail });
        if weights.is_empty() {
            return degenerate("empty weight vector".into());
        }
        let n = weights.len();
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !(w >= 0.0 && w.is_finite()) {
                return degenerate(format!(
                    "weights must be finite and non-negative (weight {i} is {w})"
                ));
            }
            total += w;
        }
        if total <= 0.0 {
            return degenerate(format!("weights must not all be zero ({n} weights)"));
        }
        // Scale to mean 1.
        let scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = scaled;
        let mut alias = vec![0usize; n];
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Builds a degree-proportional alias table for a graph (the standard
/// start-node distribution for walk corpora: isolated nodes get weight
/// zero and are never drawn).
///
/// # Errors
///
/// [`FairGenError::DegenerateDistribution`] when the graph has no vertices
/// or every vertex is isolated — there is no valid start node, so walker
/// start-node selection (and any serve request built on it) fails typed
/// instead of panicking.
pub fn degree_alias_table(g: &fairgen_graph::Graph) -> Result<AliasTable> {
    let weights: Vec<f64> = (0..g.n()).map(|v| g.degree(v as u32) as f64).collect();
    AliasTable::try_new(&weights).map_err(|_| FairGenError::DegenerateDistribution {
        detail: format!(
            "degree-proportional start-node table over a graph with {} vertices and no edges",
            g.n()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.into_iter().map(|c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 5]);
        let freq = empirical(&t, 50_000, 1);
        for f in freq {
            assert!((f - 0.2).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let freq = empirical(&t, 100_000, 2);
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            assert!((freq[i] - expect).abs() < 0.01, "i={i}: {} vs {expect}", freq[i]);
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let freq = empirical(&t, 20_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[7.5]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn degree_table_prefers_hubs() {
        let g = fairgen_graph::Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let t = degree_alias_table(&g).expect("graph has edges");
        let freq = empirical(&t, 50_000, 5);
        assert!((freq[0] - 0.5).abs() < 0.02, "hub share {}", freq[0]);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        for weights in [&[][..], &[0.0, 0.0][..], &[1.0, -0.5][..], &[1.0, f64::NAN][..]] {
            assert!(
                matches!(
                    AliasTable::try_new(weights),
                    Err(fairgen_graph::FairGenError::DegenerateDistribution { .. })
                ),
                "weights {weights:?} must fail typed"
            );
        }
        assert_eq!(AliasTable::try_new(&[2.0, 1.0]).expect("valid").len(), 2);
    }

    #[test]
    fn all_isolated_graph_fails_typed_not_by_panic() {
        for g in [fairgen_graph::Graph::empty(0), fairgen_graph::Graph::empty(6)] {
            let err = degree_alias_table(&g).expect_err("no valid start node");
            assert!(
                matches!(err, fairgen_graph::FairGenError::DegenerateDistribution { .. }),
                "got {err}"
            );
            assert!(err.to_string().contains("start-node"), "got {err}");
        }
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}
