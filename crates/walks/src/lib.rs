//! Random-walk machinery for the FairGen reproduction.
//!
//! This crate implements every walk-related component of the paper:
//!
//! * [`walker`] — plain first-order random walks.
//! * [`node2vec`] — the biased second-order walks of Grover & Leskovec
//!   (reference \[39\] of the paper) with return parameter `p` and in-out
//!   parameter `q`, used by f_S's structural branch.
//! * [`context`] — the label-informed context sampling strategy `f_S(·)` of
//!   Section II-B (M1): with probability `r` a structural node2vec walk,
//!   with probability `1 − r` a label-guided walk that starts at a
//!   (pseudo-)labeled seed and stays inside that seed's group subgraph.
//! * [`diffusion`] — diffusion cores `C_S` (Definition 1) and the
//!   Monte-Carlo verification of Lemma 2.1's containment bound
//!   `1 − T·δ·φ(S)`.
//! * [`negative`] — negative-walk sampling used to train the generator
//!   contrastively (Algorithm 1, steps 2 and 6).
//! * [`assembly`] — the score-matrix graph-assembly procedure of
//!   Section II-D, including the fairness-aware criteria (protected-group
//!   volume preservation and minimum degree 1).

pub mod alias;
pub mod assembly;
pub mod context;
pub mod diffusion;
pub mod negative;
pub mod node2vec;
pub mod walker;

pub use alias::{degree_alias_table, AliasTable};
pub use assembly::ScoreMatrix;
pub use context::{ContextSampler, ContextSamplerConfig};
pub use diffusion::{diffusion_core, lemma21_bound, monte_carlo_containment};
pub use node2vec::Node2VecWalker;
pub use walker::{random_walk, random_walk_confined, Walk};
