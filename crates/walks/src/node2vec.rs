//! Biased second-order random walks (node2vec, reference \[39\]).

use fairgen_graph::error::Result;
use fairgen_graph::{Graph, NodeId};
use rand::Rng;

use crate::alias::degree_alias_table;
use crate::walker::Walk;

/// The biased second-order walker of node2vec.
///
/// Given the previous node `t` and current node `v`, the unnormalized
/// probability of moving to neighbor `x` of `v` is
///
/// * `1/p` if `x = t` (return),
/// * `1`   if `x` is adjacent to `t` (stay close),
/// * `1/q` otherwise (explore outward).
///
/// `p = q = 1` reduces to a uniform first-order walk. Weights are computed
/// on the fly (`O(deg)` per step with binary-search adjacency tests), which
/// at the workspace's graph scales is faster to set up than per-edge alias
/// tables and has no memory footprint.
#[derive(Clone, Debug)]
pub struct Node2VecWalker {
    /// Return parameter `p`.
    pub p: f64,
    /// In-out parameter `q`.
    pub q: f64,
}

impl Default for Node2VecWalker {
    fn default() -> Self {
        Node2VecWalker { p: 1.0, q: 1.0 }
    }
}

impl Node2VecWalker {
    /// Creates a walker with the given bias parameters.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is not strictly positive.
    pub fn new(p: f64, q: f64) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive (got p={p}, q={q})");
        Node2VecWalker { p, q }
    }

    /// Samples a `len`-node second-order walk from `start`.
    pub fn walk<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        start: NodeId,
        len: usize,
        rng: &mut R,
    ) -> Walk {
        let mut walk = Vec::with_capacity(len);
        walk.push(start);
        if len == 1 {
            return walk;
        }
        // First step is uniform.
        let nb = g.neighbors(start);
        if nb.is_empty() {
            walk.resize(len, start);
            return walk;
        }
        let mut prev = start;
        let mut cur = nb[rng.gen_range(0..nb.len())];
        walk.push(cur);
        let mut weights: Vec<f64> = Vec::new();
        while walk.len() < len {
            let nb = g.neighbors(cur);
            if nb.is_empty() {
                walk.push(cur);
                continue;
            }
            weights.clear();
            let mut total = 0.0;
            for &x in nb {
                let w = if x == prev {
                    1.0 / self.p
                } else if g.has_edge(x, prev) {
                    1.0
                } else {
                    1.0 / self.q
                };
                total += w;
                weights.push(w);
            }
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = nb[nb.len() - 1];
            for (i, &w) in weights.iter().enumerate() {
                if target < w {
                    chosen = nb[i];
                    break;
                }
                target -= w;
            }
            prev = cur;
            cur = chosen;
            walk.push(cur);
        }
        walk
    }

    /// Samples `k` walks of length `len` with degree-proportional start
    /// nodes drawn from the [`degree_alias_table`] (the standard
    /// NetGAN/TagGen-style corpus extraction; isolated nodes have weight
    /// zero and are never drawn). Returns an empty corpus when the graph
    /// has no edges — the graceful form of [`Node2VecWalker::try_walk_corpus`].
    pub fn walk_corpus<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        k: usize,
        len: usize,
        rng: &mut R,
    ) -> Vec<Walk> {
        self.try_walk_corpus(g, k, len, rng).unwrap_or_default()
    }

    /// [`Node2VecWalker::walk_corpus`] with the degenerate case surfaced:
    /// start-node selection over an edgeless (all-isolated) graph reports a
    /// typed error, so a serve request over such a graph fails instead of
    /// crashing — or silently producing an empty corpus — deep in the fit
    /// path.
    ///
    /// # Errors
    ///
    /// [`fairgen_graph::FairGenError::DegenerateDistribution`] when the
    /// graph has no valid (non-isolated) start node.
    pub fn try_walk_corpus<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        k: usize,
        len: usize,
        rng: &mut R,
    ) -> Result<Vec<Walk>> {
        let starts = degree_alias_table(g)?;
        Ok((0..k)
            .map(|_| {
                let s = starts.sample(rng) as NodeId;
                self.walk(g, s, len, rng)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::is_valid_walk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lollipop() -> Graph {
        // Triangle 0-1-2 with a path 2-3-4-5 hanging off.
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_p() {
        let _ = Node2VecWalker::new(0.0, 1.0);
    }

    #[test]
    fn walks_follow_edges() {
        let g = lollipop();
        let walker = Node2VecWalker::new(0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let w = walker.walk(&g, 2, 10, &mut rng);
            assert_eq!(w.len(), 10);
            assert!(is_valid_walk(&g, &w));
        }
    }

    #[test]
    fn length_one_walk() {
        let g = lollipop();
        let w = Node2VecWalker::default().walk(&g, 3, 1, &mut StdRng::seed_from_u64(2));
        assert_eq!(w, vec![3]);
    }

    #[test]
    fn isolated_start_repeats() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let w = Node2VecWalker::default().walk(&g, 2, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(w, vec![2, 2, 2, 2]);
    }

    #[test]
    fn low_p_increases_backtracking() {
        // On the path part of the lollipop, p ≪ 1 should backtrack much more
        // often than p ≫ 1.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let count_backtracks = |p: f64, q: f64, seed: u64| {
            let walker = Node2VecWalker::new(p, q);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut backtracks = 0usize;
            for _ in 0..300 {
                let w = walker.walk(&g, 3, 8, &mut rng);
                backtracks += w.windows(3).filter(|t| t[0] == t[2] && t[0] != t[1]).count();
            }
            backtracks
        };
        let low_p = count_backtracks(0.1, 1.0, 11);
        let high_p = count_backtracks(10.0, 1.0, 11);
        assert!(
            low_p > high_p * 2,
            "expected p=0.1 to backtrack much more: {low_p} vs {high_p}"
        );
    }

    #[test]
    fn high_q_stays_local() {
        // q ≫ 1 discourages moving to nodes not adjacent to the previous one,
        // so on the lollipop a walk started in the triangle should leave it
        // less often than with q ≪ 1.
        let g = lollipop();
        let escapes = |q: f64| {
            let walker = Node2VecWalker::new(1.0, q);
            let mut rng = StdRng::seed_from_u64(5);
            let mut out = 0usize;
            for _ in 0..300 {
                let w = walker.walk(&g, 0, 10, &mut rng);
                out += w.iter().filter(|&&v| v > 2).count();
            }
            out
        };
        assert!(escapes(4.0) < escapes(0.25));
    }

    #[test]
    fn corpus_size_and_validity() {
        let g = lollipop();
        let walker = Node2VecWalker::default();
        let mut rng = StdRng::seed_from_u64(9);
        let corpus = walker.walk_corpus(&g, 25, 6, &mut rng);
        assert_eq!(corpus.len(), 25);
        for w in &corpus {
            assert!(is_valid_walk(&g, w));
        }
    }

    #[test]
    fn corpus_empty_graph() {
        let g = Graph::empty(4);
        let corpus =
            Node2VecWalker::default().walk_corpus(&g, 5, 4, &mut StdRng::seed_from_u64(0));
        assert!(corpus.is_empty());
    }

    #[test]
    fn try_corpus_surfaces_the_degenerate_start_distribution() {
        let g = Graph::empty(4);
        let err = Node2VecWalker::default()
            .try_walk_corpus(&g, 5, 4, &mut StdRng::seed_from_u64(0))
            .expect_err("no valid start node");
        assert!(matches!(err, fairgen_graph::FairGenError::DegenerateDistribution { .. }));
    }

    #[test]
    fn corpus_starts_are_degree_proportional() {
        // Star: the hub has degree 4, each leaf degree 1 → the hub starts
        // half of all walks.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut rng = StdRng::seed_from_u64(6);
        let corpus = Node2VecWalker::default().walk_corpus(&g, 4000, 3, &mut rng);
        let hub_starts = corpus.iter().filter(|w| w[0] == 0).count();
        let frac = hub_starts as f64 / corpus.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "hub start fraction {frac}");
        // Isolated nodes never start a walk.
        let g = Graph::from_edges(4, &[(0, 1)]);
        let corpus = Node2VecWalker::default().walk_corpus(&g, 500, 3, &mut rng);
        assert!(corpus.iter().all(|w| w[0] < 2));
    }
}
