//! Parallel score-matrix assembly must be bit-identical to the sequential
//! accumulation loop at every worker count.

use fairgen_graph::codec::{Codec, Encoder};
use fairgen_par::ThreadPool;
use fairgen_walks::ScoreMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonical byte rendering (the codec writes entries in sorted key order),
/// so two matrices are equal iff their encodings are.
fn canonical(scores: &ScoreMatrix) -> Vec<u8> {
    let mut enc = Encoder::new();
    scores.encode(&mut enc);
    enc.into_bytes()
}

fn synthetic_corpus(n: usize, walks: usize, len: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..walks).map(|_| (0..len).map(|_| rng.gen_range(0..n)).collect()).collect()
}

#[test]
fn parallel_assembly_is_bit_identical_at_widths_1_2_8() {
    let n = 60;
    for (walks, len, seed) in [(500, 10, 1u64), (129, 4, 2), (64, 12, 3), (3, 5, 4)] {
        let corpus = synthetic_corpus(n, walks, len, seed);
        let mut sequential = ScoreMatrix::new(n);
        for w in &corpus {
            sequential.add_token_walk(w);
        }
        let reference = canonical(&sequential);
        for width in [1usize, 2, 8] {
            let pool = ThreadPool::new(width);
            let parallel = ScoreMatrix::from_token_walks(&pool, n, &corpus);
            assert_eq!(
                canonical(&parallel),
                reference,
                "corpus ({walks}, {len}, {seed}) diverged at width {width}"
            );
        }
    }
}

#[test]
fn merge_adds_counts_and_respects_n() {
    let mut a = ScoreMatrix::new(5);
    a.add_token_walk(&[0, 1, 2]);
    let mut b = ScoreMatrix::new(5);
    b.add_token_walk(&[1, 2, 3]);
    a.merge(&b);
    assert_eq!(a.score(0, 1), 1.0);
    assert_eq!(a.score(1, 2), 2.0);
    assert_eq!(a.score(2, 3), 1.0);
    assert_eq!(a.num_candidates(), 3);
}

#[test]
#[should_panic(expected = "different node counts")]
fn merge_rejects_mismatched_universes() {
    let mut a = ScoreMatrix::new(5);
    a.merge(&ScoreMatrix::new(6));
}

#[test]
fn assembled_graphs_agree_end_to_end() {
    // The full downstream pipeline (ranked candidates → assembly) sees the
    // same matrix, so assembled graphs agree too.
    let n = 40;
    let corpus = synthetic_corpus(n, 300, 8, 9);
    let mut sequential = ScoreMatrix::new(n);
    for w in &corpus {
        sequential.add_token_walk(w);
    }
    let expected = sequential.assemble(80, &mut StdRng::seed_from_u64(17));
    for width in [2usize, 8] {
        let pool = ThreadPool::new(width);
        let parallel = ScoreMatrix::from_token_walks(&pool, n, &corpus);
        let got = parallel.assemble(80, &mut StdRng::seed_from_u64(17));
        assert_eq!(got, expected, "width {width}");
    }
}
