//! Property-based tests for the walk machinery.

use fairgen_graph::{Graph, NodeSet};
use fairgen_walks::walker::is_valid_walk;
use fairgen_walks::{
    diffusion_core, lemma21_bound, random_walk, random_walk_confined, ContextSampler,
    ContextSamplerConfig, Node2VecWalker, ScoreMatrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected-ish random graph: a ring plus random chords, so every node
/// has degree ≥ 2.
fn arb_ring_plus(max_n: usize, max_extra: usize) -> impl Strategy<Value = Graph> {
    (4..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_extra).prop_map(
            move |extra| {
                let mut edges: Vec<(u32, u32)> =
                    (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
                edges.extend(extra);
                Graph::from_edges(n, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn first_order_walks_valid(g in arb_ring_plus(24, 30), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = random_walk(&g, 0, 12, &mut rng);
        prop_assert_eq!(w.len(), 12);
        prop_assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn node2vec_walks_valid(g in arb_ring_plus(24, 30), seed in any::<u64>(),
                            p in 0.2f64..5.0, q in 0.2f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Node2VecWalker::new(p, q).walk(&g, 1, 10, &mut rng);
        prop_assert_eq!(w.len(), 10);
        prop_assert!(is_valid_walk(&g, &w));
    }

    #[test]
    fn confined_walks_never_leave_closed_ring(n in 6usize..20, seed in any::<u64>()) {
        // The ring restricted to all nodes is trivially closed; restrict to a
        // contiguous arc of length >= 3: interior nodes always have an inside
        // neighbor except at the two boundary nodes, where the walk may leave.
        // Use the full set minus nothing => never leaves.
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        let s = NodeSet::full(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = random_walk_confined(&g, 0, 15, &s, &mut rng);
        prop_assert!(w.iter().all(|&v| s.contains(v)));
    }

    #[test]
    fn fs_sampler_walks_valid(g in arb_ring_plus(20, 20), seed in any::<u64>(), r in 0.0f64..=1.0) {
        let cfg = ContextSamplerConfig { walk_len: 8, ratio_r: r, p: 1.0, q: 1.0 };
        let support: Vec<u32> = (0..g.n() as u32 / 2).collect();
        let sampler = ContextSampler::new(cfg, vec![fairgen_walks::context::ContextEntry {
            seeds: vec![0],
            support: NodeSet::from_members(g.n(), &support),
            weight: 1.0,
        }]);
        let mut rng = StdRng::seed_from_u64(seed);
        for w in sampler.sample_corpus(&g, 5, &mut rng) {
            prop_assert_eq!(w.len(), 8);
            prop_assert!(is_valid_walk(&g, &w));
        }
    }

    #[test]
    fn diffusion_core_subset_and_bound(g in arb_ring_plus(16, 12),
                                       delta in 0.1f64..2.0, t in 1usize..5) {
        let half: Vec<u32> = (0..g.n() as u32 / 2).collect();
        let s = NodeSet::from_members(g.n(), &half);
        let core = diffusion_core(&g, &s, delta, t);
        // Core ⊆ S.
        for &x in core.members() {
            prop_assert!(s.contains(x));
        }
        // Lemma 2.1: exact containment ≥ 1 − tδφ(S) for all core members.
        let op = fairgen_graph::TransitionOp::new(&g);
        let bound = lemma21_bound(&g, &s, delta, t);
        for &x in core.members() {
            let c = op.containment_probability(x, &s, t);
            prop_assert!(c >= bound - 1e-9, "x={} containment={} bound={}", x, c, bound);
        }
    }

    #[test]
    fn assembly_invariants(g in arb_ring_plus(20, 25), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let walker = Node2VecWalker::default();
        let walks = walker.walk_corpus(&g, 60, 8, &mut rng);
        let mut b = ScoreMatrix::new(g.n());
        b.add_walks(&walks);
        let target = g.m();
        let out = b.assemble(target, &mut rng);
        prop_assert_eq!(out.n(), g.n());
        prop_assert!(out.min_degree() >= 1, "degrees {:?}", out.degrees());
        // Edge count: exact unless K_n is smaller than the target.
        let max_m = g.n() * (g.n() - 1) / 2;
        prop_assert!(out.m() >= target.min(max_m), "m={} target={}", out.m(), target);
    }

    #[test]
    fn fair_assembly_quota(g in arb_ring_plus(16, 20), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let walks = Node2VecWalker::default().walk_corpus(&g, 80, 8, &mut rng);
        let mut b = ScoreMatrix::new(g.n());
        b.add_walks(&walks);
        let members: Vec<u32> = (0..g.n() as u32 / 4).collect();
        prop_assume!(!members.is_empty());
        let s = NodeSet::from_members(g.n(), &members);
        // Target: the protected-incident edge count of the original graph.
        let quota = g.edge_list().iter()
            .filter(|&&(u, v)| s.contains(u) || s.contains(v))
            .count();
        let out = b.assemble_fair(g.m(), &s, quota, &mut rng);
        let incident = out.edge_list().iter()
            .filter(|&&(u, v)| s.contains(u) || s.contains(v))
            .count();
        prop_assert!(incident >= quota.min(b.num_candidates()),
            "incident={} quota={}", incident, quota);
    }

    #[test]
    fn alias_table_empirical_frequencies_match_weights(
        raw in proptest::collection::vec(0..100u32, 1..8),
        seed in any::<u64>(),
    ) {
        // At least one strictly positive weight, else the table is
        // (correctly) degenerate — covered by the property below.
        prop_assume!(raw.iter().any(|&w| w > 0));
        let weights: Vec<f64> = raw.iter().map(|&w| w as f64).collect();
        let table = fairgen_walks::AliasTable::try_new(&weights).expect("valid weights");
        prop_assert_eq!(table.len(), weights.len());
        let total: f64 = weights.iter().sum();
        let draws = 60_000usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let expected = w / total;
            let observed = c as f64 / draws as f64;
            prop_assert!(
                (observed - expected).abs() < 0.02,
                "outcome {}: observed {} expected {}", i, observed, expected
            );
        }
    }

    #[test]
    fn alias_table_rejects_degenerate_weights_typed(
        len in 0usize..6,
        poison in 0usize..3,
    ) {
        // All-zero, one-negative, and one-NaN variants must all fail with
        // the typed error, never a panic.
        let mut weights = vec![0.0f64; len];
        match poison {
            1 if len > 0 => weights[len / 2] = -1.0,
            2 if len > 0 => weights[len / 2] = f64::NAN,
            _ => {}
        }
        let result = fairgen_walks::AliasTable::try_new(&weights);
        prop_assert!(matches!(
            result,
            Err(fairgen_graph::FairGenError::DegenerateDistribution { .. })
        ));
    }
}
