//! Property-based tests for the graph substrate.

use fairgen_graph::{
    conductance, connected_components, ego_network, induced_subgraph, num_components, Graph,
    NodeSet, TransitionOp,
};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` nodes.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_is_symmetric(g in arb_graph(24, 80)) {
        for u in 0..g.n() as u32 {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge ({u},{v})");
            }
        }
    }

    #[test]
    fn no_self_loops_no_duplicates(g in arb_graph(24, 80)) {
        for u in 0..g.n() as u32 {
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbor");
            }
            prop_assert!(!nb.contains(&u), "self loop at {u}");
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph(24, 80)) {
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph(24, 80)) {
        let rebuilt = Graph::from_edges(g.n(), &g.edge_list());
        prop_assert_eq!(&rebuilt, &g);
    }

    #[test]
    fn component_sizes_sum_to_n(g in arb_graph(24, 80)) {
        let (labels, sizes) = connected_components(&g);
        prop_assert_eq!(labels.len(), g.n());
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.n());
        prop_assert_eq!(sizes.len(), num_components(&g));
    }

    #[test]
    fn conductance_in_unit_interval(g in arb_graph(24, 80), bits in proptest::collection::vec(any::<bool>(), 24)) {
        let members: Vec<u32> = (0..g.n() as u32)
            .filter(|&v| bits[v as usize % bits.len()])
            .collect();
        let s = NodeSet::from_members(g.n(), &members);
        let phi = conductance(&g, &s);
        prop_assert!((0.0..=1.0).contains(&phi), "phi = {}", phi);
    }

    #[test]
    fn transition_preserves_mass_when_no_isolated(g in arb_graph(16, 80)) {
        prop_assume!(g.min_degree() > 0);
        let op = TransitionOp::new(&g);
        let v: Vec<f64> = (0..g.n()).map(|i| (i as f64 + 1.0) / g.n() as f64).collect();
        let total_in: f64 = v.iter().sum();
        let y = op.apply(&v);
        let total_out: f64 = y.iter().sum();
        prop_assert!((total_in - total_out).abs() < 1e-9);
    }

    #[test]
    fn containment_monotone_in_t(g in arb_graph(16, 60)) {
        prop_assume!(g.m() > 0);
        let s = NodeSet::from_members(g.n(), &[0, 1.min(g.n() as u32 - 1)]);
        let op = TransitionOp::new(&g);
        let mut prev = 1.0f64;
        for t in 1..6 {
            let p = op.containment_probability(0, &s, t);
            prop_assert!(p <= prev + 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn induced_subgraph_edges_subset(g in arb_graph(20, 60), keep in proptest::collection::vec(any::<bool>(), 20)) {
        let nodes: Vec<u32> = (0..g.n() as u32)
            .filter(|&v| keep[v as usize % keep.len()])
            .collect();
        let (sub, map) = induced_subgraph(&g, &nodes);
        for (su, sv) in sub.edge_list() {
            let pu = map.to_parent[su as usize];
            let pv = map.to_parent[sv as usize];
            prop_assert!(g.has_edge(pu, pv), "subgraph invented an edge");
        }
    }

    #[test]
    fn ego_network_contains_anchor_degree(g in arb_graph(20, 60)) {
        prop_assume!(g.n() > 0);
        let anchor = 0u32;
        let (sub, map) = ego_network(&g, &[anchor]);
        let sa = map.from_parent[anchor as usize].expect("anchor included");
        // Anchor keeps its full degree inside its own ego network.
        prop_assert_eq!(sub.degree(sa), g.degree(anchor));
    }
}
