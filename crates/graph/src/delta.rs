//! Edge deltas and drift scoring for evolving graphs.
//!
//! A served graph rarely changes wholesale: edges trickle in and out while
//! the vertex set stays put. [`GraphDelta`] captures one such batch, and
//! [`Graph::apply_delta`] folds it into a CSR graph with an **incremental
//! rebuild** — rows untouched by the delta are copied verbatim, only the
//! rows whose adjacency actually changes are re-merged. For a delta
//! touching `k` rows the work is `O(n + m + Σ_touched deg + |Δ| log |Δ|)`
//! with no full re-canonicalization of the edge list.
//!
//! [`drift_between`] then answers the serving-layer question: *how far has
//! this graph moved from the one a model was fitted on?* Two signals are
//! combined, both cheap and both order-independent:
//!
//! * **Degree churn** — the fraction of vertices whose degree changed.
//! * **Row Jaccard** — the mean Jaccard similarity of the adjacency rows
//!   that changed at all (1.0 when nothing changed).
//!
//! [`DriftScore::score`] folds them into one number in `[0, 1]`:
//! `max(degree_churn, 1 − jaccard_touched)`. The registry serves the
//! stale-but-bounded model while this stays at or below its threshold.

use crate::fingerprint::GraphFingerprint;
use crate::graph::{Graph, NodeId};
use crate::{FairGenError, Result};

/// A batch of edge insertions and removals against a fixed vertex set.
///
/// Pairs are interpreted as undirected edges; orientation and duplicates
/// do not matter, and self-loops are ignored (the CSR graph cannot hold
/// them). Removing an absent edge or inserting a present one is a no-op,
/// so deltas are idempotent. When the same edge appears in both lists,
/// **insert wins** — the delta describes the desired end state of each
/// mentioned edge, not a replay log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Edges to add.
    pub insert: Vec<(NodeId, NodeId)>,
    /// Edges to drop.
    pub remove: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// A delta that does nothing.
    pub fn empty() -> Self {
        GraphDelta::default()
    }

    /// Whether both batches are empty.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.remove.is_empty()
    }

    /// Total number of edge operations carried (inserts + removes,
    /// pre-dedup).
    pub fn len(&self) -> usize {
        self.insert.len() + self.remove.len()
    }
}

/// Canonicalizes raw pairs: drops self-loops, orients `u < v`, sorts,
/// dedups. Validates endpoints against `n`.
fn canonical_pairs(pairs: &[(NodeId, NodeId)], n: usize) -> Result<Vec<(NodeId, NodeId)>> {
    let mut out = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs {
        let worst = u.max(v);
        if worst as usize >= n {
            return Err(FairGenError::NodeOutOfRange { node: worst, nodes: n });
        }
        if u == v {
            continue;
        }
        out.push((u.min(v), u.max(v)));
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

impl Graph {
    /// Applies `delta` and returns the resulting graph, leaving `self`
    /// untouched (serving keeps the fitted base graph alive for drift
    /// scoring, so mutation in place would be a footgun).
    ///
    /// Only adjacency rows mentioned by the delta are rebuilt; every other
    /// row's slice is copied straight across. Inserting an existing edge or
    /// removing a missing one is a no-op. An edge present in both batches
    /// ends up **present** (insert wins).
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph> {
        let n = self.n();
        let insert = canonical_pairs(&delta.insert, n)?;
        let mut remove = canonical_pairs(&delta.remove, n)?;
        // Insert wins on conflict: drop conflicting pairs from the removes.
        remove.retain(|e| insert.binary_search(e).is_err());
        if insert.is_empty() && remove.is_empty() {
            return Ok(self.clone());
        }

        // Group the per-row changes. Each undirected edge {u, v} affects
        // both row u and row v.
        let mut ins_rows: std::collections::BTreeMap<NodeId, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        let mut rem_rows: std::collections::BTreeMap<NodeId, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for &(u, v) in &insert {
            ins_rows.entry(u).or_default().push(v);
            ins_rows.entry(v).or_default().push(u);
        }
        for &(u, v) in &remove {
            rem_rows.entry(u).or_default().push(v);
            rem_rows.entry(v).or_default().push(u);
        }
        for list in ins_rows.values_mut().chain(rem_rows.values_mut()) {
            list.sort_unstable();
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        // Worst case: every insert lands, nothing is already present.
        let mut neighbors = Vec::with_capacity(self.total_volume() + 2 * insert.len());
        for v in 0..n as NodeId {
            let old = self.neighbors(v);
            let ins = ins_rows.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            let rem = rem_rows.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            if ins.is_empty() && rem.is_empty() {
                neighbors.extend_from_slice(old);
            } else {
                merge_row(old, ins, rem, &mut neighbors);
            }
            offsets.push(neighbors.len());
        }
        debug_assert_eq!(neighbors.len() % 2, 0);
        let m = neighbors.len() / 2;
        Ok(Graph::from_csr_parts(offsets, neighbors, m))
    }
}

/// Merges one sorted adjacency row with sorted, deduped insert/remove
/// lists: `out` receives `(old ∖ rem) ∪ ins` in sorted order.
fn merge_row(old: &[NodeId], ins: &[NodeId], rem: &[NodeId], out: &mut Vec<NodeId>) {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < old.len() || j < ins.len() {
        let take_old = match (old.get(i), ins.get(j)) {
            (Some(&a), Some(&b)) => {
                if a == b {
                    // Inserting an existing edge: emit once, advance both.
                    j += 1;
                    true
                } else {
                    a < b
                }
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("loop condition"),
        };
        if take_old {
            let a = old[i];
            i += 1;
            while k < rem.len() && rem[k] < a {
                k += 1;
            }
            if k < rem.len() && rem[k] == a {
                k += 1;
                continue; // removed
            }
            out.push(a);
        } else {
            out.push(ins[j]);
            j += 1;
        }
    }
}

/// The two drift signals between a fitted base graph and its current
/// descendant, plus the scalar the serving layer thresholds on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftScore {
    /// Fraction of vertices whose degree differs (`0.0` = none, `1.0` =
    /// every vertex).
    pub degree_changed: f64,
    /// Mean Jaccard similarity of the adjacency rows that differ at all;
    /// `1.0` when no row changed.
    pub jaccard_touched: f64,
}

impl DriftScore {
    /// A zero-drift score (identical graphs).
    pub fn zero() -> Self {
        DriftScore { degree_changed: 0.0, jaccard_touched: 1.0 }
    }

    /// The scalar drift in `[0, 1]`: `max(degree_changed, 1 −
    /// jaccard_touched)`. Either signal alone can push a graph over a
    /// serving threshold — heavy rewiring that preserves degrees still
    /// tanks the Jaccard term, and uniform degree growth still trips the
    /// churn term.
    pub fn score(&self) -> f64 {
        self.degree_changed.max(1.0 - self.jaccard_touched)
    }
}

/// Computes the [`DriftScore`] of `current` relative to `base`.
///
/// Both graphs must share a vertex count (deltas never change `n`);
/// anything else is an [`FairGenError::InvalidConfig`]. Cost is
/// `O(n + m_base + m_current)`.
pub fn drift_between(base: &Graph, current: &Graph) -> Result<DriftScore> {
    if base.n() != current.n() {
        return Err(FairGenError::InvalidConfig {
            field: "drift",
            message: format!(
                "drift requires equal vertex counts (base n={}, current n={})",
                base.n(),
                current.n()
            ),
        });
    }
    let n = base.n();
    if n == 0 {
        return Ok(DriftScore::zero());
    }
    let mut degree_changed = 0usize;
    let mut touched = 0usize;
    let mut jaccard_sum = 0.0f64;
    for v in 0..n as NodeId {
        let a = base.neighbors(v);
        let b = current.neighbors(v);
        if a.len() != b.len() {
            degree_changed += 1;
        }
        if a != b {
            touched += 1;
            jaccard_sum += row_jaccard(a, b);
        }
    }
    let jaccard_touched = if touched == 0 { 1.0 } else { jaccard_sum / touched as f64 };
    Ok(DriftScore { degree_changed: degree_changed as f64 / n as f64, jaccard_touched })
}

/// Jaccard similarity of two sorted sets; `1.0` when both are empty.
fn row_jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Ties a drift measurement to the identities it relates: the fingerprint
/// a model was **fitted on** (`base`) and the fingerprint of the graph the
/// server is **asked about now** (`current`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaFingerprint {
    /// Fingerprint of the fit the model came from.
    pub base: GraphFingerprint,
    /// Fingerprint of the current (post-delta) request content.
    pub current: GraphFingerprint,
    /// Structural drift of the current graph relative to the base graph.
    pub drift: DriftScore,
}

impl DeltaFingerprint {
    /// Measures drift between the two graphs and packages it with the two
    /// request fingerprints.
    pub fn measure(
        base: GraphFingerprint,
        current: GraphFingerprint,
        base_graph: &Graph,
        current_graph: &Graph,
    ) -> Result<Self> {
        let drift = drift_between(base_graph, current_graph)?;
        Ok(DeltaFingerprint { base, current, drift })
    }

    /// Whether the stale model fitted on `base` may keep serving under
    /// `threshold`.
    pub fn within(&self, threshold: f64) -> bool {
        self.drift.score() <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = path4();
        let out = g.apply_delta(&GraphDelta::empty()).expect("apply");
        assert_eq!(out, g);
    }

    #[test]
    fn insert_and_remove_match_rebuild() {
        let g = path4();
        let delta = GraphDelta { insert: vec![(0, 3), (0, 2)], remove: vec![(1, 2)] };
        let got = g.apply_delta(&delta).expect("apply");
        let want = Graph::from_edges(4, &[(0, 1), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(got, want);
    }

    #[test]
    fn noop_inserts_and_removes_tolerated() {
        let g = path4();
        let delta = GraphDelta {
            insert: vec![(0, 1), (1, 0), (0, 1)], // already present + dup + reversed
            remove: vec![(0, 2), (2, 2)],         // absent + self-loop
        };
        let got = g.apply_delta(&delta).expect("apply");
        assert_eq!(got, g);
    }

    #[test]
    fn insert_wins_over_remove() {
        let g = path4();
        let delta = GraphDelta { insert: vec![(0, 3)], remove: vec![(3, 0), (1, 2)] };
        let got = g.apply_delta(&delta).expect("apply");
        assert!(got.has_edge(0, 3));
        assert!(!got.has_edge(1, 2));
    }

    #[test]
    fn out_of_range_is_typed() {
        let g = path4();
        let delta = GraphDelta { insert: vec![(0, 9)], remove: vec![] };
        match g.apply_delta(&delta) {
            Err(FairGenError::NodeOutOfRange { node, nodes }) => {
                assert_eq!(node, 9);
                assert_eq!(nodes, 4);
            }
            other => panic!("expected NodeOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn apply_matches_from_scratch_oracle() {
        // Random-ish dense sweep: apply_delta must equal rebuilding from the
        // edited edge list.
        let n = 12usize;
        let mut edges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if (u as usize * 7 + v as usize * 13).is_multiple_of(3) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges);
        let insert: Vec<_> = (0..n as NodeId)
            .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
            .filter(|&(u, v)| (u as usize * 5 + v as usize * 11).is_multiple_of(4))
            .collect();
        let remove: Vec<_> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| (u as usize + v as usize).is_multiple_of(5))
            .collect();
        let delta = GraphDelta { insert: insert.clone(), remove: remove.clone() };
        let got = g.apply_delta(&delta).expect("apply");

        let mut want: std::collections::BTreeSet<(NodeId, NodeId)> =
            edges.iter().copied().collect();
        for e in &remove {
            want.remove(e);
        }
        for e in &insert {
            want.insert(*e);
        }
        let want_edges: Vec<_> = want.into_iter().collect();
        let want_g = Graph::from_edges(n, &want_edges);
        assert_eq!(got, want_g);
    }

    #[test]
    fn drift_zero_for_identical() {
        let g = path4();
        let d = drift_between(&g, &g).expect("drift");
        assert_eq!(d.score(), 0.0);
        assert_eq!(d.degree_changed, 0.0);
        assert_eq!(d.jaccard_touched, 1.0);
    }

    #[test]
    fn drift_counts_degree_churn() {
        let g = path4();
        let h = g.apply_delta(&GraphDelta { insert: vec![(0, 3)], remove: vec![] }).unwrap();
        let d = drift_between(&g, &h).expect("drift");
        // Nodes 0 and 3 changed degree: 2/4.
        assert!((d.degree_changed - 0.5).abs() < 1e-12);
        assert!(d.score() >= 0.5);
    }

    #[test]
    fn drift_catches_degree_preserving_rewiring() {
        // 0-1 2-3  →  0-2 1-3: every degree stays 1 but rows change.
        let a = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let b = Graph::from_edges(4, &[(0, 2), (1, 3)]);
        let d = drift_between(&a, &b).expect("drift");
        assert_eq!(d.degree_changed, 0.0);
        assert!(d.jaccard_touched < 1.0);
        assert!(d.score() > 0.0);
    }

    #[test]
    fn drift_requires_equal_n() {
        let a = Graph::empty(3);
        let b = Graph::empty(4);
        assert!(matches!(drift_between(&a, &b), Err(FairGenError::InvalidConfig { .. })));
    }

    #[test]
    fn drift_is_monotone_under_growing_edits() {
        let g = path4();
        let one = g.apply_delta(&GraphDelta { insert: vec![(0, 2)], remove: vec![] }).unwrap();
        let two =
            one.apply_delta(&GraphDelta { insert: vec![(0, 3)], remove: vec![] }).unwrap();
        let d1 = drift_between(&g, &one).unwrap().score();
        let d2 = drift_between(&g, &two).unwrap().score();
        assert!(d1 > 0.0);
        assert!(d2 >= d1, "more edits should not lower drift: {d1} -> {d2}");
    }

    #[test]
    fn delta_fingerprint_thresholds() {
        let g = path4();
        let h = g.apply_delta(&GraphDelta { insert: vec![(0, 2)], remove: vec![] }).unwrap();
        let fp_g = crate::FingerprintBuilder::new().add_graph(&g).finish();
        let fp_h = crate::FingerprintBuilder::new().add_graph(&h).finish();
        let df = DeltaFingerprint::measure(fp_g, fp_h, &g, &h).expect("measure");
        assert_eq!(df.base, fp_g);
        assert_eq!(df.current, fp_h);
        assert!(df.within(1.0));
        assert!(!df.within(0.0));
    }
}
