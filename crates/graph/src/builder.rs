//! Incremental graph construction.

use crate::graph::{Graph, NodeId};

/// Incremental builder for [`Graph`].
///
/// Collects edges (self-loops and duplicates allowed; both are removed when
/// the graph is finalized) and grows the vertex count on demand.
///
/// ```
/// use fairgen_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(1, 2); // duplicate, dropped at build time
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with at least `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(m) }
    }

    /// Adds an undirected edge, growing the vertex count if needed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.n = self.n.max(u as usize + 1).max(v as usize + 1);
        self.edges.push((u, v));
    }

    /// Ensures the built graph has at least `n` vertices.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Number of edges added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Current vertex count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Finalizes into a simple CSR graph.
    pub fn build(self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_nodes_on_demand() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 2);
        let g = b.build();
        assert_eq!(g.n(), 6);
        assert!(g.has_edge(5, 2));
    }

    #[test]
    fn ensure_nodes_pads_isolated() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.ensure_nodes(10);
        let g = b.build();
        assert_eq!(g.n(), 10);
        assert_eq!(g.isolated_count(), 8);
    }

    #[test]
    fn raw_count_includes_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.raw_edge_count(), 2);
        assert_eq!(b.build().m(), 1);
    }
}
