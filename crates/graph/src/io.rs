//! Plain-text edge-list serialization — the interchange format of the
//! privacy-sharing use case (ship the synthetic graph, not the data).
//!
//! Format: one `u v` pair per line (whitespace-separated decimal node ids),
//! `#`-prefixed comment lines ignored, plus an optional leading
//! `# nodes: <n>` header so isolated vertices survive the round trip.
//!
//! Parse failures surface as [`FairGenError::MalformedEdgeList`] /
//! [`FairGenError::Io`] through the workspace-wide [`Result`] alias.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::{FairGenError, Result};
use crate::graph::Graph;
use crate::GraphBuilder;

/// Writes `g` as an edge list with a `# nodes:` header.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# nodes: {}", g.n())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads an edge list produced by [`write_edge_list`] (or any `u v`-per-line
/// file; SNAP-style `#` comments are skipped).
pub fn read_edge_list<R: Read>(r: R) -> Result<Graph> {
    let reader = BufReader::new(r);
    let mut builder = GraphBuilder::new(0);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            // Honor the nodes header if present.
            if let Some(count) = rest.trim().strip_prefix("nodes:") {
                if let Ok(n) = count.trim().parse::<usize>() {
                    builder.ensure_nodes(n);
                }
            }
            continue;
        }
        let malformed =
            || FairGenError::MalformedEdgeList { line: lineno + 1, text: trimmed.to_string() };
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => match (a.parse(), b.parse()) {
                (Ok(u), Ok(v)) => (u, v),
                _ => return Err(malformed()),
            },
            _ => return Err(malformed()),
        };
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)])
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn header_preserves_isolated_nodes() {
        let g = sample(); // node 3 isolated
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.n(), 6);
        assert_eq!(back.degree(3), 0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(FairGenError::MalformedEdgeList { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn too_many_fields_rejected() {
        let text = "0 1 2\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = FairGenError::MalformedEdgeList { line: 7, text: "x".into() };
        assert!(e.to_string().contains("line 7"));
    }
}
