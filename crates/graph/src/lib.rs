//! Graph substrate for the FairGen reproduction.
//!
//! This crate provides the undirected-graph data structure and the structural
//! primitives that every other crate in the workspace builds on:
//!
//! * [`Graph`] — a compressed-sparse-row (CSR) undirected graph with sorted,
//!   deduplicated adjacency lists.
//! * [`GraphBuilder`] — incremental construction from edges.
//! * Connected components, BFS, single-source shortest paths
//!   ([`components`], [`traversal`]).
//! * Ego networks and induced subgraphs ([`ego`]).
//! * Cuts, volumes and conductance φ(S) ([`mod@conductance`]).
//! * The lazy random-walk transition operator M = (AD⁻¹ + I)/2 used by the
//!   paper's Definition 1 and Lemma 2.1 ([`transition`]).
//!
//! All node identifiers are dense `u32` indices in `0..n`. Graphs are simple:
//! self-loops and parallel edges are dropped at construction time.

pub mod builder;
pub mod codec;
pub mod components;
pub mod conductance;
pub mod delta;
pub mod ego;
pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod io;
pub mod kcore;
pub mod partition;
pub mod transition;
pub mod traversal;

pub use builder::GraphBuilder;
pub use codec::{Codec, Decoder, Encoder};
pub use components::{
    connected_components, largest_component_nodes, num_components, UnionFind,
};
pub use conductance::{conductance, cut_size, volume};
pub use delta::{drift_between, DeltaFingerprint, DriftScore, GraphDelta};
pub use ego::{ego_network, induced_subgraph, SubgraphMap};
pub use error::{FairGenError, Result};
pub use fingerprint::{FingerprintBuilder, GraphFingerprint};
pub use graph::{Graph, NodeId};
pub use io::{read_edge_list, write_edge_list};
pub use kcore::{core_numbers, degeneracy, k_core_nodes};
pub use partition::NodeSet;
pub use transition::TransitionOp;
pub use traversal::{bfs_distances, bfs_order};
