//! Volumes, cuts, and conductance φ(S).

use crate::graph::Graph;
use crate::partition::NodeSet;

/// Volume of a node set: `vol(S) = Σ_{v ∈ S} deg(v)`.
pub fn volume(g: &Graph, s: &NodeSet) -> usize {
    s.members().iter().map(|&v| g.degree(v)).sum()
}

/// Number of edges with exactly one endpoint in `S`.
pub fn cut_size(g: &Graph, s: &NodeSet) -> usize {
    let mut cut = 0usize;
    for &v in s.members() {
        for &u in g.neighbors(v) {
            if !s.contains(u) {
                cut += 1;
            }
        }
    }
    cut
}

/// Conductance `φ(S) = cut(S) / min(vol(S), vol(V \ S))`.
///
/// Returns 0.0 when either side has zero volume (degenerate sets); this
/// matches the paper's convention that a compact, well-separated `S` has
/// small conductance.
pub fn conductance(g: &Graph, s: &NodeSet) -> f64 {
    let vol_s = volume(g, s);
    let vol_rest = g.total_volume() - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        return 0.0;
    }
    cut_size(g, s) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn barbell() -> (Graph, NodeSet) {
        // Two triangles joined by one bridge edge (2-3).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let s = NodeSet::from_members(6, &[0, 1, 2]);
        (g, s)
    }

    #[test]
    fn volume_counts_degrees() {
        let (g, s) = barbell();
        assert_eq!(volume(&g, &s), 2 + 2 + 3);
    }

    #[test]
    fn cut_counts_boundary_edges() {
        let (g, s) = barbell();
        assert_eq!(cut_size(&g, &s), 1);
        assert_eq!(cut_size(&g, &s.complement()), 1);
    }

    #[test]
    fn conductance_barbell() {
        let (g, s) = barbell();
        let phi = conductance(&g, &s);
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);
        // Conductance of complement matches (both sides have volume 7).
        assert!((conductance(&g, &s.complement()) - phi).abs() < 1e-12);
    }

    #[test]
    fn conductance_in_unit_interval() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        for members in [&[0u32][..], &[0, 1], &[0, 1, 2], &[1, 3]] {
            let s = NodeSet::from_members(4, members);
            let phi = conductance(&g, &s);
            assert!((0.0..=1.0).contains(&phi), "phi={phi} for {members:?}");
        }
    }

    #[test]
    fn degenerate_sets_zero() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(conductance(&g, &NodeSet::empty(3)), 0.0);
        assert_eq!(conductance(&g, &NodeSet::full(3)), 0.0);
    }

    #[test]
    fn disconnected_set_zero_cut() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let s = NodeSet::from_members(4, &[0, 1]);
        assert_eq!(cut_size(&g, &s), 0);
        assert_eq!(conductance(&g, &s), 0.0);
    }
}
