//! Connected components via union-find.

use crate::graph::{Graph, NodeId};

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns whether a merge happened.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Labels every node with a dense component id in `0..k`; returns
/// `(labels, component_sizes)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, Vec<usize>) {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for v in 0..n {
        let r = uf.find(v as u32) as usize;
        if label[r] == u32::MAX {
            label[r] = sizes.len() as u32;
            sizes.push(0);
        }
        let c = label[r];
        label[v] = c;
        sizes[c as usize] += 1;
    }
    (label, sizes)
}

/// Number of connected components (the paper's NCC metric; isolated nodes
/// each count as a component).
pub fn num_components(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.component_count()
}

/// Nodes of the largest connected component (ties broken by smallest label).
pub fn largest_component_nodes(g: &Graph) -> Vec<NodeId> {
    if g.n() == 0 {
        return Vec::new();
    }
    let (labels, sizes) = connected_components(g);
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .expect("non-empty graph has a component");
    (0..g.n() as NodeId).filter(|&v| labels[v as usize] == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.component_size(1), 2);
    }

    #[test]
    fn components_two_cliques() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]);
        assert_eq!(num_components(&g), 2);
        let (labels, sizes) = connected_components(&g);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
        let mut s = sizes.clone();
        s.sort_unstable();
        assert_eq!(s, vec![3, 3]);
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        assert_eq!(num_components(&g), 4);
    }

    #[test]
    fn largest_component() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        assert_eq!(largest_component_nodes(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn largest_component_empty_graph() {
        assert!(largest_component_nodes(&Graph::empty(0)).is_empty());
        // All isolated: any singleton is "largest"; size 1.
        assert_eq!(largest_component_nodes(&Graph::empty(3)).len(), 1);
    }

    #[test]
    fn fully_connected_single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(num_components(&g), 1);
        assert_eq!(largest_component_nodes(&g).len(), 4);
    }
}
