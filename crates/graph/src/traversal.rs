//! Breadth-first traversal and unweighted shortest paths.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes in BFS visitation order from `source` (its connected component).
pub fn bfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Sum and count of finite pairwise distances from `source` to *other*
/// reachable nodes. Used by the ASPL metric.
pub fn distance_sum_from(g: &Graph, source: NodeId) -> (usize, usize) {
    let dist = bfs_distances(g, source);
    let mut sum = 0usize;
    let mut cnt = 0usize;
    for (v, &d) in dist.iter().enumerate() {
        if v as NodeId != source && d != usize::MAX {
            sum += d;
            cnt += 1;
        }
    }
    (sum, cnt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_is_max() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn order_covers_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn distance_sum() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (sum, cnt) = distance_sum_from(&g, 0);
        assert_eq!((sum, cnt), (6, 3));
    }

    #[test]
    fn distance_sum_isolated() {
        let g = Graph::empty(3);
        assert_eq!(distance_sum_from(&g, 1), (0, 0));
    }
}
