//! The lazy random-walk transition operator `M = (AD⁻¹ + I)/2`.
//!
//! `M` is column-stochastic: column `x` is the distribution of a one-step
//! lazy walk started at `x` (stay with probability ½, otherwise move to a
//! uniform neighbor). The paper's Definition 1 (diffusion core) and
//! Lemma 2.1 are stated in terms of powers of `M` restricted by
//! `diag(χ_S)`; [`TransitionOp`] provides exactly those operations without
//! materializing the dense matrix.

use crate::graph::{Graph, NodeId};
use crate::partition::NodeSet;

/// Matrix-free application of `M = (AD⁻¹ + I)/2` and of the restricted
/// operator `diag(χ_S) M`.
#[derive(Clone, Debug)]
pub struct TransitionOp<'g> {
    g: &'g Graph,
    inv_deg: Vec<f64>,
}

impl<'g> TransitionOp<'g> {
    /// Builds the operator for `g`. Isolated nodes are absorbing (their
    /// column of `AD⁻¹` is zero, so the lazy walk stays with probability ½
    /// and "vanishes" otherwise; in practice the walk never reaches them).
    pub fn new(g: &'g Graph) -> Self {
        let inv_deg = (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        TransitionOp { g, inv_deg }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// `y = M v`, i.e. `y_i = ½ v_i + ½ Σ_{j ∈ N(i)} v_j / deg(j)`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.g.n(), "vector length mismatch");
        let mut y = vec![0.0; v.len()];
        for i in 0..self.g.n() {
            let mut acc = 0.0;
            for &j in self.g.neighbors(i as NodeId) {
                acc += v[j as usize] * self.inv_deg[j as usize];
            }
            y[i] = 0.5 * v[i] + 0.5 * acc;
        }
        y
    }

    /// `y = diag(χ_S) M v`: one lazy step, then truncation outside `S`.
    pub fn apply_restricted(&self, v: &[f64], s: &NodeSet) -> Vec<f64> {
        let mut y = self.apply(v);
        for (i, yi) in y.iter_mut().enumerate() {
            if !s.contains(i as NodeId) {
                *yi = 0.0;
            }
        }
        y
    }

    /// `(diag(χ_S) M)^t χ_x` — the probability mass of a `t`-step lazy walk
    /// from `x` that has stayed entirely inside `S`.
    pub fn restricted_power_from(&self, x: NodeId, s: &NodeSet, t: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.g.n()];
        v[x as usize] = 1.0;
        for _ in 0..t {
            v = self.apply_restricted(&v, s);
        }
        v
    }

    /// Containment probability `1ᵀ (diag(χ_S) M)^t χ_x`: the probability
    /// that a `t`-step lazy walk from `x` never leaves `S`.
    pub fn containment_probability(&self, x: NodeId, s: &NodeSet, t: usize) -> f64 {
        self.restricted_power_from(x, s, t).iter().sum()
    }

    /// Escape probability `1 − χ_Sᵀ M^t χ_x` used in Definition 1: the
    /// probability that a `t`-step lazy walk from `x` ends outside `S`
    /// (it may have left and re-entered in between).
    pub fn escape_probability(&self, x: NodeId, s: &NodeSet, t: usize) -> f64 {
        let mut v = vec![0.0; self.g.n()];
        v[x as usize] = 1.0;
        for _ in 0..t {
            v = self.apply(&v);
        }
        let inside: f64 = s.members().iter().map(|&u| v[u as usize]).sum();
        (1.0 - inside).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn columns_are_stochastic() {
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        for x in 0..g.n() {
            let mut v = vec![0.0; g.n()];
            v[x] = 1.0;
            let y = op.apply(&v);
            let sum: f64 = y.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "column {x} sums to {sum}");
            assert!(y.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn lazy_self_probability_half() {
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        let mut v = vec![0.0; 4];
        v[0] = 1.0;
        let y = op.apply(&v);
        assert!((y[0] - 0.5).abs() < 1e-12);
        // Node 0 has neighbors 1 and 2, each with degree-normalized share.
        assert!((y[1] - 0.5 / 2.0 * 1.0).abs() < 1e-1);
    }

    #[test]
    fn isolated_node_absorbs() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let op = TransitionOp::new(&g);
        let mut v = vec![0.0; 3];
        v[2] = 1.0;
        let y = op.apply(&v);
        assert!((y[2] - 0.5).abs() < 1e-12);
        // Mass leaks (isolated node has no outgoing edges) — column sums to ½.
        let sum: f64 = y.iter().sum();
        assert!((sum - 0.5).abs() < 1e-12);
    }

    #[test]
    fn containment_decreases_with_t() {
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        let s = NodeSet::from_members(4, &[0, 1, 2]);
        let mut prev = 1.0;
        for t in 1..8 {
            let p = op.containment_probability(0, &s, t);
            assert!(p <= prev + 1e-12, "containment must be non-increasing");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn containment_full_set_is_one() {
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        let s = NodeSet::full(4);
        assert!((op.containment_probability(0, &s, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn escape_probability_zero_for_full_set() {
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        assert!(op.escape_probability(1, &NodeSet::full(4), 3) < 1e-12);
    }

    #[test]
    fn escape_leq_one_minus_containment() {
        // Ending outside S implies having left S at some point, so
        // escape(t) <= 1 - containment(t).
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        let s = NodeSet::from_members(4, &[0, 1, 2]);
        for t in 1..6 {
            let esc = op.escape_probability(0, &s, t);
            let cont = op.containment_probability(0, &s, t);
            assert!(esc <= 1.0 - cont + 1e-12, "t={t}: esc={esc}, cont={cont}");
        }
    }

    #[test]
    fn restricted_power_zero_outside_s() {
        let g = triangle_plus_tail();
        let op = TransitionOp::new(&g);
        let s = NodeSet::from_members(4, &[0, 1, 2]);
        let v = op.restricted_power_from(0, &s, 3);
        assert_eq!(v[3], 0.0);
    }
}
