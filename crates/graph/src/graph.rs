//! The core CSR undirected graph type.

/// Dense node identifier. Nodes of a graph with `n` vertices are `0..n`.
pub type NodeId = u32;

/// An undirected simple graph in compressed-sparse-row form.
///
/// Adjacency lists are sorted and deduplicated, each undirected edge
/// `{u, v}` is stored twice (once in `u`'s list, once in `v`'s), and
/// self-loops are not representable.
///
/// ```
/// use fairgen_graph::Graph;
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 3));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    m: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops and duplicate edges (in either orientation) are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`. Use [`Graph::try_from_edges`] for a
    /// fallible variant returning [`FairGenError::NodeOutOfRange`](crate::FairGenError).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        match Self::try_from_edges(n, edges) {
            Ok(g) => g,
            Err(e) => panic!("edge list out of range: {e}"),
        }
    }

    /// Fallible [`Graph::from_edges`]: returns
    /// [`FairGenError::NodeOutOfRange`](crate::FairGenError) instead of
    /// panicking when an endpoint is `>= n`.
    pub fn try_from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> crate::Result<Self> {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            let worst = u.max(v);
            if worst as usize >= n {
                return Err(crate::FairGenError::NodeOutOfRange { node: worst, nodes: n });
            }
            if u == v {
                continue;
            }
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &deg {
            let last = *offsets.last().expect("offsets non-empty");
            offsets.push(last + d);
        }
        let mut neighbors = vec![0 as NodeId; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sort and dedup each adjacency list, then recompact.
        let mut clean_neighbors = Vec::with_capacity(neighbors.len());
        let mut clean_offsets = Vec::with_capacity(n + 1);
        clean_offsets.push(0usize);
        for v in 0..n {
            let list = &mut neighbors[offsets[v]..offsets[v + 1]];
            list.sort_unstable();
            let start = clean_neighbors.len();
            let mut prev: Option<NodeId> = None;
            for &u in list.iter() {
                if prev != Some(u) {
                    clean_neighbors.push(u);
                    prev = Some(u);
                }
            }
            let _ = start;
            clean_offsets.push(clean_neighbors.len());
        }
        let m = clean_neighbors.len() / 2;
        Ok(Graph { offsets: clean_offsets, neighbors: clean_neighbors, m })
    }

    /// Assembles a graph from already-canonical CSR parts: `offsets` of
    /// length `n + 1`, rows sorted and deduplicated, every undirected edge
    /// present in both endpoint rows. The delta subsystem's incremental
    /// rebuild produces exactly this shape and must not pay for a second
    /// canonicalization pass.
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        m: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().expect("offsets non-empty"), neighbors.len());
        debug_assert_eq!(neighbors.len(), 2 * m);
        Graph { offsets, neighbors, m }
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], neighbors: Vec::new(), m: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// All degrees, indexed by node.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n()).map(|v| self.degree(v as NodeId)).collect()
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v as NodeId)).min().unwrap_or(0)
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Collects the edge list (each edge once, `u < v`).
    pub fn edge_list(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Number of isolated (degree-0) vertices.
    pub fn isolated_count(&self) -> usize {
        (0..self.n()).filter(|&v| self.degree(v as NodeId) == 0).count()
    }

    /// Counts the triangles of the graph (each triangle once).
    ///
    /// Uses the standard oriented-neighborhood intersection: for every edge
    /// `(u, v)` with `u < v`, counts common neighbors `w > v`.
    pub fn triangle_count(&self) -> usize {
        let mut count = 0usize;
        for u in 0..self.n() as NodeId {
            let nu = self.neighbors(u);
            for &v in nu.iter().filter(|&&v| v > u) {
                let nv = self.neighbors(v);
                count += intersect_above(nu, nv, v);
            }
        }
        count
    }

    /// Per-node triangle participation: `t[v]` = number of triangles
    /// containing `v`.
    pub fn triangles_per_node(&self) -> Vec<usize> {
        let mut t = vec![0usize; self.n()];
        for u in 0..self.n() as NodeId {
            let nu = self.neighbors(u);
            for &v in nu.iter().filter(|&&v| v > u) {
                let nv = self.neighbors(v);
                // Common neighbors w > v close a triangle {u, v, w}.
                let (mut i, mut j) = (0usize, 0usize);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = nu[i];
                            if w > v {
                                t[u as usize] += 1;
                                t[v as usize] += 1;
                                t[w as usize] += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        t
    }

    /// Total volume `Σ_v deg(v) = 2m`.
    #[inline]
    pub fn total_volume(&self) -> usize {
        2 * self.m
    }
}

/// Number of common elements of two sorted slices that are strictly greater
/// than `floor`.
fn intersect_above(a: &[NodeId], b: &[NodeId], floor: NodeId) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] > floor {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn duplicate_edges_dropped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn adjacency_sorted() {
        let g = Graph::from_edges(5, &[(4, 0), (2, 0), (0, 3), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn has_edge_symmetry() {
        let g = Graph::from_edges(4, &[(0, 3), (1, 2)]);
        assert!(g.has_edge(0, 3) && g.has_edge(3, 0));
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.isolated_count(), 5);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = k4();
        let edges = g.edge_list();
        assert_eq!(edges.len(), 6);
        for &(u, v) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn triangle_count_k4() {
        assert_eq!(k4().triangle_count(), 4);
    }

    #[test]
    fn triangle_count_path_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.triangle_count(), 0);
    }

    #[test]
    fn triangle_count_single() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(g.triangle_count(), 1);
        assert_eq!(g.triangles_per_node(), vec![1, 1, 1, 0]);
    }

    #[test]
    fn triangles_per_node_k4() {
        // Each node of K4 is in C(3,2) = 3 triangles.
        assert_eq!(k4().triangles_per_node(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn degrees_and_volume() {
        let g = k4();
        assert_eq!(g.degrees(), vec![3, 3, 3, 3]);
        assert_eq!(g.total_volume(), 12);
        assert_eq!(g.min_degree(), 3);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn try_from_edges_reports_offending_node() {
        match Graph::try_from_edges(2, &[(0, 1), (0, 5)]) {
            Err(crate::FairGenError::NodeOutOfRange { node, nodes }) => {
                assert_eq!(node, 5);
                assert_eq!(nodes, 2);
            }
            other => panic!("expected NodeOutOfRange, got {other:?}"),
        }
        let g = Graph::try_from_edges(3, &[(0, 1), (1, 2)]).expect("valid edges");
        assert_eq!(g.m(), 2);
    }
}
