//! Node sets (protected groups, classes, subgraph supports).

use crate::graph::NodeId;

/// A set of nodes over a graph with a fixed vertex count, stored both as a
/// membership bitmap (O(1) lookup) and a sorted member list (fast iteration).
///
/// Used throughout the workspace to represent the protected group `S+`, the
/// unprotected group `S−`, class supports, and diffusion cores.
///
/// ```
/// use fairgen_graph::NodeSet;
/// let s = NodeSet::from_members(5, &[1, 3]);
/// assert!(s.contains(3));
/// assert!(!s.contains(0));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.complement().members(), &[0, 2, 4]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    mask: Vec<bool>,
    members: Vec<NodeId>,
}

impl NodeSet {
    /// The empty set over `n` nodes.
    pub fn empty(n: usize) -> Self {
        NodeSet { mask: vec![false; n], members: Vec::new() }
    }

    /// The full set `{0, .., n-1}`.
    pub fn full(n: usize) -> Self {
        NodeSet { mask: vec![true; n], members: (0..n as NodeId).collect() }
    }

    /// Builds a set from a member list. Duplicates are ignored.
    ///
    /// # Panics
    ///
    /// Panics if a member is `>= n`.
    pub fn from_members(n: usize, members: &[NodeId]) -> Self {
        let mut mask = vec![false; n];
        for &v in members {
            assert!((v as usize) < n, "node {v} out of range for n={n}");
            mask[v as usize] = true;
        }
        let members = (0..n as NodeId).filter(|&v| mask[v as usize]).collect();
        NodeSet { mask, members }
    }

    /// Builds a set from a boolean mask.
    pub fn from_mask(mask: Vec<bool>) -> Self {
        let members = (0..mask.len() as NodeId).filter(|&v| mask[v as usize]).collect();
        NodeSet { mask, members }
    }

    /// Universe size `n`.
    #[inline]
    pub fn universe(&self) -> usize {
        self.mask.len()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.mask[v as usize]
    }

    /// Sorted member list.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The membership bitmap.
    #[inline]
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Adds a member (no-op if present).
    pub fn insert(&mut self, v: NodeId) {
        if !self.mask[v as usize] {
            self.mask[v as usize] = true;
            let pos = self.members.partition_point(|&u| u < v);
            self.members.insert(pos, v);
        }
    }

    /// The complement set `V \ S`.
    pub fn complement(&self) -> NodeSet {
        NodeSet::from_mask(self.mask.iter().map(|&b| !b).collect())
    }

    /// Intersection with another set over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect(&self, other: &NodeSet) -> NodeSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        NodeSet::from_mask(self.mask.iter().zip(&other.mask).map(|(&a, &b)| a && b).collect())
    }

    /// Union with another set over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        NodeSet::from_mask(self.mask.iter().zip(&other.mask).map(|(&a, &b)| a || b).collect())
    }

    /// The indicator vector χ_S as `f64` (1.0 on members, 0.0 elsewhere).
    pub fn indicator(&self) -> Vec<f64> {
        self.mask.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_members_dedups_and_sorts() {
        let s = NodeSet::from_members(6, &[4, 1, 4, 2]);
        assert_eq!(s.members(), &[1, 2, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn complement_partitions_universe() {
        let s = NodeSet::from_members(4, &[0, 2]);
        let c = s.complement();
        assert_eq!(c.members(), &[1, 3]);
        assert_eq!(s.len() + c.len(), 4);
        assert!(s.intersect(&c).is_empty());
        assert_eq!(s.union(&c), NodeSet::full(4));
    }

    #[test]
    fn insert_keeps_sorted() {
        let mut s = NodeSet::from_members(5, &[0, 4]);
        s.insert(2);
        s.insert(2);
        assert_eq!(s.members(), &[0, 2, 4]);
    }

    #[test]
    fn indicator_matches_mask() {
        let s = NodeSet::from_members(3, &[1]);
        assert_eq!(s.indicator(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_and_full() {
        assert!(NodeSet::empty(3).is_empty());
        assert_eq!(NodeSet::full(3).len(), 3);
        assert_eq!(NodeSet::empty(0).universe(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        let _ = NodeSet::from_members(2, &[2]);
    }
}
