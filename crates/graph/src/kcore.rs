//! k-core decomposition — used to characterize how deeply the protected
//! group is embedded in the graph's dense backbone (minority groups often
//! sit at low core numbers, which is one mechanism behind representation
//! disparity).

use crate::graph::{Graph, NodeId};

/// Core number of every node (the largest `k` such that the node survives
/// in the `k`-core), via the standard peeling algorithm in `O(n + m)`.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut degree = g.degrees();
    let max_deg = *degree.iter().max().expect("non-empty");
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as NodeId; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            order[pos[v]] = v as NodeId;
            cursor[d] += 1;
        }
    }
    let mut core = vec![0usize; n];
    for i in 0..n {
        let v = order[i] as usize;
        core[v] = degree[v];
        for &u in g.neighbors(v as NodeId) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first node of its bin.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw] as usize;
                if u != w {
                    order.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// Nodes of the `k`-core (maximal subgraph with all degrees ≥ `k`).
pub fn k_core_nodes(g: &Graph, k: usize) -> Vec<NodeId> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter_map(|(v, c)| (c >= k).then_some(v as NodeId))
        .collect()
}

/// Degeneracy of the graph (the largest `k` with a non-empty `k`-core).
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_core_numbers() {
        // K4 plus a pendant: clique nodes have core 3, pendant core 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let core = core_numbers(&g);
        assert_eq!(core, vec![3, 3, 3, 3, 1]);
        assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn path_is_one_core() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn isolated_nodes_core_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(core_numbers(&g)[2], 0);
    }

    #[test]
    fn k_core_extraction() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(k_core_nodes(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core_nodes(&g, 1).len(), 6);
        assert!(k_core_nodes(&g, 3).is_empty());
    }

    #[test]
    fn core_never_exceeds_degree() {
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 4)],
        );
        let core = core_numbers(&g);
        for v in 0..8u32 {
            assert!(core[v as usize] <= g.degree(v));
        }
    }

    #[test]
    fn empty_graph() {
        assert!(core_numbers(&Graph::empty(0)).is_empty());
        assert_eq!(degeneracy(&Graph::empty(3)), 0);
    }
}
