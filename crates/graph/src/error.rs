//! The workspace-wide error type.
//!
//! Every fallible public entry point in the FairGen workspace — graph
//! construction and I/O here, dataset loaders in `fairgen-data`, the
//! generator lifecycle in `fairgen-baselines` / `fairgen-core` — returns
//! [`FairGenError`] through the [`Result`] alias. The type lives in this
//! crate because `fairgen-graph` is the root of the dependency graph;
//! `fairgen_core::error` re-exports it as the canonical path for users.

use crate::graph::NodeId;

/// Everything that can go wrong across the FairGen public API.
#[derive(Debug)]
#[non_exhaustive]
pub enum FairGenError {
    /// A configuration field has a degenerate or inconsistent value.
    InvalidConfig {
        /// The offending field (paper notation, e.g. `"ratio_r"`).
        field: &'static str,
        /// Human-readable constraint violated.
        message: String,
    },
    /// The input graph has fewer vertices than the operation requires.
    GraphTooSmall {
        /// Vertices in the input.
        nodes: usize,
        /// Minimum the operation supports.
        min_nodes: usize,
    },
    /// A node id referenced a vertex outside `0..nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Vertex count of the graph.
        nodes: usize,
    },
    /// A few-shot label carried a class outside `0..num_classes`.
    LabelOutOfRange {
        /// The labeled node.
        node: NodeId,
        /// The offending class label.
        label: usize,
        /// Declared number of classes.
        num_classes: usize,
    },
    /// A protected-group [`NodeSet`](crate::NodeSet) was built over a
    /// different vertex count than the graph it is used with.
    GroupUniverseMismatch {
        /// Universe size of the group set.
        group_universe: usize,
        /// Vertex count of the graph.
        nodes: usize,
    },
    /// The parity weight `γ` is positive and labels are present, but no
    /// protected group `S⁺` was supplied, so the fairness objective the
    /// configuration demands cannot be enforced.
    MissingProtectedGroup {
        /// The configured parity weight.
        gamma: f64,
    },
    /// A label-dependent operation ran on an unlabeled dataset.
    MissingLabels,
    /// Sampling from a fitted generator produced a degenerate distribution
    /// (e.g. an all-`-inf` logits row whose softmax weights sum to zero),
    /// so no token can be drawn.
    Generate {
        /// What degenerated, with the offending values.
        detail: String,
    },
    /// A discrete sampling distribution was requested over weights that are
    /// empty, negative, non-finite, or all zero (e.g. a degree-proportional
    /// start-node table over an edgeless graph), so no outcome can be
    /// drawn.
    DegenerateDistribution {
        /// What was wrong with the weights.
        detail: String,
    },
    /// An internal invariant of a serving component was violated — a bug in
    /// that component, not in the caller's input — surfaced as an error so
    /// a serving process degrades per-request instead of aborting.
    Internal {
        /// The violated invariant.
        detail: String,
    },
    /// The serving front-end has shut down (or is draining) and accepts no
    /// new work. Unlike [`Internal`](FairGenError::Internal), this is an
    /// orderly rejection the client should treat as "retry elsewhere / come
    /// back later", not a bug. Both the in-process
    /// `FairGenServer::submit`/`submit_shared` path and the network RPC
    /// layer report closure with this exact variant (and one stable wire
    /// code — see `fairgen_rpc::codes`).
    ServerClosed,
    /// The serving front-end refused the request under load: the shard
    /// queue was at capacity, the tenant's rate budget was spent, or the
    /// request's queue deadline expired before a worker reached it. Like
    /// [`ServerClosed`](FairGenError::ServerClosed) this is an orderly,
    /// typed rejection — but a *retryable* one ("back off and try again"),
    /// not "the server is going away". The network layer maps it to its own
    /// stable wire code and HTTP 429.
    Overloaded {
        /// Which admission mechanism refused the request (a stable
        /// lowercase reason such as `queue_full`, `rate_limited`, or
        /// `deadline_expired`, possibly with detail appended).
        reason: String,
    },
    /// A checkpoint failed structural validation (bad magic, version,
    /// checksum, length, or discriminant) and cannot be decoded.
    CorruptCheckpoint {
        /// What failed, with the offending values.
        detail: String,
    },
    /// A checkpoint was structurally valid but holds a model family this
    /// loader does not know how to reconstruct.
    UnknownCheckpointTag {
        /// The family tag found in the container.
        tag: String,
    },
    /// An edge-list line was neither a comment nor a `u v` pair.
    MalformedEdgeList {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

/// Workspace-wide result alias over [`FairGenError`].
pub type Result<T> = std::result::Result<T, FairGenError>;

impl std::fmt::Display for FairGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FairGenError::InvalidConfig { field, message } => {
                write!(f, "invalid config field `{field}`: {message}")
            }
            FairGenError::GraphTooSmall { nodes, min_nodes } => {
                write!(f, "graph too small: {nodes} nodes, need at least {min_nodes}")
            }
            FairGenError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a graph with {nodes} vertices")
            }
            FairGenError::LabelOutOfRange { node, label, num_classes } => {
                write!(f, "label {label} of node {node} out of range for {num_classes} classes")
            }
            FairGenError::GroupUniverseMismatch { group_universe, nodes } => {
                write!(
                    f,
                    "protected group over {group_universe} vertices used with a \
                     graph of {nodes} vertices"
                )
            }
            FairGenError::MissingProtectedGroup { gamma } => {
                write!(
                    f,
                    "parity weight γ = {gamma} > 0 with labels but no protected \
                     group S⁺; supply one or set gamma to 0"
                )
            }
            FairGenError::MissingLabels => {
                write!(f, "operation requires labels but the dataset has none")
            }
            FairGenError::Generate { detail } => {
                write!(f, "generation failed: {detail}")
            }
            FairGenError::DegenerateDistribution { detail } => {
                write!(f, "degenerate sampling distribution: {detail}")
            }
            FairGenError::Internal { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
            FairGenError::ServerClosed => {
                write!(f, "server is shut down and accepts no new work")
            }
            FairGenError::Overloaded { reason } => {
                write!(f, "server overloaded, request rejected: {reason}")
            }
            FairGenError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            FairGenError::UnknownCheckpointTag { tag } => {
                write!(f, "checkpoint holds unknown model family {tag:?}")
            }
            FairGenError::MalformedEdgeList { line, text } => {
                write!(f, "malformed edge list at line {line}: {text:?}")
            }
            FairGenError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FairGenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FairGenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FairGenError {
    fn from(e: std::io::Error) -> Self {
        FairGenError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(FairGenError, &str)> = vec![
            (
                FairGenError::InvalidConfig {
                    field: "ratio_r",
                    message: "must be in [0,1]".into(),
                },
                "ratio_r",
            ),
            (FairGenError::GraphTooSmall { nodes: 1, min_nodes: 2 }, "at least 2"),
            (FairGenError::NodeOutOfRange { node: 9, nodes: 5 }, "node 9"),
            (FairGenError::LabelOutOfRange { node: 3, label: 7, num_classes: 2 }, "label 7"),
            (FairGenError::MissingProtectedGroup { gamma: 1.0 }, "γ = 1"),
            (FairGenError::MissingLabels, "labels"),
            (
                FairGenError::Generate { detail: "degenerate softmax".into() },
                "degenerate softmax",
            ),
            (
                FairGenError::DegenerateDistribution { detail: "all weights zero".into() },
                "all weights zero",
            ),
            (FairGenError::Internal { detail: "entry vanished".into() }, "entry vanished"),
            (FairGenError::ServerClosed, "shut down"),
            (FairGenError::Overloaded { reason: "queue_full".into() }, "queue_full"),
            (
                FairGenError::CorruptCheckpoint { detail: "checksum mismatch".into() },
                "checksum",
            ),
            (FairGenError::UnknownCheckpointTag { tag: "XGen".into() }, "XGen"),
            (FairGenError::MalformedEdgeList { line: 4, text: "x".into() }, "line 4"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} missing {needle:?}");
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: FairGenError = io.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
