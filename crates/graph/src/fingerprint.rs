//! Content fingerprints for fit-once/serve-many caching.
//!
//! A serving layer wants to fit a generator **once** per distinct input and
//! answer every later request from the cached model. The cache key must be
//! a pure function of the *content* that training consumes: the graph's
//! vertex count and edge set, the task's labels and protected group, and
//! the fit seed. [`FingerprintBuilder`] folds exactly those into a 128-bit
//! [`GraphFingerprint`].
//!
//! Stability properties the serving tests rely on:
//!
//! * **Edge-order independence** — [`Graph`] canonicalizes its adjacency at
//!   construction, and [`FingerprintBuilder::add_graph`] hashes the sorted
//!   `u < v` edge stream, so two graphs built from permuted edge lists
//!   fingerprint identically.
//! * **Label-order independence** — [`FingerprintBuilder::add_labels`]
//!   sorts the `(node, class)` pairs before hashing.
//! * **Sensitivity** — every field is length- and kind-framed before
//!   hashing, so perturbing a label, a protected member, the seed, or the
//!   generator name yields a different fingerprint (up to 128-bit
//!   collisions).

use crate::graph::{Graph, NodeId};
use crate::partition::NodeSet;

/// A 128-bit content hash identifying one fit request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphFingerprint {
    hi: u64,
    lo: u64,
}

impl GraphFingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Lowercase hex rendering (32 chars) — stable across runs, safe for
    /// file names.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Reconstructs a fingerprint from its raw 128-bit value
    /// (inverse of [`GraphFingerprint::as_u128`]).
    pub fn from_u128(v: u128) -> Self {
        GraphFingerprint { hi: (v >> 64) as u64, lo: v as u64 }
    }

    /// Parses the 32-char lowercase hex rendering produced by
    /// [`GraphFingerprint::to_hex`]. Returns `None` for anything else —
    /// wrong length, uppercase, or non-hex bytes — so manifest and
    /// file-name parsing can reject foreign files instead of guessing.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        Some(Self::from_u128(v))
    }
}

impl std::fmt::Display for GraphFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental [`GraphFingerprint`] builder over two independent FNV-1a
/// streams (the second sees each byte pre-rotated, so the halves decorrelate
/// without an external hash dependency).
#[derive(Clone, Debug)]
pub struct FingerprintBuilder {
    hi: u64,
    lo: u64,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        FingerprintBuilder::new()
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl FingerprintBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        FingerprintBuilder { hi: 0xcbf2_9ce4_8422_2325, lo: 0x6c62_272e_07bb_0142 }
    }

    /// Folds raw bytes into both streams.
    pub fn add_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.hi ^= b as u64;
            self.hi = self.hi.wrapping_mul(FNV_PRIME);
            self.lo ^= (b.rotate_left(3)) as u64 ^ 0x55;
            self.lo = self.lo.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a u64 (little-endian).
    pub fn add_u64(&mut self, v: u64) -> &mut Self {
        self.add_bytes(&v.to_le_bytes())
    }

    /// Folds a usize as u64.
    pub fn add_usize(&mut self, v: usize) -> &mut Self {
        self.add_u64(v as u64)
    }

    /// Folds an `f64` via its bit pattern.
    pub fn add_f64(&mut self, v: f64) -> &mut Self {
        self.add_u64(v.to_bits())
    }

    /// Folds a bool.
    pub fn add_bool(&mut self, v: bool) -> &mut Self {
        self.add_bytes(&[v as u8])
    }

    /// Folds a length-framed string (e.g. a generator family name).
    pub fn add_str(&mut self, s: &str) -> &mut Self {
        self.add_usize(s.len());
        self.add_bytes(s.as_bytes())
    }

    /// Folds a graph's content: vertex count, edge count, and the canonical
    /// sorted `u < v` edge stream. Edge-input order does not matter because
    /// [`Graph`] canonicalizes on construction.
    pub fn add_graph(&mut self, g: &Graph) -> &mut Self {
        self.add_usize(g.n());
        self.add_usize(g.m());
        for (u, v) in g.edges() {
            self.add_u64(((u as u64) << 32) | v as u64);
        }
        self
    }

    /// Folds few-shot labels, sorted so input order does not matter.
    pub fn add_labels(&mut self, labeled: &[(NodeId, usize)]) -> &mut Self {
        let mut sorted = labeled.to_vec();
        sorted.sort_unstable();
        self.add_usize(sorted.len());
        for (node, class) in sorted {
            self.add_u64(node as u64);
            self.add_usize(class);
        }
        self
    }

    /// Folds a node set (universe + sorted members).
    pub fn add_node_set(&mut self, s: &NodeSet) -> &mut Self {
        self.add_usize(s.universe());
        self.add_usize(s.len());
        for &v in s.members() {
            self.add_u64(v as u64);
        }
        self
    }

    /// Folds an optional node set, framing presence explicitly so
    /// `None` and an empty set stay distinct.
    pub fn add_opt_node_set(&mut self, s: Option<&NodeSet>) -> &mut Self {
        match s {
            Some(set) => {
                self.add_bool(true);
                self.add_node_set(set)
            }
            None => self.add_bool(false),
        }
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> GraphFingerprint {
        // A final avalanche so short inputs still spread across all bits.
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        GraphFingerprint { hi: mix(self.hi), lo: mix(self.lo ^ self.hi.rotate_left(32)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_of(f: impl FnOnce(&mut FingerprintBuilder)) -> GraphFingerprint {
        let mut b = FingerprintBuilder::new();
        f(&mut b);
        b.finish()
    }

    #[test]
    fn stable_under_edge_reordering() {
        let edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)];
        let mut shuffled = edges;
        shuffled.reverse();
        shuffled.swap(0, 2);
        let a = fp_of(|b| {
            b.add_graph(&Graph::from_edges(4, &edges));
        });
        let b = fp_of(|b| {
            b.add_graph(&Graph::from_edges(4, &shuffled));
        });
        assert_eq!(a, b);
    }

    #[test]
    fn stable_under_label_reordering() {
        let a = fp_of(|b| {
            b.add_labels(&[(3, 1), (0, 0), (7, 2)]);
        });
        let b = fp_of(|b| {
            b.add_labels(&[(0, 0), (7, 2), (3, 1)]);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_across_perturbations() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let base = fp_of(|b| {
            b.add_graph(&g).add_labels(&[(0, 1)]).add_u64(7);
        });
        let edge_flip = fp_of(|b| {
            b.add_graph(&Graph::from_edges(4, &[(0, 1), (1, 3)]))
                .add_labels(&[(0, 1)])
                .add_u64(7);
        });
        let label_flip = fp_of(|b| {
            b.add_graph(&g).add_labels(&[(0, 0)]).add_u64(7);
        });
        let seed_flip = fp_of(|b| {
            b.add_graph(&g).add_labels(&[(0, 1)]).add_u64(8);
        });
        assert_ne!(base, edge_flip);
        assert_ne!(base, label_flip);
        assert_ne!(base, seed_flip);
    }

    #[test]
    fn none_differs_from_empty_set() {
        let a = fp_of(|b| {
            b.add_opt_node_set(None);
        });
        let b = fp_of(|b| {
            b.add_opt_node_set(Some(&NodeSet::empty(0)));
        });
        assert_ne!(a, b);
    }

    #[test]
    fn hex_rendering_is_32_lowercase_chars() {
        let fp = fp_of(|b| {
            b.add_str("TagGen");
        });
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(fp.to_string(), hex);
        assert_eq!(u128::from_str_radix(&hex, 16).expect("hex"), fp.as_u128());
    }

    #[test]
    fn hex_and_u128_round_trip() {
        let fp = fp_of(|b| {
            b.add_str("round-trip").add_u64(42);
        });
        assert_eq!(GraphFingerprint::from_u128(fp.as_u128()), fp);
        assert_eq!(GraphFingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(GraphFingerprint::from_hex("zz"), None);
        assert_eq!(GraphFingerprint::from_hex(&fp.to_hex().to_uppercase()), None);
        assert_eq!(GraphFingerprint::from_hex(&fp.to_hex()[..31]), None);
    }

    #[test]
    fn halves_are_decorrelated() {
        // A degenerate second stream would make hi == lo for simple inputs.
        let fp = fp_of(|b| {
            b.add_u64(0);
        });
        assert_ne!(fp.as_u128() >> 64, fp.as_u128() & u128::from(u64::MAX));
    }
}
