//! Induced subgraphs and ego networks.
//!
//! The paper's protected-group discrepancy R+ (Eq. 16) is measured on "the
//! 1-hop ego network with the anchor nodes from the protected group", i.e.
//! the subgraph induced by S+ together with all direct neighbors of S+.

use crate::graph::{Graph, NodeId};
use crate::partition::NodeSet;

/// Mapping between a subgraph's dense node ids and the parent graph's ids.
#[derive(Clone, Debug)]
pub struct SubgraphMap {
    /// `to_parent[sub_id] = parent_id`, sorted ascending.
    pub to_parent: Vec<NodeId>,
    /// `from_parent[parent_id] = Some(sub_id)` for included nodes.
    pub from_parent: Vec<Option<NodeId>>,
}

impl SubgraphMap {
    /// Translates a parent-graph node set into subgraph coordinates,
    /// dropping nodes outside the subgraph.
    pub fn project_set(&self, set: &NodeSet) -> NodeSet {
        let members: Vec<NodeId> =
            set.members().iter().filter_map(|&v| self.from_parent[v as usize]).collect();
        NodeSet::from_members(self.to_parent.len(), &members)
    }
}

/// The subgraph induced by `nodes` (duplicates ignored), with an id mapping.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> (Graph, SubgraphMap) {
    let set = NodeSet::from_members(g.n(), nodes);
    let to_parent: Vec<NodeId> = set.members().to_vec();
    let mut from_parent = vec![None; g.n()];
    for (i, &v) in to_parent.iter().enumerate() {
        from_parent[v as usize] = Some(i as NodeId);
    }
    let mut edges = Vec::new();
    for &v in &to_parent {
        let sv = from_parent[v as usize].expect("member has sub id");
        for &u in g.neighbors(v) {
            if u > v {
                if let Some(su) = from_parent[u as usize] {
                    edges.push((sv, su));
                }
            }
        }
    }
    (Graph::from_edges(to_parent.len(), &edges), SubgraphMap { to_parent, from_parent })
}

/// The 1-hop ego network anchored at `anchors`: the subgraph induced by the
/// anchors plus every direct neighbor of an anchor.
pub fn ego_network(g: &Graph, anchors: &[NodeId]) -> (Graph, SubgraphMap) {
    let mut include = vec![false; g.n()];
    for &a in anchors {
        include[a as usize] = true;
        for &u in g.neighbors(a) {
            include[u as usize] = true;
        }
    }
    let nodes: Vec<NodeId> = (0..g.n() as NodeId).filter(|&v| include[v as usize]).collect();
    induced_subgraph(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // 0-1-2 triangle, 2-3, 3-4, 5 isolated.
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1); // only (0,1) survives
        assert_eq!(map.to_parent, vec![0, 1, 3]);
        let s0 = map.from_parent[0].unwrap();
        let s1 = map.from_parent[1].unwrap();
        assert!(sub.has_edge(s0, s1));
    }

    #[test]
    fn induced_full_graph_is_identity() {
        let g = sample();
        let all: Vec<NodeId> = (0..6).collect();
        let (sub, _) = induced_subgraph(&g, &all);
        assert_eq!(sub.m(), g.m());
        assert_eq!(sub.n(), g.n());
    }

    #[test]
    fn ego_network_one_anchor() {
        let g = sample();
        let (sub, map) = ego_network(&g, &[2]);
        // 2's closed neighborhood = {0, 1, 2, 3}; induced edges: triangle + (2,3).
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), 4);
        assert_eq!(map.to_parent, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ego_network_isolated_anchor() {
        let g = sample();
        let (sub, map) = ego_network(&g, &[5]);
        assert_eq!(sub.n(), 1);
        assert_eq!(sub.m(), 0);
        assert_eq!(map.to_parent, vec![5]);
    }

    #[test]
    fn project_set_drops_outsiders() {
        let g = sample();
        let (_, map) = induced_subgraph(&g, &[1, 2, 3]);
        let set = NodeSet::from_members(6, &[0, 2, 3]);
        let proj = map.project_set(&set);
        assert_eq!(proj.len(), 2);
        assert_eq!(proj.universe(), 3);
    }
}
