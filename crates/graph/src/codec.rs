//! Versioned binary checkpoint codec.
//!
//! Fitted generators survive process restarts through a small, dependency-
//! free binary format. Every checkpoint is a *container*:
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────────────────
//!      0     4  magic  b"FGCK"
//!      4     2  format version (little-endian u16, currently 1)
//!      6     8  tag length L (little-endian u64)
//!     14     L  tag — UTF-8 payload kind, e.g. "ER", "TagGen", "FairGen"
//!   14+L     8  payload length P (little-endian u64)
//!   22+L     P  payload — [`Codec`]-encoded model state
//! 22+L+P     8  checksum — fnv1a(tag) XOR rotl(fnv1a(payload), 1),
//!               each an independent FNV-1a 64 pass (the rotation keeps
//!               tag and payload from cancelling when bytes swap sides)
//! ```
//!
//! All integers are little-endian; `f64`s are stored via
//! [`f64::to_bits`], so weights round-trip *bit-exactly* and a reloaded
//! model generates byte-identical graphs for the same seed. Collections are
//! length-prefixed (u64). Decoding is fully validated: a wrong magic,
//! unsupported version, truncated buffer, checksum mismatch, or trailing
//! garbage surfaces as
//! [`CorruptCheckpoint`](crate::FairGenError::CorruptCheckpoint)
//! instead of a panic or (worse) a silently wrong model.
//!
//! [`Codec`] is the per-type encode/decode trait; this crate implements it
//! for [`Graph`] and [`NodeSet`], `fairgen-nn` for its tensors and models,
//! and the generator crates for their fitted-model types. [`seal`] /
//! [`open`] wrap a payload into (out of) the container format, and
//! [`write_file`] / [`read_file`] add the filesystem trip.

use std::io::{Read as _, Write as _};
use std::path::Path;

use crate::error::{FairGenError, Result};
use crate::graph::{Graph, NodeId};
use crate::partition::NodeSet;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"FGCK";

/// Current container format version.
pub const FORMAT_VERSION: u16 = 1;

/// FNV-1a 64-bit over a byte stream — the container checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only binary writer for checkpoint payloads.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a usize as a u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` via its bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed [`Codec`] sequence.
    pub fn put_seq<T: Codec>(&mut self, items: &[T]) {
        self.put_usize(items.len());
        for item in items {
            item.encode(self);
        }
    }

    /// Writes an `Option<T>` as a presence byte plus the value.
    pub fn put_opt<T: Codec>(&mut self, v: &Option<T>) {
        match v {
            Some(inner) => {
                self.put_bool(true);
                inner.encode(self);
            }
            None => self.put_bool(false),
        }
    }
}

/// Validated binary reader over a checkpoint payload.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(detail: impl Into<String>) -> FairGenError {
    FairGenError::CorruptCheckpoint { detail: detail.into() }
}

impl<'a> Decoder<'a> {
    /// A decoder over raw payload bytes (no container framing).
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — catches truncated writes
    /// that happen to pass the checksum of a *shorter* format revision.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "unexpected end of checkpoint: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian u16.
    pub fn take_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian u32.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian u64.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Reads a u64 and converts to usize.
    pub fn take_usize(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("length {v} exceeds usize")))
    }

    /// Reads a length intended to index a collection, rejecting values that
    /// could not possibly fit in the remaining buffer (corruption guard
    /// before any large allocation).
    pub fn take_len(&mut self, min_item_bytes: usize) -> Result<usize> {
        let n = self.take_usize()?;
        let need = n.saturating_mul(min_item_bytes.max(1));
        if need > self.remaining() {
            return Err(corrupt(format!(
                "declared {n} items ({need} bytes min) but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let n = self.take_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| corrupt(format!("invalid utf-8 tag: {e}")))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.take_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed [`Codec`] sequence.
    pub fn take_seq<T: Codec>(&mut self) -> Result<Vec<T>> {
        let n = self.take_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Reads an `Option<T>` written by [`Encoder::put_opt`].
    pub fn take_opt<T: Codec>(&mut self) -> Result<Option<T>> {
        if self.take_bool()? {
            Ok(Some(T::decode(self)?))
        } else {
            Ok(None)
        }
    }
}

/// A type that round-trips through the checkpoint byte format.
///
/// Implementations must be *deterministic* (equal values encode to equal
/// bytes) and *total* on their own output (`decode(encode(x)) == x` up to
/// transient caches, which are dropped).
pub trait Codec: Sized {
    /// Appends this value to the payload.
    fn encode(&self, enc: &mut Encoder);

    /// Reads one value back, validating every length and discriminant.
    fn decode(dec: &mut Decoder) -> Result<Self>;
}

/// Wraps a payload into the container format under `tag`.
pub fn seal(tag: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + 8 + tag.len() + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(tag.len() as u64).to_le_bytes());
    out.extend_from_slice(tag.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut sum = fnv1a(tag.as_bytes());
    sum ^= fnv1a(payload).rotate_left(1);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Opens a container, verifying magic, version and checksum. Returns the
/// payload tag and a [`Decoder`] positioned at the start of the payload.
pub fn open(bytes: &[u8]) -> Result<(String, Decoder<'_>)> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.take(4)?;
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:02x?}, expected {MAGIC:02x?}")));
    }
    let version = dec.take_u16()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported checkpoint format version {version} (this build reads \
             {FORMAT_VERSION})"
        )));
    }
    let tag = dec.take_str()?;
    let payload_len = dec.take_len(1)?;
    if dec.remaining() != payload_len + 8 {
        return Err(corrupt(format!(
            "payload length {payload_len} inconsistent with container size \
             ({} bytes remain)",
            dec.remaining()
        )));
    }
    let payload = dec.take(payload_len)?;
    let declared = dec.take_u64()?;
    let mut sum = fnv1a(tag.as_bytes());
    sum ^= fnv1a(payload).rotate_left(1);
    if declared != sum {
        return Err(corrupt(format!(
            "checksum mismatch: stored {declared:#x}, computed {sum:#x}"
        )));
    }
    Ok((tag, Decoder::new(payload)))
}

/// Encodes a value and seals it into a container under `tag`.
pub fn seal_value<T: Codec>(tag: &str, value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    seal(tag, &enc.into_bytes())
}

/// Opens a container, checks the tag matches, and decodes a single value,
/// rejecting trailing bytes.
pub fn open_value<T: Codec>(expected_tag: &str, bytes: &[u8]) -> Result<T> {
    let (tag, mut dec) = open(bytes)?;
    if tag != expected_tag {
        return Err(corrupt(format!(
            "tag mismatch: checkpoint holds {tag:?}, expected {expected_tag:?}"
        )));
    }
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// Writes container bytes to a file atomically.
///
/// The bytes land in `<path>.tmp` first, are fsynced, and only then renamed
/// over the final path, so a crash mid-write can never leave a torn file
/// under the name readers look for — at worst it leaves a stray `.tmp`
/// that [`open`] never sees. After the rename the parent directory is
/// fsynced on a best-effort basis so the rename itself survives a crash.
pub fn write_file<P: AsRef<Path>>(path: P, bytes: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(parent) = path.parent() {
        // Directory fsync makes the rename durable; some filesystems refuse
        // to open directories, so failure here is not an error.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// The scratch path [`write_file`] stages bytes in before the atomic
/// rename: `<path>.tmp`. Exposed so crash-recovery sweeps (the model
/// store's startup scan) can recognise and clear leftovers from a write
/// that died before its rename.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Reads container bytes from a file.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Vec<u8>> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self> {
        dec.take_u64()
    }
}

impl Codec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(*self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self> {
        dec.take_usize()
    }
}

impl Codec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self> {
        dec.take_f64()
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self> {
        dec.take_bool()
    }
}

impl Codec for Graph {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.n());
        enc.put_usize(self.m());
        for (u, v) in self.edges() {
            enc.put_u32(u);
            enc.put_u32(v);
        }
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        let n = dec.take_usize()?;
        let m = dec.take_len(8)?;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
        for _ in 0..m {
            let u = dec.take_u32()?;
            let v = dec.take_u32()?;
            edges.push((u, v));
        }
        let g = Graph::try_from_edges(n, &edges)?;
        if g.m() != m {
            return Err(corrupt(format!(
                "edge list collapsed from {m} to {} edges (duplicates or self-loops)",
                g.m()
            )));
        }
        Ok(g)
    }
}

impl Codec for NodeSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.universe());
        enc.put_usize(self.len());
        for &v in self.members() {
            enc.put_u32(v);
        }
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        let universe = dec.take_usize()?;
        let len = dec.take_len(4)?;
        let mut members: Vec<NodeId> = Vec::with_capacity(len);
        for _ in 0..len {
            let v = dec.take_u32()?;
            if v as usize >= universe {
                return Err(corrupt(format!(
                    "node-set member {v} outside universe {universe}"
                )));
            }
            members.push(v);
        }
        let set = NodeSet::from_members(universe, &members);
        if set.len() != len {
            return Err(corrupt(format!(
                "node-set members collapsed from {len} to {} (duplicates)",
                set.len()
            )));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_bool(true);
        enc.put_u16(513);
        enc.put_u32(70_000);
        enc.put_u64(u64::MAX);
        enc.put_usize(42);
        enc.put_f64(-0.0);
        enc.put_f64(f64::NAN);
        enc.put_str("hål∅");
        enc.put_f64_slice(&[1.5, -2.5]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert!(dec.take_bool().unwrap());
        assert_eq!(dec.take_u16().unwrap(), 513);
        assert_eq!(dec.take_u32().unwrap(), 70_000);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        assert_eq!(dec.take_usize().unwrap(), 42);
        assert_eq!(dec.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.take_f64().unwrap().is_nan());
        assert_eq!(dec.take_str().unwrap(), "hål∅");
        assert_eq!(dec.take_f64_vec().unwrap(), vec![1.5, -2.5]);
        dec.finish().expect("fully consumed");
    }

    #[test]
    fn graph_roundtrips_bit_exactly() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 5), (1, 4), (3, 4)]);
        let bytes = seal_value("Graph", &g);
        let back: Graph = open_value("Graph", &bytes).expect("roundtrip");
        assert_eq!(back, g);
    }

    #[test]
    fn node_set_roundtrips() {
        let s = NodeSet::from_members(9, &[0, 4, 8]);
        let bytes = seal_value("NodeSet", &s);
        let back: NodeSet = open_value("NodeSet", &bytes).expect("roundtrip");
        assert_eq!(back, s);
        let empty = NodeSet::empty(3);
        let bytes = seal_value("NodeSet", &empty);
        assert_eq!(open_value::<NodeSet>("NodeSet", &bytes).expect("roundtrip"), empty);
    }

    #[test]
    fn option_and_seq_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_opt::<u64>(&Some(9));
        enc.put_opt::<u64>(&None);
        enc.put_seq(&[1.0f64, 2.0]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_opt::<u64>().unwrap(), Some(9));
        assert_eq!(dec.take_opt::<u64>().unwrap(), None);
        assert_eq!(dec.take_seq::<f64>().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn container_verifies_magic_version_checksum() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let good = seal_value("Graph", &g);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            open(&bad_magic),
            Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("magic")
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            open(&bad_version),
            Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("version")
        ));

        let mut flipped = good.clone();
        let mid = flipped.len() - 12; // inside the payload
        flipped[mid] ^= 0xff;
        assert!(matches!(
            open(&flipped),
            Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("checksum")
        ));

        let truncated = &good[..good.len() - 3];
        assert!(open(truncated).is_err());
    }

    #[test]
    fn tag_mismatch_is_rejected() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let bytes = seal_value("Graph", &g);
        assert!(matches!(
            open_value::<Graph>("NodeSet", &bytes),
            Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("tag mismatch")
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = Encoder::new();
        Graph::from_edges(2, &[(0, 1)]).encode(&mut enc);
        enc.put_u8(0); // stray byte inside the sealed payload
        let bytes = seal("Graph", &enc.into_bytes());
        assert!(matches!(
            open_value::<Graph>("Graph", &bytes),
            Err(FairGenError::CorruptCheckpoint { detail }) if detail.contains("trailing")
        ));
    }

    #[test]
    fn hostile_length_prefix_fails_before_allocating() {
        // A declared length of u64::MAX must not attempt a huge allocation.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.take_len(8).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let dir = std::env::temp_dir().join("fairgen-codec-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("graph.ckpt");
        write_file(&path, &seal_value("Graph", &g)).expect("write");
        let back: Graph =
            open_value("Graph", &read_file(&path).expect("read")).expect("decode");
        assert_eq!(back, g);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_surfaces_io_error() {
        let err = read_file("/nonexistent/fairgen/nope.ckpt").unwrap_err();
        assert!(matches!(err, FairGenError::Io(_)));
    }
}
