//! Property tests for the server's shard routing (`fingerprint mod
//! shards`): the assignment must be **stable** — the same request content
//! always lands on the same shard, which is what makes "one fit per
//! fingerprint" hold without cross-shard locking — and **uniform-ish**, so
//! no shard sits idle while its siblings drown.

use fairgen_baselines::TaskSpec;
use fairgen_graph::Graph;
use fairgen_serve::{fingerprint_request, shard_for};
use proptest::prelude::*;

/// Strategy: `(n, edges)` with possibly duplicated/self-loop raw edges.
fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_m)
            .prop_map(move |edges| (n, edges))
    })
}

/// Deterministic permutation of an edge list driven by a seed.
fn permuted(edges: &[(u32, u32)], seed: u64) -> Vec<(u32, u32)> {
    let mut out = edges.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x2545_f491_4f6c_dd1d);
        let j = (state % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assignment_is_stable_across_calls_and_content_representations(
        input in arb_edges(20, 60),
        seed in 0u64..1000,
        shards in 1usize..9,
    ) {
        let (n, edges) = input;
        let task = TaskSpec::unlabeled();
        let fp = fingerprint_request("X", &Graph::from_edges(n, &edges), &task, 7);
        // Pure in the fingerprint: same fp, same shard, every call.
        prop_assert_eq!(shard_for(fp, shards), shard_for(fp, shards));
        // Stable under content re-representation: a permuted edge list is
        // the same graph, so it must route to the same shard.
        let fp2 = fingerprint_request(
            "X", &Graph::from_edges(n, &permuted(&edges, seed)), &task, 7,
        );
        prop_assert_eq!(shard_for(fp, shards), shard_for(fp2, shards));
        // The assignment is in range, and one shard means shard 0.
        prop_assert!(shard_for(fp, shards) < shards);
        prop_assert_eq!(shard_for(fp, 1), 0);
    }

    #[test]
    fn no_shard_starves_across_64_distinct_fingerprints(
        input in arb_edges(16, 40),
    ) {
        // ≥64 distinct fingerprints (one per fit seed over a random base
        // graph) spread over 4 shards: every shard must receive at least
        // one. A mod-128-bit-hash assignment that starved a shard here
        // would mean the fingerprint stream is badly non-uniform.
        let (n, edges) = input;
        let g = Graph::from_edges(n, &edges);
        let task = TaskSpec::unlabeled();
        let mut counts = [0usize; 4];
        let mut fps = std::collections::HashSet::new();
        for fit_seed in 0..64u64 {
            let fp = fingerprint_request("X", &g, &task, fit_seed);
            prop_assert!(fps.insert(fp), "fit seeds must yield distinct fingerprints");
            counts[shard_for(fp, 4)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count > 0,
                "shard {} received 0 of 64 distinct fingerprints ({:?})", shard, counts
            );
        }
    }
}
