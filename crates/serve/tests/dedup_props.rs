//! Model-based property tests for the cross-request [`DedupCache`]: under
//! random interleavings of insert / lookup (and the evictions they force),
//! the cache must never return a sample for the wrong key, never exceed its
//! capacity, and evict exactly the least-recently-used entry (ties on the
//! key, like the model registry).

use std::collections::HashMap;

use fairgen_graph::{FingerprintBuilder, Graph, GraphFingerprint};
use fairgen_serve::{DedupCache, DedupKey};
use proptest::prelude::*;

const TAGS: u64 = 4;
const SEEDS: u64 = 8;

fn fp(tag: u64) -> GraphFingerprint {
    let mut b = FingerprintBuilder::new();
    b.add_u64(tag);
    b.finish()
}

fn key(tag: u64, seed: u64) -> DedupKey {
    DedupKey { fingerprint: fp(tag), gen_seed: seed }
}

/// Every (tag, seed) pair gets a structurally unique graph — a ring whose
/// size encodes the pair — so a wrong-key return is detectable from the
/// value alone.
fn graph_for(tag: u64, seed: u64) -> Graph {
    let n = (3 + tag * SEEDS + seed) as u32;
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

/// Reference LRU model mirroring the cache's documented discipline: a clock
/// bumped on every operation, recency refreshed on hit and insert, victim =
/// min `(last_used, key)`.
struct ModelLru {
    capacity: usize,
    clock: u64,
    slots: HashMap<DedupKey, ((u64, u64), u64)>, // key -> ((tag, seed), last_used)
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, clock: 0, slots: HashMap::new() }
    }

    fn lookup(&mut self, k: DedupKey) -> Option<(u64, u64)> {
        self.clock += 1;
        let clock = self.clock;
        self.slots.get_mut(&k).map(|entry| {
            entry.1 = clock;
            entry.0
        })
    }

    fn insert(&mut self, k: DedupKey, tag: u64, seed: u64) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        self.slots.insert(k, ((tag, seed), self.clock));
        while self.slots.len() > self.capacity {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(&k, &(_, used))| (used, k))
                .map(|(&k, _)| k)
                .expect("over capacity");
            self.slots.remove(&victim);
        }
    }
}

/// One scripted operation: `kind` even = insert, odd = lookup.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    proptest::collection::vec((0u8..2, 0..TAGS, 0..SEEDS), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_interleavings_never_serve_the_wrong_key(
        ops in arb_ops(),
        capacity in 0usize..6,
    ) {
        let mut cache = DedupCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for &(kind, tag, seed) in &ops {
            let k = key(tag, seed);
            if kind == 0 {
                cache.insert(k, graph_for(tag, seed));
                model.insert(k, tag, seed);
            } else {
                let got = cache.lookup(k).cloned();
                let want = model.lookup(k);
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some((t, s))) => {
                        // The value must be the one inserted under exactly
                        // this key — a ring whose size encodes (tag, seed).
                        prop_assert_eq!(g, graph_for(t, s), "wrong-key value");
                        prop_assert_eq!((t, s), (tag, seed));
                    }
                    (got, want) => {
                        return Err(TestCaseError::Fail(format!(
                            "hit/miss divergence on {k:?}: cache {:?}, model {:?}",
                            got.map(|g| g.n()),
                            want
                        )));
                    }
                }
            }
            // The capacity bound is an invariant, not a final condition.
            prop_assert!(cache.len() <= capacity, "cache grew past its budget");
            prop_assert_eq!(cache.len(), model.slots.len());
        }
        // The resident sets agree exactly — evictions picked the same
        // (LRU, key-tiebroken) victims throughout.
        for tag in 0..TAGS {
            for seed in 0..SEEDS {
                let k = key(tag, seed);
                prop_assert_eq!(
                    cache.contains(k),
                    model.slots.contains_key(&k),
                    "residency diverged for {:?}", k
                );
            }
        }
    }

    #[test]
    fn lookup_all_only_fires_on_full_residency(
        ops in arb_ops(),
        capacity in 1usize..6,
        probe_tag in 0..TAGS,
    ) {
        let mut cache = DedupCache::new(capacity);
        for &(kind, tag, seed) in &ops {
            if kind == 0 {
                cache.insert(key(tag, seed), graph_for(tag, seed));
            } else {
                let _ = cache.lookup(key(tag, seed));
            }
        }
        let seeds = [0u64, 1];
        let all_resident = seeds.iter().all(|&s| cache.contains(key(probe_tag, s)));
        match cache.lookup_all(fp(probe_tag), &seeds) {
            Some(graphs) => {
                prop_assert!(all_resident, "partial residency must not dedup");
                prop_assert_eq!(graphs.len(), seeds.len());
                for (&s, g) in seeds.iter().zip(&graphs) {
                    prop_assert_eq!(g, &graph_for(probe_tag, s), "wrong-key batch value");
                }
            }
            None => prop_assert!(!all_resident, "full residency must dedup"),
        }
    }
}
