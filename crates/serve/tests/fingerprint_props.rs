//! Property tests for the serving cache key: a [`GraphFingerprint`] must be
//! stable under edge reordering and distinct across label / protected-group
//! perturbations — otherwise the registry either refits needlessly or,
//! much worse, serves the wrong model.

use fairgen_baselines::TaskSpec;
use fairgen_graph::{Graph, NodeId, NodeSet};
use fairgen_serve::fingerprint_request;
use proptest::prelude::*;

/// Strategy: `(n, edges)` with possibly duplicated/self-loop raw edges, the
/// kind of list real loaders produce.
fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_m)
            .prop_map(move |edges| (n, edges))
    })
}

/// Deterministic permutation of an edge list driven by a seed.
fn permuted(edges: &[(u32, u32)], seed: u64) -> Vec<(u32, u32)> {
    let mut out = edges.to_vec();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        // SplitMix-style step; only determinism matters here.
        state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x2545_f491_4f6c_dd1d);
        let j = (state % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stable_under_edge_reordering_and_orientation(
        input in arb_edges(20, 60),
        seed in 0u64..1000,
    ) {
        let (n, edges) = input;
        let task = TaskSpec::unlabeled();
        let base = fingerprint_request("X", &Graph::from_edges(n, &edges), &task, 7);
        // Permute the list…
        let shuffled = permuted(&edges, seed);
        prop_assert_eq!(
            base,
            fingerprint_request("X", &Graph::from_edges(n, &shuffled), &task, 7)
        );
        // …and flip every orientation.
        let flipped: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        prop_assert_eq!(
            base,
            fingerprint_request("X", &Graph::from_edges(n, &flipped), &task, 7)
        );
    }

    #[test]
    fn stable_under_label_reordering(
        input in arb_edges(16, 40),
        seed in 0u64..1000,
    ) {
        let (n, edges) = input;
        let g = Graph::from_edges(n, &edges);
        let labeled: Vec<(NodeId, usize)> =
            (0..n as u32).step_by(2).map(|v| (v, (v % 2) as usize)).collect();
        let mut shuffled = labeled.clone();
        if shuffled.len() > 1 {
            let j = (seed as usize) % shuffled.len();
            shuffled.swap(0, j);
            shuffled.reverse();
        }
        let a = TaskSpec::new(labeled, 2, None);
        let b = TaskSpec::new(shuffled, 2, None);
        prop_assert_eq!(
            fingerprint_request("X", &g, &a, 3),
            fingerprint_request("X", &g, &b, 3)
        );
    }

    #[test]
    fn distinct_across_label_perturbations(input in arb_edges(16, 40), node in 0u32..16) {
        let (n, edges) = input;
        prop_assume!((node as usize) < n);
        let g = Graph::from_edges(n, &edges);
        let base_task = TaskSpec::new(vec![(node, 0)], 2, None);
        let base = fingerprint_request("X", &g, &base_task, 3);
        // Flip the class.
        let relabeled = TaskSpec::new(vec![(node, 1)], 2, None);
        prop_assert_ne!(base, fingerprint_request("X", &g, &relabeled, 3));
        // Drop the label.
        let unlabeled = TaskSpec::new(Vec::new(), 2, None);
        prop_assert_ne!(base, fingerprint_request("X", &g, &unlabeled, 3));
    }

    #[test]
    fn distinct_across_group_perturbations(input in arb_edges(16, 40), member in 0u32..16) {
        let (n, edges) = input;
        prop_assume!((member as usize) < n);
        let g = Graph::from_edges(n, &edges);
        let with = TaskSpec {
            protected: Some(NodeSet::from_members(n, &[member])),
            ..TaskSpec::unlabeled()
        };
        let without = TaskSpec::unlabeled();
        let other = TaskSpec {
            protected: Some(NodeSet::from_members(n + 1, &[member])),
            ..TaskSpec::unlabeled()
        };
        let a = fingerprint_request("X", &g, &with, 3);
        prop_assert_ne!(a, fingerprint_request("X", &g, &without, 3));
        prop_assert_ne!(a, fingerprint_request("X", &g, &other, 3));
    }

    #[test]
    fn distinct_across_seed_and_family(input in arb_edges(16, 40), seed in 0u64..1_000_000) {
        let (n, edges) = input;
        let g = Graph::from_edges(n, &edges);
        let task = TaskSpec::unlabeled();
        let base = fingerprint_request("FairGen", &g, &task, seed);
        prop_assert_ne!(base, fingerprint_request("FairGen", &g, &task, seed.wrapping_add(1)));
        prop_assert_ne!(base, fingerprint_request("TagGen", &g, &task, seed));
    }
}
