//! Registry behaviour: fit-once/serve-many, batching, LRU, spill and warm
//! start.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
use fairgen_baselines::{ErGenerator, GraphGenerator, TaskSpec};
use fairgen_core::error::Result;
use fairgen_core::{FairGenConfig, FairGenGenerator};
use fairgen_graph::Graph;
use fairgen_serve::{GenerateRequest, ModelRegistry, RegistryConfig, ServedFrom};

/// Wraps a generator and counts how many times `fit_persistable` runs —
/// the registry's whole point is keeping this number at one per key.
/// (Atomic because `PersistableGraphGenerator` is `Send + Sync` — the
/// serving front-end shares generators across shard workers.)
struct CountingGen<G> {
    inner: G,
    fits: Arc<AtomicUsize>,
}

impl<G: GraphGenerator> GraphGenerator for CountingGen<G> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn fit(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn fairgen_baselines::FittedGenerator>> {
        self.inner.fit(g, task, seed)
    }
}

impl<G: PersistableGraphGenerator> PersistableGraphGenerator for CountingGen<G> {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        self.fits.fetch_add(1, Ordering::SeqCst);
        self.inner.fit_persistable(g, task, seed)
    }
}

fn counting_er() -> (Box<dyn PersistableGraphGenerator>, Arc<AtomicUsize>) {
    let fits = Arc::new(AtomicUsize::new(0));
    (Box::new(CountingGen { inner: ErGenerator, fits: Arc::clone(&fits) }), fits)
}

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fairgen-serve-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn second_request_served_with_zero_refits() {
    let (gen, fits) = counting_er();
    let mut registry = ModelRegistry::new(gen);
    let g = ring(20);
    let task = TaskSpec::unlabeled();

    let first = registry.handle(&GenerateRequest::single(&g, &task, 42, 1)).expect("first");
    assert_eq!(first.served_from, ServedFrom::ColdFit);
    assert_eq!(fits.load(Ordering::SeqCst), 1);

    let second =
        registry.handle(&GenerateRequest::new(&g, &task, 42, vec![2, 3])).expect("second");
    assert_eq!(second.served_from, ServedFrom::Memory);
    assert_eq!(
        fits.load(Ordering::SeqCst),
        1,
        "second request must be served with zero refits"
    );
    assert_eq!(second.graphs.len(), 2);
    assert_eq!(first.fingerprint, second.fingerprint);

    // Same sample seed through the registry == direct fit + generate.
    let mut direct = ErGenerator.fit(&g, &task, 42).expect("fit");
    assert_eq!(first.graphs[0], direct.generate(1).expect("generate"));

    let stats = registry.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.cold_fits, 1);
    assert_eq!(stats.memory_hits, 1);
}

#[test]
fn distinct_fit_inputs_get_distinct_models() {
    let (gen, fits) = counting_er();
    let mut registry = ModelRegistry::new(gen);
    let g = ring(16);
    let h = ring(18);
    let task = TaskSpec::unlabeled();
    registry.handle(&GenerateRequest::single(&g, &task, 1, 0)).expect("g");
    registry.handle(&GenerateRequest::single(&h, &task, 1, 0)).expect("h");
    registry.handle(&GenerateRequest::single(&g, &task, 2, 0)).expect("g, new fit seed");
    assert_eq!(fits.load(Ordering::SeqCst), 3);
    assert_eq!(registry.len(), 3);
}

#[test]
fn handle_batch_coalesces_same_key_requests() {
    let (gen, fits) = counting_er();
    let mut registry = ModelRegistry::new(gen);
    let g = ring(14);
    let h = ring(15);
    let task = TaskSpec::unlabeled();
    let reqs = vec![
        GenerateRequest::new(&g, &task, 7, vec![1, 2]),
        GenerateRequest::single(&h, &task, 7, 9),
        GenerateRequest::single(&g, &task, 7, 3),
    ];
    let responses = registry.handle_batch(&reqs).expect("batch");
    assert_eq!(fits.load(Ordering::SeqCst), 2, "three requests over two keys must fit twice");
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0].graphs.len(), 2);
    assert_eq!(responses[1].graphs.len(), 1);
    assert_eq!(responses[2].graphs.len(), 1);
    assert_eq!(responses[0].fingerprint, responses[2].fingerprint);
    assert_ne!(responses[0].fingerprint, responses[1].fingerprint);

    // Batched outputs are per-seed identical to individual handling.
    let mut solo = ModelRegistry::new(Box::new(ErGenerator));
    let alone = solo.handle(&GenerateRequest::single(&g, &task, 7, 3)).expect("solo");
    assert_eq!(responses[2].graphs[0], alone.graphs[0]);
}

#[test]
fn lru_eviction_respects_budget_and_recency() {
    let (gen, fits) = counting_er();
    let mut registry = ModelRegistry::with_config(
        gen,
        RegistryConfig { capacity: 2, checkpoint_dir: None, ..RegistryConfig::default() },
    )
    .expect("valid config");
    let task = TaskSpec::unlabeled();
    let (a, b, c) = (ring(10), ring(11), ring(12));
    let fp_a = registry.fingerprint(&a, &task, 0);
    let fp_b = registry.fingerprint(&b, &task, 0);

    registry.handle(&GenerateRequest::single(&a, &task, 0, 1)).expect("a");
    registry.handle(&GenerateRequest::single(&b, &task, 0, 1)).expect("b");
    // Touch `a` so `b` becomes the LRU victim.
    registry.handle(&GenerateRequest::single(&a, &task, 0, 2)).expect("a again");
    registry.handle(&GenerateRequest::single(&c, &task, 0, 1)).expect("c evicts b");

    assert_eq!(registry.len(), 2);
    assert!(registry.contains(fp_a), "recently used entry must survive");
    assert!(!registry.contains(fp_b), "LRU entry must be evicted");
    assert_eq!(registry.stats().evictions, 1);

    // A re-request for the victim refits (no checkpoint dir to warm from).
    let again = registry.handle(&GenerateRequest::single(&b, &task, 0, 1)).expect("b refit");
    assert_eq!(again.served_from, ServedFrom::ColdFit);
    assert_eq!(fits.load(Ordering::SeqCst), 4);
}

#[test]
fn eviction_spills_and_warm_starts_from_checkpoint() {
    let dir = temp_dir("spill");
    let (gen, fits) = counting_er();
    let mut registry = ModelRegistry::with_config(
        gen,
        RegistryConfig {
            capacity: 1,
            checkpoint_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        },
    )
    .expect("valid config");
    let task = TaskSpec::unlabeled();
    let (a, b) = (ring(10), ring(11));

    let cold = registry.handle(&GenerateRequest::single(&a, &task, 3, 5)).expect("a");
    registry.handle(&GenerateRequest::single(&b, &task, 3, 5)).expect("b evicts+spills a");
    assert_eq!(registry.stats().spills, 1);

    // `a` comes back from disk — no refit, identical output.
    let warm = registry.handle(&GenerateRequest::single(&a, &task, 3, 5)).expect("a warm");
    assert_eq!(warm.served_from, ServedFrom::Checkpoint);
    assert_eq!(warm.graphs, cold.graphs, "warm-started model must generate identically");
    assert_eq!(fits.load(Ordering::SeqCst), 2, "warm start must not refit");
    assert_eq!(registry.stats().checkpoint_loads, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_registry_warm_starts_from_a_previous_process() {
    // Simulated restart: registry 1 spills, registry 2 (fresh) reloads.
    let dir = temp_dir("restart");
    let g = ring(12);
    let task = TaskSpec::unlabeled();
    let cfg = RegistryConfig {
        capacity: 4,
        checkpoint_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    };

    let (gen1, _) = counting_er();
    let mut first = ModelRegistry::with_config(gen1, cfg.clone()).expect("valid config");
    let original = first.handle(&GenerateRequest::single(&g, &task, 8, 2)).expect("cold");
    assert_eq!(first.spill_all().expect("spill"), 1);
    drop(first);

    let (gen2, fits2) = counting_er();
    let mut second = ModelRegistry::with_config(gen2, cfg).expect("valid config");
    let revived = second.handle(&GenerateRequest::single(&g, &task, 8, 2)).expect("warm");
    assert_eq!(revived.served_from, ServedFrom::Checkpoint);
    assert_eq!(revived.graphs, original.graphs);
    assert_eq!(fits2.load(Ordering::SeqCst), 0, "the restarted process never refits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fairgen_served_through_the_registry() {
    // The flagship model behind the same interface: fit once, serve many.
    let lg = fairgen_data::toy_two_community(5);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    let task = TaskSpec::new(labeled, lg.num_classes, lg.protected.clone());
    let mut registry =
        ModelRegistry::new(Box::new(FairGenGenerator::new(FairGenConfig::test_budget())));
    let first =
        registry.handle(&GenerateRequest::new(&lg.graph, &task, 11, vec![1, 2])).expect("cold");
    assert_eq!(first.served_from, ServedFrom::ColdFit);
    let second =
        registry.handle(&GenerateRequest::single(&lg.graph, &task, 11, 1)).expect("warm");
    assert_eq!(second.served_from, ServedFrom::Memory);
    assert_eq!(first.graphs[0], second.graphs[0], "same sample seed, same draw");
    assert_eq!(registry.stats().cold_fits, 1);
}

#[test]
fn distinct_hyperparameters_get_distinct_keys() {
    // A checkpoint dir shared by a test-budget registry and a production
    // registry must never cross-serve models: the config is part of the key.
    use fairgen_baselines::GaeGenerator;
    let g = ring(10);
    let task = TaskSpec::unlabeled();
    let small = ModelRegistry::new(Box::new(GaeGenerator { dim: 4, epochs: 2, lr: 0.1 }));
    let big = ModelRegistry::new(Box::new(GaeGenerator { dim: 24, epochs: 40, lr: 0.05 }));
    assert_ne!(
        small.fingerprint(&g, &task, 1),
        big.fingerprint(&g, &task, 1),
        "different hyperparameters must map to different cache keys"
    );
    // Same config, same key — a restarted process still warm-starts.
    let again = ModelRegistry::new(Box::new(GaeGenerator { dim: 4, epochs: 2, lr: 0.1 }));
    assert_eq!(small.fingerprint(&g, &task, 1), again.fingerprint(&g, &task, 1));
}

#[test]
fn batched_stats_stay_per_request() {
    let (gen, _) = counting_er();
    let mut registry = ModelRegistry::new(gen);
    let g = ring(14);
    let task = TaskSpec::unlabeled();
    let reqs = vec![
        GenerateRequest::single(&g, &task, 7, 1),
        GenerateRequest::single(&g, &task, 7, 2),
        GenerateRequest::single(&g, &task, 7, 3),
    ];
    registry.handle_batch(&reqs).expect("batch");
    let stats = registry.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(
        stats.requests,
        stats.cold_fits + stats.memory_hits + stats.checkpoint_loads,
        "every request must be attributed to exactly one source"
    );
}

#[test]
fn clean_checkpoint_loads_are_not_respilled() {
    // A model warm-started from its own checkpoint and never refit must not
    // be written back on eviction or spill_all — that is pure wasted IO.
    let dir = temp_dir("no-respill");
    let cfg = RegistryConfig {
        capacity: 1,
        checkpoint_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    };
    let task = TaskSpec::unlabeled();
    let (a, b) = (ring(10), ring(11));

    let (gen1, _) = counting_er();
    let mut registry = ModelRegistry::with_config(gen1, cfg.clone()).expect("valid config");
    registry.handle(&GenerateRequest::single(&a, &task, 3, 5)).expect("a cold");
    // spill_all writes the dirty cold fit once; a second call writes nothing.
    assert_eq!(registry.spill_all().expect("spill"), 1);
    assert_eq!(registry.spill_all().expect("spill again"), 0);
    assert_eq!(registry.stats().spills, 1);

    // Evicting the now-clean `a` (by touching `b`) must not rewrite it.
    registry.handle(&GenerateRequest::single(&b, &task, 3, 5)).expect("b evicts a");
    assert_eq!(registry.stats().evictions, 1);
    assert_eq!(registry.stats().spills, 1, "clean victim `a` must not be respilled");

    // Warm-start `a` back: this evicts the dirty cold fit `b`, which *does*
    // spill — eviction still demotes fresh training work to disk.
    let warm = registry.handle(&GenerateRequest::single(&a, &task, 3, 5)).expect("a warm");
    assert_eq!(warm.served_from, ServedFrom::Checkpoint);
    assert_eq!(registry.stats().evictions, 2);
    assert_eq!(registry.stats().spills, 2, "dirty victim `b` must spill");

    // And `b` warm-started back in turn evicts the clean reload of `a`
    // without touching the file again.
    let warm_b = registry.handle(&GenerateRequest::single(&b, &task, 3, 5)).expect("b warm");
    assert_eq!(warm_b.served_from, ServedFrom::Checkpoint);
    assert_eq!(registry.stats().evictions, 3);
    assert_eq!(registry.stats().spills, 2, "clean victim must not be respilled");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_victim_is_deterministic_across_runs() {
    // The victim must be a pure function of the request history, never
    // HashMap iteration order: two registries fed the same sequence evict
    // the same keys.
    let task = TaskSpec::unlabeled();
    let graphs: Vec<Graph> = (10..18).map(ring).collect();
    let resident = |registry: &ModelRegistry| -> Vec<String> {
        graphs
            .iter()
            .filter(|g| registry.contains(registry.fingerprint(g, &task, 0)))
            .map(|g| g.n().to_string())
            .collect()
    };
    let mut survivors = Vec::new();
    for _run in 0..2 {
        let (gen, _) = counting_er();
        let mut registry = ModelRegistry::with_config(
            gen,
            RegistryConfig { capacity: 3, checkpoint_dir: None, ..RegistryConfig::default() },
        )
        .expect("valid config");
        for g in &graphs {
            registry.handle(&GenerateRequest::single(g, &task, 0, 1)).expect("serve");
        }
        assert_eq!(registry.len(), 3);
        survivors.push(resident(&registry));
    }
    assert_eq!(survivors[0], survivors[1], "victim selection must be deterministic");
}

#[test]
fn degenerate_graph_fails_the_request_not_the_process() {
    // An all-isolated graph has no valid walk start node; a serve request
    // over it must come back as a plain (typed-error or graceful) response,
    // never a panic that kills the serving process.
    use fairgen_baselines::{NetGanGenerator, TagGenGenerator};
    let g = Graph::empty(6);
    let task = TaskSpec::unlabeled();
    for gen in [
        Box::new(NetGanGenerator::default()) as Box<dyn PersistableGraphGenerator>,
        Box::new(TagGenGenerator::default()),
    ] {
        let mut registry = ModelRegistry::new(gen);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.handle(&GenerateRequest::single(&g, &task, 1, 2))
        }));
        let response = result.expect("degenerate input must not panic");
        if let Ok(resp) = response {
            // Walk-LM families degrade gracefully: nothing was learned, the
            // draw is the empty graph.
            assert!(resp.graphs.iter().all(|out| out.m() == 0));
        }
    }
}

#[test]
fn zero_capacity_is_rejected() {
    let (gen, _) = counting_er();
    assert!(matches!(
        ModelRegistry::with_config(
            gen,
            RegistryConfig { capacity: 0, checkpoint_dir: None, ..RegistryConfig::default() }
        ),
        Err(fairgen_core::FairGenError::InvalidConfig { field: "capacity", .. })
    ));
}

#[test]
fn fit_errors_propagate_and_poison_nothing() {
    let (gen, _) = counting_er();
    let mut registry = ModelRegistry::new(gen);
    let g = ring(8);
    let bad = TaskSpec::new(vec![(99, 0)], 1, None);
    assert!(registry.handle(&GenerateRequest::single(&g, &bad, 0, 0)).is_err());
    assert!(registry.is_empty(), "failed fit must not cache anything");
    let good = TaskSpec::unlabeled();
    assert!(registry.handle(&GenerateRequest::single(&g, &good, 0, 0)).is_ok());
}
