//! Admission-control behavior of [`FairGenServer`] under overload.
//!
//! The contract these tests pin:
//!
//! * **Zero hangs, one typed answer each** — every submission either enters
//!   the queue (and its `PendingResponse` resolves) or returns a typed
//!   error immediately; `accepted + shed == offered` exactly.
//! * **Distinct rejections** — a full queue answers
//!   [`FairGenError::Overloaded`] (`queue_full`), a shut-down server
//!   answers [`FairGenError::ServerClosed`]; deadline sheds answer
//!   `Overloaded` (`deadline_expired`); rate limiting answers `Overloaded`
//!   (`rate_limited`). Never a hang, never an untyped failure.
//! * **Accepted work is untouched** — responses for admitted requests stay
//!   byte-identical to the sequential [`ModelRegistry`] oracle; admission
//!   only decides *whether* work runs, never *what* it computes.
//! * **No tenant starves** — under 3× capacity from two greedy bulk
//!   tenants and one interactive tenant, every tenant gets work through.
//!
//! Overload is made deterministic with a gate generator: the single shard
//! worker blocks inside `fit` until the test releases it, so the queue
//! fills to exactly its capacity with no timing dependence.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
use fairgen_baselines::{ErGenerator, FittedGenerator, GraphGenerator, TaskSpec};
use fairgen_core::error::{FairGenError, Result};
use fairgen_graph::Graph;
use fairgen_serve::{
    AdmissionConfig, DropReason, FairGenServer, GenerateRequest, Lane, ManualClock,
    ModelRegistry, RateConfig, ServerConfig, SubmitOptions, TenantId,
};

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

/// A latch pair: the generator announces it entered `fit`, then parks until
/// the test releases it.
#[derive(Default)]
struct Gate {
    started: (Mutex<bool>, Condvar),
    released: (Mutex<bool>, Condvar),
}

impl Gate {
    fn enter(&self) {
        *self.started.0.lock().expect("gate") = true;
        self.started.1.notify_all();
        let mut released = self.released.0.lock().expect("gate");
        while !*released {
            released = self.released.1.wait(released).expect("gate");
        }
    }

    fn wait_started(&self) {
        let mut started = self.started.0.lock().expect("gate");
        while !*started {
            started = self.started.1.wait(started).expect("gate");
        }
    }

    fn release(&self) {
        *self.released.0.lock().expect("gate") = true;
        self.released.1.notify_all();
    }
}

/// Delegates to [`ErGenerator`] but blocks the first (and any later) fit on
/// the gate — the deterministic way to hold a shard worker busy while the
/// test fills its queue.
struct GateGen {
    gate: Arc<Gate>,
}

impl GraphGenerator for GateGen {
    fn name(&self) -> &'static str {
        ErGenerator.name()
    }
    fn fit(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Box<dyn FittedGenerator>> {
        self.gate.enter();
        ErGenerator.fit(g, task, seed)
    }
}

impl PersistableGraphGenerator for GateGen {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        self.gate.enter();
        ErGenerator.fit_persistable(g, task, seed)
    }
}

fn gated_server(gate: &Arc<Gate>, admission: AdmissionConfig) -> FairGenServer {
    let cfg =
        ServerConfig { shards: 1, dedup_capacity: 0, admission, ..ServerConfig::default() };
    let gate = Arc::clone(gate);
    FairGenServer::new(move || Box::new(GateGen { gate: Arc::clone(&gate) }), cfg)
        .expect("server")
}

fn opts(tenant: &str) -> SubmitOptions {
    SubmitOptions { tenant: TenantId::new(tenant), lane: None, deadline: None }
}

fn is_overloaded(e: &FairGenError, reason: &str) -> bool {
    matches!(e, FairGenError::Overloaded { reason: r } if r == reason)
}

/// Two greedy bulk tenants and one interactive tenant offer 3× the queue
/// capacity while the worker is gated: exactly `capacity` jobs are
/// admitted round-robin (so every tenant gets through), every excess
/// submission gets exactly one typed `queue_full` rejection, and the
/// admitted work — once the gate opens — is byte-identical to the
/// sequential oracle.
#[test]
fn overload_keeps_tenants_progressing_and_accepted_work_byte_equal() {
    const CAPACITY: usize = 9;
    const ROUNDS: usize = 10;
    let tenants = ["bulk-a", "bulk-b", "interactive"];

    let gate = Arc::new(Gate::default());
    let server = gated_server(
        &gate,
        AdmissionConfig { queue_capacity: Some(CAPACITY), ..AdmissionConfig::default() },
    );
    let task = Arc::new(TaskSpec::unlabeled());

    // Seeds per submission: the bulk tenants ask for two draws (→ Bulk
    // lane), the interactive tenant for one (→ Interactive lane).
    let seeds_for = |tenant: usize| -> Vec<u64> {
        if tenant < 2 {
            vec![1, 2]
        } else {
            vec![1]
        }
    };

    // Prime: one job the worker takes and blocks on, leaving the queue
    // empty at exactly its configured capacity.
    let prime_graph = Arc::new(ring(8));
    let prime = server.submit_with(
        Arc::clone(&prime_graph),
        Arc::clone(&task),
        0,
        vec![9],
        opts("interactive"),
    );
    let prime = prime.expect("prime admitted");
    gate.wait_started();

    // Offer 3× capacity round-robin across the three tenants.
    let mut accepted: Vec<(usize, usize, fairgen_serve::PendingResponse)> = Vec::new();
    let mut rejected = 0usize;
    let mut accepted_per_tenant = [0usize; 3];
    for round in 0..ROUNDS {
        for (t, tenant) in tenants.iter().enumerate() {
            let g = Arc::new(ring(10 + (round * 3 + t) as u32));
            match server.submit_with(g, Arc::clone(&task), 0, seeds_for(t), opts(tenant)) {
                Ok(pending) => {
                    accepted.push((t, round, pending));
                    accepted_per_tenant[t] += 1;
                }
                Err(e) => {
                    assert!(
                        is_overloaded(&e, "queue_full"),
                        "excess submission must be a typed queue_full rejection, got {e}"
                    );
                    rejected += 1;
                }
            }
        }
    }

    assert_eq!(accepted.len(), CAPACITY, "exactly the queue capacity is admitted");
    assert_eq!(rejected, ROUNDS * 3 - CAPACITY, "accepted + shed == offered");
    for (t, tenant) in tenants.iter().enumerate() {
        assert!(
            accepted_per_tenant[t] >= 1,
            "tenant {tenant} starved at admission: {accepted_per_tenant:?}"
        );
    }

    // Open the gate: everything admitted must now be served, byte-equal to
    // the sequential oracle.
    gate.release();
    prime.wait().expect("prime serves");
    let mut oracle = ModelRegistry::new(Box::new(ErGenerator));
    for (t, round, pending) in accepted {
        let response = pending.wait().expect("admitted job serves after the gate opens");
        let g = ring(10 + (round * 3 + t) as u32);
        let expected =
            oracle.handle(&GenerateRequest::new(&g, &task, 0, seeds_for(t))).expect("oracle");
        assert_eq!(
            response.graphs, expected.graphs,
            "admission must not change what admitted work computes"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.admission.admitted as usize, CAPACITY + 1, "prime + capacity");
    assert_eq!(stats.admission.rejected_full as usize, rejected);
    assert_eq!(stats.admission.shed_deadline, 0);
    assert_eq!(stats.admission.dropped_total as usize, rejected);
    assert!(stats.dropped.iter().all(|d| d.reason == DropReason::QueueFull));
    // All three tenants appear in the drop diagnostics (every tenant was
    // rejected at least once in rounds 4+).
    for tenant in tenants {
        assert!(
            stats.dropped.iter().any(|d| d.tenant.as_str() == tenant),
            "tenant {tenant} missing from the dropped ring"
        );
    }
}

/// Over-capacity and post-shutdown submissions fail with *different* typed
/// errors on the in-process path: `Overloaded` says "back off and retry",
/// `ServerClosed` says "this server is going away".
#[test]
fn queue_full_and_server_closed_are_distinct_typed_errors() {
    let gate = Arc::new(Gate::default());
    let mut server = gated_server(
        &gate,
        AdmissionConfig { queue_capacity: Some(1), ..AdmissionConfig::default() },
    );
    let task = Arc::new(TaskSpec::unlabeled());

    let prime = server
        .submit_with(Arc::new(ring(8)), Arc::clone(&task), 0, vec![1], opts("t"))
        .expect("prime admitted");
    gate.wait_started();
    let queued = server
        .submit_with(Arc::new(ring(9)), Arc::clone(&task), 0, vec![1], opts("t"))
        .expect("fits the capacity-1 queue");
    let full = server
        .submit_with(Arc::new(ring(10)), Arc::clone(&task), 0, vec![1], opts("t"))
        .expect_err("over capacity");
    assert!(is_overloaded(&full, "queue_full"), "got {full}");

    gate.release();
    prime.wait().expect("prime serves");
    queued.wait().expect("queued job serves");
    server.shutdown();

    let closed = server
        .submit_with(Arc::new(ring(11)), Arc::clone(&task), 0, vec![1], opts("t"))
        .expect_err("post-shutdown");
    assert!(matches!(closed, FairGenError::ServerClosed), "got {closed}");
}

/// A zero queue deadline sheds every queued job at drain time: the client
/// still gets exactly one answer — the typed `deadline_expired` rejection —
/// and the shed is recorded in stats and the dropped ring.
#[test]
fn zero_deadline_sheds_at_drain_with_a_typed_response() {
    let server = FairGenServer::new(
        || Box::new(ErGenerator),
        ServerConfig {
            shards: 1,
            admission: AdmissionConfig {
                queue_deadline: Some(Duration::ZERO),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let task = Arc::new(TaskSpec::unlabeled());

    for i in 0..4u32 {
        let err = server
            .submit_with(Arc::new(ring(8 + i)), Arc::clone(&task), 0, vec![1], opts("t"))
            .expect("admitted — shedding happens at drain, not at submit")
            .wait()
            .expect_err("zero deadline: every job is expired by drain time");
        assert!(is_overloaded(&err, "deadline_expired"), "got {err}");
    }

    let stats = server.stats();
    assert_eq!(stats.admission.admitted, 4);
    assert_eq!(stats.admission.shed_deadline, 4);
    assert_eq!(stats.admission.dropped_total, 4);
    assert!(stats.dropped.iter().all(|d| d.reason == DropReason::DeadlineExpired));
    assert_eq!(stats.fits(), 0, "shed work must never reach the registry");
}

/// Token buckets are per-tenant and exactly deterministic under the
/// injected clock: a greedy tenant exhausts its own burst without touching
/// anyone else's, and refills arrive precisely when the clock says so.
#[test]
fn rate_limiting_is_per_tenant_and_deterministic() {
    let clock = Arc::new(ManualClock::at(0));
    let server = FairGenServer::new(
        || Box::new(ErGenerator),
        ServerConfig {
            shards: 1,
            admission: AdmissionConfig {
                rate: Some(RateConfig { burst: 2, tokens_per_sec: 1 }),
                clock: clock.clone(),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let task = Arc::new(TaskSpec::unlabeled());
    let g = Arc::new(ring(12));
    let submit = |tenant: &str, seeds: Vec<u64>| {
        server.submit_with(Arc::clone(&g), Arc::clone(&task), 0, seeds, opts(tenant))
    };

    // Tenant a: burst of 2 single-draw requests, then rejected.
    submit("a", vec![1]).expect("a 1/2").wait().expect("served");
    submit("a", vec![2]).expect("a 2/2").wait().expect("served");
    let limited = submit("a", vec![3]).expect_err("a over budget");
    assert!(is_overloaded(&limited, "rate_limited"), "got {limited}");

    // Tenant b is untouched by a's greed.
    submit("b", vec![1]).expect("b has its own bucket").wait().expect("served");

    // Cost scales with the draws requested: a 3-seed batch can never fit a
    // burst-2 bucket, even for a fresh tenant.
    let batch = submit("c", vec![1, 2, 3]).expect_err("batch cost over burst");
    assert!(is_overloaded(&batch, "rate_limited"), "got {batch}");

    // One second at 1 token/sec: tenant a can spend exactly once more.
    clock.advance(1_000_000_000);
    submit("a", vec![4]).expect("refilled").wait().expect("served");
    let spent = submit("a", vec![5]).expect_err("refill was exactly one token");
    assert!(is_overloaded(&spent, "rate_limited"), "got {spent}");

    let stats = server.stats();
    assert_eq!(stats.admission.rejected_rate, 3);
    assert_eq!(stats.admission.dropped_total, 3);
    assert!(stats.dropped.iter().all(|d| d.reason == DropReason::RateLimited));
    assert!(stats.dropped.iter().any(|d| d.tenant.as_str() == "a"));
    assert!(stats.dropped.iter().any(|d| d.tenant.as_str() == "c"));
}

/// The default config is fully permissive: no bound, no deadline, no rate
/// limiting — admission is byte-invisible (the PR 5 stress suites assert
/// the byte-equality half of this on the same default config).
#[test]
fn permissive_default_rejects_nothing() {
    let server =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server");
    let task = Arc::new(TaskSpec::unlabeled());
    let mut pendings = Vec::new();
    for i in 0..64u32 {
        let lane = if i % 2 == 0 { Some(Lane::Interactive) } else { Some(Lane::Bulk) };
        let opts = SubmitOptions { tenant: TenantId::new("t"), lane, deadline: None };
        pendings.push(
            server
                .submit_with(
                    Arc::new(ring(8 + i % 4)),
                    Arc::clone(&task),
                    0,
                    vec![u64::from(i)],
                    opts,
                )
                .expect("permissive default admits everything"),
        );
    }
    for pending in pendings {
        pending.wait().expect("served");
    }
    let stats = server.stats();
    assert_eq!(stats.admission.admitted, 64);
    assert_eq!(stats.admission.rejected_full, 0);
    assert_eq!(stats.admission.rejected_rate, 0);
    assert_eq!(stats.admission.shed_deadline, 0);
    assert_eq!(stats.admission.dropped_total, 0);
    assert!(stats.dropped.is_empty());
}
