//! The acceptance contract of the checkpoint layer, per generator family:
//! `save → load → generate(seed)` yields a graph **identical** to the
//! in-memory model's output.

use fairgen_baselines::persist::PersistableGraphGenerator;
use fairgen_baselines::{
    BaGenerator, ErGenerator, GaeGenerator, NetGanGenerator, TagGenGenerator, TaskSpec,
    WalkLmBudget,
};
use fairgen_core::{checkpoint, FairGenConfig, FairGenGenerator, FairGenVariant};
use fairgen_data::toy_two_community;
use fairgen_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_walklm_budget() -> WalkLmBudget {
    WalkLmBudget {
        walk_len: 6,
        train_walks: 60,
        epochs: 2,
        negative_weight: 0.2,
        gen_multiplier: 3,
        lr: 0.02,
    }
}

/// Every persistable family under a test-sized budget, with the task its
/// fit consumes.
fn families() -> Vec<Box<dyn PersistableGraphGenerator>> {
    vec![
        Box::new(ErGenerator),
        Box::new(BaGenerator),
        Box::new(GaeGenerator { dim: 8, epochs: 15, lr: 0.1 }),
        Box::new(NetGanGenerator { dim: 10, hidden: 12, budget: tiny_walklm_budget() }),
        Box::new(TagGenGenerator {
            d_model: 12,
            heads: 2,
            layers: 1,
            budget: tiny_walklm_budget(),
        }),
        Box::new(FairGenGenerator::new(FairGenConfig::test_budget())),
    ]
}

fn toy_input() -> (Graph, TaskSpec) {
    let lg = toy_two_community(2);
    let mut rng = StdRng::seed_from_u64(1);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    (lg.graph.clone(), TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()))
}

#[test]
fn save_load_generate_is_deterministic_for_every_family() {
    let (g, task) = toy_input();
    let dir = std::env::temp_dir().join("fairgen-serve-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for gen in families() {
        let mut fitted = gen.fit_persistable(&g, &task, 17).expect("fit");
        let path = dir.join(format!("{}.ckpt", gen.name()));
        checkpoint::save_to(&path, fitted.as_ref()).expect("save");
        let mut reloaded = checkpoint::load_from(&path).expect("load");
        assert_eq!(reloaded.name(), fitted.name(), "{}: name survives", gen.name());
        for seed in [0u64, 5, 91] {
            assert_eq!(
                fitted.generate(seed).expect("in-memory generate"),
                reloaded.generate(seed).expect("reloaded generate"),
                "{}: save→load→generate({seed}) diverged from the in-memory model",
                gen.name()
            );
        }
        // Batches too (the registry path).
        assert_eq!(
            fitted.generate_batch(&[3, 3, 4]).expect("mem batch"),
            reloaded.generate_batch(&[3, 3, 4]).expect("disk batch"),
            "{}: batched generation diverged",
            gen.name()
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_bytes_are_deterministic_per_model() {
    let (g, task) = toy_input();
    for gen in families() {
        let fitted = gen.fit_persistable(&g, &task, 4).expect("fit");
        let refit = gen.fit_persistable(&g, &task, 4).expect("refit");
        assert_eq!(
            checkpoint::to_bytes(fitted.as_ref()),
            checkpoint::to_bytes(refit.as_ref()),
            "{}: equal fits must checkpoint to equal bytes",
            gen.name()
        );
    }
}

#[test]
fn ablation_variants_roundtrip_under_the_shared_tag() {
    let (g, task) = toy_input();
    let gen = FairGenGenerator::new(FairGenConfig::test_budget())
        .with_variant(FairGenVariant::NoParity);
    let mut fitted = gen.fit_persistable(&g, &task, 6).expect("fit");
    let bytes = checkpoint::to_bytes(fitted.as_ref());
    let mut back = checkpoint::from_bytes(&bytes).expect("decode");
    assert_eq!(back.name(), "FairGen-w/o-Parity", "variant survives the roundtrip");
    assert_eq!(fitted.generate(2).expect("mem"), back.generate(2).expect("disk"));
}
