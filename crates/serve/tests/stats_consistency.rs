//! Self-consistency of the stats surface under concurrent load: the
//! counters the `/metrics` endpoint renders are only trustworthy if they
//! obey their own arithmetic while many clients hammer the server.
//!
//! Invariants checked after a concurrent run settles:
//!
//! * per shard, the drain-width histogram buckets partition the drains;
//! * `admitted + rejected + shed == offered` (the health monitor's
//!   identity);
//! * each latency stage's cumulative buckets are monotone and bounded by
//!   its count, and the stage counts tie back to the admission and drain
//!   counters exactly;
//! * the rendered Prometheus exposition of the latency histogram parses
//!   back to the identical snapshot.

use std::sync::Arc;
use std::thread;

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_obs::{parse, render};
use fairgen_serve::{AdmissionConfig, FairGenServer, RateConfig, ServerConfig, ServerStats};

const CLIENTS: usize = 6;
const ROUNDS: usize = 5;
const GRAPHS: u32 = 3;

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

/// Every structural invariant a stats snapshot must satisfy, regardless
/// of load shape.
fn assert_snapshot_invariants(stats: &ServerStats) {
    for (id, shard) in stats.per_shard.iter().enumerate() {
        let bucketed: u64 = shard.drain_hist.iter().sum();
        assert_eq!(
            bucketed, shard.drains,
            "shard {id}: histogram buckets must partition the drains"
        );
        assert!(
            shard.drained_jobs >= shard.drains || shard.drains == 0,
            "shard {id}: every drain takes at least one job"
        );
    }
    let a = &stats.admission;
    assert_eq!(
        a.rejected_full + a.rejected_rate + a.shed_deadline,
        a.dropped_total,
        "dropped_total is the sum of its parts"
    );

    for (name, stage) in [
        ("admission_wait", &stats.latency.admission_wait),
        ("queue_wait", &stats.latency.queue_wait),
        ("model_invocation", &stats.latency.model_invocation),
        ("total", &stats.latency.total),
    ] {
        // Snapshot buckets are per-bound counts (cumulation happens at
        // exposition); observations past the last bound land only in
        // count/sum, so the bucket sum is bounded by the count.
        let bucketed: u64 = stage.buckets.iter().sum();
        assert!(
            bucketed <= stage.count,
            "{name}: bucketed observations ({bucketed}) bounded by count ({})",
            stage.count
        );
        assert!(
            stage.count == 0 || stage.sum_nanos > 0 || bucketed == stage.buckets[0],
            "{name}: a nonzero-duration observation must contribute to the sum"
        );
    }
}

/// Unthrottled concurrent load: every submission is admitted, so every
/// stage count is an exact function of the request schedule.
#[test]
fn concurrent_counters_stay_self_consistent() {
    let server = Arc::new(
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server"),
    );
    let task = Arc::new(TaskSpec::unlabeled());

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let task = Arc::clone(&task);
            thread::spawn(move || {
                for r in 0..ROUNDS {
                    let g = ring(12 + ((c + r) as u32 % GRAPHS) * 4);
                    // Seeds repeat across clients and rounds on purpose:
                    // dedup hits and coalesced groups are part of the load.
                    server.handle(&g, &task, 7, vec![r as u64]).expect("serve");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let stats = server.stats();
    assert_snapshot_invariants(&stats);

    let submissions = (CLIENTS * ROUNDS) as u64;
    assert_eq!(stats.admission.admitted, submissions, "nothing throttled this run");
    assert_eq!(stats.admission.dropped_total, 0);
    assert_eq!(stats.queue_depth(), 0, "run has settled");

    let lat = &stats.latency;
    assert_eq!(lat.admission_wait.count, submissions, "one admission wait per admit");
    assert_eq!(lat.total.count, submissions, "one total-latency sample per response");
    assert_eq!(
        lat.queue_wait.count,
        stats.drained_jobs(),
        "one queue wait per job taken from a queue"
    );
    assert!(
        lat.model_invocation.count <= stats.drained_jobs(),
        "coalescing and dedup can only reduce invocations below drained jobs"
    );
    assert!(lat.model_invocation.count >= stats.fits(), "every fit is an invocation");

    // The exposition layer must not perturb a single value: render the
    // latency families and parse them back to the identical snapshot.
    let family = lat.to_family("fairgen_stage_latency_seconds", "Serving latency by stage.");
    let text = render(std::slice::from_ref(&family));
    let back = parse(&text).expect("own rendering parses");
    assert_eq!(back, vec![family], "render→parse round-trip is exact");
}

/// Throttled concurrent load: a never-refilling token bucket makes the
/// admitted/rejected split deterministic in total, and the offered
/// identity (`admitted + dropped == offered`) must hold exactly.
#[test]
fn rate_limited_run_obeys_the_offered_identity() {
    const BURST: u64 = 5;
    let server = Arc::new(
        FairGenServer::new(
            || Box::new(ErGenerator),
            ServerConfig {
                admission: AdmissionConfig {
                    rate: Some(RateConfig { burst: BURST, tokens_per_sec: 0 }),
                    ..AdmissionConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("server"),
    );
    let task = Arc::new(TaskSpec::unlabeled());

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let task = Arc::clone(&task);
            thread::spawn(move || {
                let mut served = 0u64;
                for r in 0..ROUNDS {
                    let g = ring(10 + c as u32);
                    if server.handle(&g, &task, 3, vec![r as u64]).is_ok() {
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();
    let served: u64 = workers.into_iter().map(|w| w.join().expect("client")).sum();

    let stats = server.stats();
    assert_snapshot_invariants(&stats);

    let offered = (CLIENTS * ROUNDS) as u64;
    assert_eq!(served, BURST, "exactly the burst is ever admitted (no refill)");
    assert_eq!(stats.admission.admitted, BURST);
    assert_eq!(stats.admission.rejected_rate, offered - BURST);
    assert_eq!(
        stats.admission.admitted + stats.admission.dropped_total,
        offered,
        "the health monitor's offered identity"
    );
    assert_eq!(stats.latency.admission_wait.count, BURST, "rejections record no wait");
    assert_eq!(stats.latency.total.count, BURST);
}
