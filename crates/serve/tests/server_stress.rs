//! Concurrency stress harness for [`FairGenServer`]: M client threads × K
//! rounds over G distinct graphs against a sharded server.
//!
//! The assertions are the serving layer's whole contract:
//!
//! * every concurrent response is **byte-identical** to a sequential
//!   single-shard [`ModelRegistry`] oracle per `(fit_seed, gen_seed)`,
//!   regardless of shard routing, queue interleaving, or coalescing;
//! * exactly **one fit per distinct fingerprint** (`stats().fits() == G`);
//! * repeated `(fingerprint, seed)` requests are answered from the dedup
//!   cache with zero model invocations.
//!
//! CI runs this suite at `FAIRGEN_THREADS=1` and at the default pool width,
//! so the contract is exercised both with and without sampling parallelism
//! underneath the shard workers.

use std::sync::Arc;

use fairgen_baselines::{ErGenerator, TaskSpec};
use fairgen_core::error::FairGenError;
use fairgen_core::{FairGenConfig, FairGenGenerator};
use fairgen_graph::Graph;
use fairgen_serve::{
    FairGenServer, GenerateRequest, ModelRegistry, RegistryConfig, ServedFrom, ServerConfig,
};

/// M client threads.
const CLIENTS: usize = 8;
/// K request rounds per client (each round sends its request twice — the
/// second send is the dedup candidate).
const ROUNDS: usize = 6;
/// G distinct graphs (= distinct fingerprints under one fit seed).
const GRAPHS: usize = 4;

const FIT_SEED: u64 = 7;

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

fn tenant_graphs() -> Vec<Arc<Graph>> {
    (0..GRAPHS).map(|i| Arc::new(ring(16 + i as u32))).collect()
}

/// The deterministic request schedule: which graph and which sample seeds
/// client `c` asks for in round `r`. Seeds depend only on the round, so
/// clients `c` and `c + GRAPHS` issue identical requests — cross-client
/// duplicates by construction, on top of each client's own repeat.
fn schedule(client: usize, round: usize) -> (usize, Vec<u64>) {
    ((client + round) % GRAPHS, vec![round as u64, round as u64 * 31 + 1])
}

// `round` indexes `expected[gi]` where `gi` itself depends on `round`, so
// the loop cannot become an iterator chain.
#[allow(clippy::needless_range_loop)]
#[test]
fn concurrent_sharded_responses_match_the_sequential_oracle() {
    let graphs = tenant_graphs();
    let task = Arc::new(TaskSpec::unlabeled());

    // Sequential single-shard oracle: a plain synchronous registry, one
    // request per distinct (graph, round) content, handled in a fixed
    // order on this thread.
    let mut oracle = ModelRegistry::new(Box::new(ErGenerator));
    let mut expected: Vec<Vec<Vec<Graph>>> = vec![Vec::new(); GRAPHS];
    for (gi, graph) in graphs.iter().enumerate() {
        for round in 0..ROUNDS {
            // Seeds depend only on the round (see `schedule`), so the
            // oracle enumerates (graph, round) once each.
            let seeds = schedule(0, round).1;
            let response = oracle
                .handle(&GenerateRequest::new(graph, &task, FIT_SEED, seeds))
                .expect("oracle serve");
            expected[gi].push(response.graphs);
        }
    }

    let server = FairGenServer::new(
        || Box::new(ErGenerator),
        ServerConfig {
            shards: 4,
            registry: RegistryConfig {
                capacity: GRAPHS,
                checkpoint_dir: None,
                ..RegistryConfig::default()
            },
            dedup_capacity: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("server");

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let graphs = &graphs;
            let task = &task;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let (gi, seeds) = schedule(client, round);
                    // First send: may be a cold fit, a memory hit, or — when
                    // a sibling client got there first — a dedup hit. The
                    // bytes must be the oracle's either way.
                    let first = server
                        .submit_shared(
                            Arc::clone(&graphs[gi]),
                            Arc::clone(task),
                            FIT_SEED,
                            seeds.clone(),
                        )
                        .expect("submit")
                        .wait()
                        .expect("serve");
                    assert_eq!(
                        first.graphs, expected[gi][round],
                        "client {client} round {round}: response diverged from the oracle"
                    );
                    // Identical repeat: by now every (fingerprint, seed)
                    // pair of this request is cached, so this *must* be a
                    // pure dedup hit with the same bytes.
                    let again = server
                        .handle(&graphs[gi], task, FIT_SEED, seeds)
                        .expect("repeat serve");
                    assert_eq!(
                        again.served_from,
                        ServedFrom::DedupCache,
                        "client {client} round {round}: repeat must be served from dedup"
                    );
                    assert_eq!(
                        again.graphs, expected[gi][round],
                        "client {client} round {round}: dedup response diverged"
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.fits(), GRAPHS as u64, "exactly one fit per distinct fingerprint");
    assert!(stats.dedup_hits() > 0, "repeated (fingerprint, seed) pairs must hit the cache");
    assert!(
        stats.dedup_hits() >= (CLIENTS * ROUNDS) as u64,
        "every repeat send is a guaranteed dedup hit"
    );
    assert_eq!(
        stats.requests(),
        (CLIENTS * ROUNDS * 2) as u64,
        "every submitted request is answered and counted exactly once"
    );
    assert_eq!(stats.per_shard.len(), 4);
}

#[test]
fn same_fingerprint_requests_coalesce_to_one_fit_per_shard_history() {
    // A burst of same-key submissions from many clients: whatever the queue
    // interleaving, the shard fits once and answers everyone identically.
    let g = Arc::new(ring(24));
    let task = Arc::new(TaskSpec::unlabeled());
    let server =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server");

    let mut expected_oracle = ModelRegistry::new(Box::new(ErGenerator));
    let expected = expected_oracle
        .handle(&GenerateRequest::new(&g, &task, 1, vec![5]))
        .expect("oracle")
        .graphs;

    std::thread::scope(|scope| {
        for _ in 0..12 {
            let server = &server;
            let g = &g;
            let task = &task;
            let expected = &expected;
            scope.spawn(move || {
                let response = server
                    .submit_shared(Arc::clone(g), Arc::clone(task), 1, vec![5])
                    .expect("submit")
                    .wait()
                    .expect("serve");
                assert_eq!(&response.graphs, expected);
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.fits(), 1, "12 same-key clients, one fit");
    assert_eq!(stats.requests(), 12);
}

#[test]
fn fairgen_family_served_concurrently_matches_its_direct_model() {
    // The flagship (expensive) family through the concurrent path: train
    // once via the server, compare bytes against a directly-trained model.
    let lg = fairgen_data::toy_two_community(5);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let labeled = lg.sample_few_shot_labels(4, &mut rng).expect("toy is labeled");
    let task = Arc::new(TaskSpec::new(labeled, lg.num_classes, lg.protected.clone()));
    let graph = Arc::new(lg.graph.clone());
    let cfg = FairGenConfig::test_budget();

    let direct =
        fairgen_core::FairGen::new(cfg).train(&graph, &task, 11).expect("direct train");
    let expected = direct.generate_batch(&[1, 2]).expect("direct generate");

    let server = FairGenServer::new(
        move || Box::new(FairGenGenerator::new(cfg)),
        ServerConfig { shards: 2, ..ServerConfig::default() },
    )
    .expect("server");

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let server = &server;
            let graph = &graph;
            let task = &task;
            let expected = &expected;
            scope.spawn(move || {
                let response = server
                    .submit_shared(Arc::clone(graph), Arc::clone(task), 11, vec![1, 2])
                    .expect("submit")
                    .wait()
                    .expect("serve");
                assert_eq!(&response.graphs, expected, "served FairGen diverged from direct");
            });
        }
    });
    assert_eq!(server.stats().fits(), 1);
}

#[test]
fn graceful_shutdown_spills_and_a_successor_warm_starts() {
    let dir = std::env::temp_dir().join("fairgen-serve-tests").join("server-restart");
    let _ = std::fs::remove_dir_all(&dir);
    let g = ring(18);
    let task = TaskSpec::unlabeled();
    let cfg = ServerConfig {
        shards: 2,
        registry: RegistryConfig {
            capacity: 4,
            checkpoint_dir: Some(dir.clone()),
            ..RegistryConfig::default()
        },
        dedup_capacity: 16,
        ..ServerConfig::default()
    };

    let first = {
        let server =
            FairGenServer::new(|| Box::new(ErGenerator), cfg.clone()).expect("server A");
        let response = server.handle(&g, &task, 3, vec![9]).expect("serve");
        assert_eq!(response.served_from, ServedFrom::ColdFit);
        response.graphs
        // Drop = graceful shutdown = dirty models spill to `dir`.
    };

    let revived = FairGenServer::new(|| Box::new(ErGenerator), cfg).expect("server B");
    let response = revived.handle(&g, &task, 3, vec![9]).expect("warm serve");
    assert_eq!(response.served_from, ServedFrom::Checkpoint, "successor must warm-start");
    assert_eq!(response.graphs, first, "warm-started model must generate identically");
    assert_eq!(revived.stats().fits(), 0, "the successor never refits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_requests_fail_typed_without_poisoning_the_server() {
    let server =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server");
    let g = ring(8);
    let bad = TaskSpec::new(vec![(99, 0)], 1, None);
    let err = server.handle(&g, &bad, 0, vec![0]).expect_err("out-of-range label");
    assert!(
        matches!(err, FairGenError::NodeOutOfRange { node: 99, .. }),
        "typed error must cross the queue intact, got {err:?}"
    );
    // The shard keeps serving.
    let good = server.handle(&g, &TaskSpec::unlabeled(), 0, vec![0]).expect("healthy serve");
    assert_eq!(good.served_from, ServedFrom::ColdFit);
}

#[test]
fn panicking_generator_fails_requests_instead_of_hanging_clients() {
    // A generator whose fit panics (third-party trait impls are full of
    // asserts) takes its shard worker down. The failsafe contract: the
    // in-flight client gets a typed Internal error — never a hang — and
    // later submits to the dead shard fail fast at the closed queue.
    use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
    use fairgen_baselines::{FittedGenerator, GraphGenerator};

    struct PanickingGen;
    impl GraphGenerator for PanickingGen {
        fn name(&self) -> &'static str {
            "Panicking"
        }
        fn fit(
            &self,
            _g: &Graph,
            _task: &TaskSpec,
            _seed: u64,
        ) -> fairgen_core::error::Result<Box<dyn FittedGenerator>> {
            panic!("third-party fit blew up");
        }
    }
    impl PersistableGraphGenerator for PanickingGen {
        fn fit_persistable(
            &self,
            _g: &Graph,
            _task: &TaskSpec,
            _seed: u64,
        ) -> fairgen_core::error::Result<Box<dyn PersistableGenerator>> {
            panic!("third-party fit blew up");
        }
    }

    let server = FairGenServer::new(
        || Box::new(PanickingGen),
        ServerConfig { shards: 1, ..ServerConfig::default() },
    )
    .expect("server");
    let g = ring(8);
    let task = TaskSpec::unlabeled();
    let err = server.handle(&g, &task, 0, vec![1]).expect_err("panic surfaces as an error");
    assert!(matches!(err, FairGenError::Internal { .. }), "got {err:?}");
    // The worker is going (or gone). New work either fails fast at the
    // closed queue, or — if it races in before the failsafe closes it —
    // is discarded with a typed error on wait. Never a hang.
    match server.submit(&g, &task, 0, vec![2]) {
        Err(err) => assert!(matches!(err, FairGenError::ServerClosed), "got {err:?}"),
        Ok(pending) => {
            let err = pending.wait().expect_err("dead shard never serves");
            assert!(matches!(err, FairGenError::Internal { .. }), "got {err:?}");
        }
    }
}

#[test]
fn submit_after_shutdown_fails_cleanly() {
    let mut server =
        FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default()).expect("server");
    server.shutdown();
    let g = ring(8);
    let err = server
        .submit(&g, &TaskSpec::unlabeled(), 0, vec![1])
        .map(|_| ())
        .expect_err("closed queues reject work");
    assert!(matches!(err, FairGenError::ServerClosed), "got {err:?}");
}
