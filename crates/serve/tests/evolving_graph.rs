//! The evolving-graph contract, end to end: deltas under the drift
//! threshold are served by the stale lineage-root model with **zero**
//! refits; the first delta past the threshold triggers **exactly one**
//! refit; and post-refit samples are byte-equal to a fit-from-scratch
//! oracle on the updated graph.
//!
//! Drift arithmetic for the schedule below (`ring(40)`, threshold 0.35):
//! inserting one chord touches two rows whose Jaccard drops to 2/3, so
//! the score is 1 − 2/3 ≈ 0.333 — stale. Isolating node 3 (removing both
//! its ring edges) adds a zero-Jaccard row and two half-Jaccard rows, and
//! the cumulative score vs the *root* base graph climbs to ≈ 0.476 —
//! refit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
use fairgen_baselines::{ErGenerator, GraphGenerator, TaskSpec};
use fairgen_core::error::Result;
use fairgen_graph::{Graph, GraphDelta};
use fairgen_serve::{
    FairGenServer, GenerateRequest, ModelRegistry, RegistryConfig, ServedFrom, ServerConfig,
};

const FIT_SEED: u64 = 11;
const SEEDS: [u64; 3] = [1, 2, 3];
/// One chord scores ≈ 0.333, isolating a ring node pushes the cumulative
/// score to ≈ 0.476 — this sits strictly between the two.
const THRESHOLD: f64 = 0.35;

struct CountingGen {
    fits: Arc<AtomicUsize>,
}

impl GraphGenerator for CountingGen {
    fn name(&self) -> &'static str {
        ErGenerator.name()
    }
    fn fit(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn fairgen_baselines::FittedGenerator>> {
        ErGenerator.fit(g, task, seed)
    }
}

impl PersistableGraphGenerator for CountingGen {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        self.fits.fetch_add(1, Ordering::SeqCst);
        ErGenerator.fit_persistable(g, task, seed)
    }
}

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

fn insert(edges: &[(u32, u32)]) -> GraphDelta {
    GraphDelta { insert: edges.to_vec(), remove: Vec::new() }
}

fn remove(edges: &[(u32, u32)]) -> GraphDelta {
    GraphDelta { insert: Vec::new(), remove: edges.to_vec() }
}

fn config() -> RegistryConfig {
    RegistryConfig { drift_threshold: THRESHOLD, ..RegistryConfig::default() }
}

/// Fit-from-scratch oracle: what a fresh process serving only `graph`
/// would produce for `SEEDS`.
fn oracle_samples(graph: &Graph, task: &TaskSpec) -> Vec<Graph> {
    let mut fresh = ModelRegistry::new(Box::new(ErGenerator));
    let response = fresh
        .handle(&GenerateRequest::new(graph, task, FIT_SEED, SEEDS.to_vec()))
        .expect("oracle serve");
    assert_eq!(response.served_from, ServedFrom::ColdFit);
    response.graphs
}

#[test]
fn stale_serving_refits_exactly_once_at_the_drift_crossing() {
    let fits = Arc::new(AtomicUsize::new(0));
    let gen: Box<dyn PersistableGraphGenerator> =
        Box::new(CountingGen { fits: Arc::clone(&fits) });
    let mut registry = ModelRegistry::with_config(gen, config()).expect("config");
    let task = TaskSpec::unlabeled();
    let base = Arc::new(ring(40));

    // Fit the base model and remember its samples: every stale alias must
    // reproduce these bytes.
    let base_resp = registry
        .handle(&GenerateRequest::new(&base, &task, FIT_SEED, SEEDS.to_vec()))
        .expect("base serve");
    assert_eq!(base_resp.served_from, ServedFrom::ColdFit);
    assert_eq!(fits.load(Ordering::SeqCst), 1);

    // Delta 1: one chord. Under threshold — aliased, no fit.
    let first =
        registry.apply_delta(&base, &task, FIT_SEED, &insert(&[(0, 20)])).expect("first delta");
    assert!(!first.refit, "drift {} must stay under {THRESHOLD}", first.drift);
    assert!(first.drift > 0.0 && first.drift <= THRESHOLD);
    assert_eq!(first.old_fingerprint, base_resp.fingerprint);
    assert_eq!(first.root_fingerprint, base_resp.fingerprint);
    assert_ne!(first.new_fingerprint, base_resp.fingerprint);

    // Generating for the drifted graph is answered by the stale root
    // model: same bytes as the base response, zero new fits, and the
    // response says so.
    let drifted = Arc::new(base.apply_delta(&insert(&[(0, 20)])).expect("apply"));
    let stale_resp = registry
        .handle(&GenerateRequest::new(&drifted, &task, FIT_SEED, SEEDS.to_vec()))
        .expect("stale serve");
    match stale_resp.served_from {
        ServedFrom::Stale { drift } => assert_eq!(drift, first.drift),
        other => panic!("expected stale serving, got {other:?}"),
    }
    assert_eq!(stale_resp.graphs, base_resp.graphs, "stale alias must reuse the root model");
    assert_eq!(fits.load(Ordering::SeqCst), 1, "zero refits while drift is under threshold");

    // Delta 2, chained on delta 1: still under threshold (drift is
    // cumulative vs the *root* base graph, and a second disjoint chord
    // leaves the score at ≈ 0.333).
    let second = registry
        .apply_delta(&drifted, &task, FIT_SEED, &insert(&[(5, 25)]))
        .expect("second delta");
    assert!(!second.refit);
    assert!(second.drift >= first.drift, "drift accumulates along the lineage");
    assert_eq!(second.root_fingerprint, base_resp.fingerprint);
    assert_eq!(fits.load(Ordering::SeqCst), 1);

    // Delta 3: isolate node 3. Cumulative drift crosses the threshold —
    // exactly one refit, counted as a drift refit (not a cold fit).
    let drifted2 = Arc::new(drifted.apply_delta(&insert(&[(5, 25)])).expect("apply"));
    let third = registry
        .apply_delta(&drifted2, &task, FIT_SEED, &remove(&[(2, 3), (3, 4)]))
        .expect("third delta");
    assert!(third.refit, "drift {} must cross {THRESHOLD}", third.drift);
    assert!(third.drift > THRESHOLD);
    assert_eq!(third.root_fingerprint, base_resp.fingerprint);
    assert_eq!(fits.load(Ordering::SeqCst), 2, "exactly one refit at the crossing");

    let stats = registry.stats();
    assert_eq!(stats.delta_updates, 3);
    assert_eq!(stats.drift_refits, 1);
    assert_eq!(stats.cold_fits, 1, "the refit must not be miscounted as a cold fit");
    assert_eq!(stats.stale_hits, 1);

    // Post-refit samples are byte-equal to a fit-from-scratch oracle on
    // the updated graph.
    let updated = Arc::new(drifted2.apply_delta(&remove(&[(2, 3), (3, 4)])).expect("apply"));
    let refit_resp = registry
        .handle(&GenerateRequest::new(&updated, &task, FIT_SEED, SEEDS.to_vec()))
        .expect("refit serve");
    assert_eq!(refit_resp.served_from, ServedFrom::Memory, "the refit is already resident");
    assert_eq!(refit_resp.fingerprint, third.new_fingerprint);
    assert_eq!(refit_resp.graphs, oracle_samples(&updated, &task));
    assert_eq!(fits.load(Ordering::SeqCst), 2, "serving the refit model costs no further fit");
}

#[test]
fn unknown_predelta_fingerprint_roots_a_fresh_lineage() {
    let mut registry =
        ModelRegistry::with_config(Box::new(ErGenerator), config()).expect("config");
    let task = TaskSpec::unlabeled();
    let base = Arc::new(ring(40));

    // No prior generate: the update itself introduces the lineage.
    let outcome =
        registry.apply_delta(&base, &task, FIT_SEED, &insert(&[(0, 20)])).expect("delta");
    assert!(!outcome.refit);
    assert_eq!(outcome.root_fingerprint, outcome.old_fingerprint);

    // The later cold fit for the alias runs on the *base* graph, so the
    // bytes match what the base model would have produced.
    let drifted = Arc::new(base.apply_delta(&insert(&[(0, 20)])).expect("apply"));
    let via_alias = registry
        .handle(&GenerateRequest::new(&drifted, &task, FIT_SEED, SEEDS.to_vec()))
        .expect("alias serve");
    match via_alias.served_from {
        ServedFrom::Stale { drift } => assert_eq!(drift, outcome.drift),
        other => panic!("expected stale serving, got {other:?}"),
    }
    assert_eq!(via_alias.graphs, oracle_samples(&base, &task));
}

#[test]
fn server_serves_stale_within_threshold_and_refits_once_past_it() {
    let server = FairGenServer::new(
        || Box::new(ErGenerator),
        ServerConfig { shards: 4, registry: config(), ..ServerConfig::default() },
    )
    .expect("server");
    let task = TaskSpec::unlabeled();
    let base = ring(40);

    let base_resp = server.handle(&base, &task, FIT_SEED, SEEDS.to_vec()).expect("base");
    assert_eq!(base_resp.served_from, ServedFrom::ColdFit);

    // Under-threshold update: no refit, and the updated graph's requests
    // follow the alias to the shard owning the root model. Waiting on the
    // outcome before generating is the documented ordering contract.
    let first =
        server.update_graph(&base, &task, FIT_SEED, insert(&[(0, 20)])).expect("update");
    assert!(!first.refit);
    assert_eq!(first.root_fingerprint, base_resp.fingerprint);

    let drifted = base.apply_delta(&insert(&[(0, 20)])).expect("apply");
    let stale_resp = server.handle(&drifted, &task, FIT_SEED, SEEDS.to_vec()).expect("stale");
    assert!(
        matches!(stale_resp.served_from, ServedFrom::Stale { .. }),
        "got {:?}",
        stale_resp.served_from
    );
    assert_eq!(stale_resp.graphs, base_resp.graphs);

    // Second chained update stays stale; the third crosses and refits.
    let second =
        server.update_graph(&drifted, &task, FIT_SEED, insert(&[(5, 25)])).expect("update");
    assert!(!second.refit);
    let drifted2 = drifted.apply_delta(&insert(&[(5, 25)])).expect("apply");
    let third = server
        .update_graph(&drifted2, &task, FIT_SEED, remove(&[(2, 3), (3, 4)]))
        .expect("update");
    assert!(third.refit);
    assert!(third.drift > THRESHOLD);

    let stats = server.stats();
    let totals = stats.registry();
    assert_eq!(totals.delta_updates, 3);
    assert_eq!(totals.drift_refits, 1, "exactly one refit across all shards");
    assert_eq!(totals.stale_hits, 1);

    // Post-refit serving matches the fit-from-scratch oracle byte for
    // byte, no matter which shard the refit landed on.
    let updated = drifted2.apply_delta(&remove(&[(2, 3), (3, 4)])).expect("apply");
    let refit_resp = server.handle(&updated, &task, FIT_SEED, SEEDS.to_vec()).expect("refit");
    assert_eq!(refit_resp.served_from, ServedFrom::Memory);
    assert_eq!(refit_resp.graphs, oracle_samples(&updated, &task));
}
