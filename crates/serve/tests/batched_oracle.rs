//! End-to-end batched-decode parity through the serving stack: responses
//! produced with the matrix-stepped decoders (the default) must be
//! byte-identical to a per-walk oracle built with `FAIRGEN_BATCH_DECODE=0`
//! — under concurrent, coalescing-inducing load.
//!
//! This file holds exactly one `#[test]` because the oracle and the server
//! phases toggle a process-wide environment variable; a sibling test
//! sampling concurrently would race the flag (harmlessly for correctness —
//! both routes are bit-identical — but it would defeat the point of pinning
//! each phase to one route).

use std::sync::Arc;

use fairgen_baselines::{NetGanGenerator, TaskSpec};
use fairgen_graph::Graph;
use fairgen_serve::{
    FairGenServer, GenerateRequest, ModelRegistry, RegistryConfig, ServerConfig,
};

const FIT_SEED: u64 = 11;
const CLIENTS: usize = 6;
const GRAPHS: usize = 2;

fn ring(n: u32) -> Graph {
    Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

#[test]
fn coalesced_responses_match_the_per_walk_oracle_byte_for_byte() {
    let graphs: Vec<Arc<Graph>> =
        (0..GRAPHS).map(|i| Arc::new(ring(12 + 2 * i as u32))).collect();
    let task = Arc::new(TaskSpec::unlabeled());
    let seeds = |gi: usize| vec![gi as u64 * 17 + 1, gi as u64 * 17 + 2];

    // Phase 1 — the oracle, pinned to the per-walk decode path: a plain
    // synchronous registry handles each distinct request once.
    std::env::set_var("FAIRGEN_BATCH_DECODE", "0");
    let mut oracle = ModelRegistry::new(Box::new(NetGanGenerator::default()));
    let expected: Vec<Vec<Graph>> = graphs
        .iter()
        .enumerate()
        .map(|(gi, graph)| {
            oracle
                .handle(&GenerateRequest::new(graph, &task, FIT_SEED, seeds(gi)))
                .expect("oracle serve")
                .graphs
        })
        .collect();
    std::env::remove_var("FAIRGEN_BATCH_DECODE");

    // Phase 2 — the server, on the default (matrix-stepped) path, with
    // every client hammering the same two fingerprints so drains coalesce.
    let server = FairGenServer::new(
        || Box::new(NetGanGenerator::default()),
        ServerConfig {
            shards: 2,
            registry: RegistryConfig {
                capacity: GRAPHS,
                checkpoint_dir: None,
                ..RegistryConfig::default()
            },
            dedup_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server");

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let graphs = &graphs;
            let task = &task;
            let expected = &expected;
            scope.spawn(move || {
                for gi in 0..GRAPHS {
                    let response = server
                        .submit_shared(
                            Arc::clone(&graphs[gi]),
                            Arc::clone(task),
                            FIT_SEED,
                            seeds(gi),
                        )
                        .expect("submit")
                        .wait()
                        .expect("serve");
                    assert_eq!(
                        response.graphs, expected[gi],
                        "client {client} graph {gi}: batched-decode response \
                         diverged from the per-walk oracle"
                    );
                }
            });
        }
    });

    // Batching gauges must be self-consistent with what just happened.
    let stats = server.stats();
    let drains = stats.drains();
    assert!(drains >= 1, "the workers drained at least once");
    assert!(stats.drained_jobs() >= drains, "every drain carries at least one job");
    assert_eq!(
        stats.drain_hist().iter().sum::<u64>(),
        drains,
        "histogram buckets must partition the drains"
    );
    assert_eq!(
        stats.requests(),
        (CLIENTS * GRAPHS) as u64,
        "every submission was answered (registry or dedup)"
    );
}
