//! The serving request/response vocabulary.

use fairgen_baselines::TaskSpec;
use fairgen_graph::{FingerprintBuilder, Graph, GraphFingerprint};

/// One generation request: "give me these sample draws from the generator
/// fitted on this graph + task + fit seed".
///
/// Requests borrow their graph and task — the registry hashes them into a
/// [`GraphFingerprint`] and only clones into a model when it actually has
/// to fit.
#[derive(Clone, Debug)]
pub struct GenerateRequest<'a> {
    /// The observed graph to fit on (cache-key content).
    pub graph: &'a Graph,
    /// Task metadata: few-shot labels + protected group (cache-key content).
    pub task: &'a TaskSpec,
    /// The fit seed (cache-key content — distinct seeds are distinct models).
    pub fit_seed: u64,
    /// One synthetic graph is drawn per sample seed.
    pub sample_seeds: Vec<u64>,
}

impl<'a> GenerateRequest<'a> {
    /// A request for one draw per sample seed.
    pub fn new(
        graph: &'a Graph,
        task: &'a TaskSpec,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Self {
        GenerateRequest { graph, task, fit_seed, sample_seeds }
    }

    /// A single-draw request.
    pub fn single(
        graph: &'a Graph,
        task: &'a TaskSpec,
        fit_seed: u64,
        sample_seed: u64,
    ) -> Self {
        GenerateRequest::new(graph, task, fit_seed, vec![sample_seed])
    }
}

/// Where the model that answered a request came from.
///
/// (No `Eq`: [`ServedFrom::Stale`] carries the drift score as an `f64`.)
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServedFrom {
    /// First sighting of this fingerprint: the registry fitted a model.
    ColdFit,
    /// The fitted model was resident in memory.
    Memory,
    /// Warm start: the model was reloaded from a checkpoint file.
    Checkpoint,
    /// Every requested `(fingerprint, gen_seed)` pair was already in the
    /// cross-request sample-dedup cache: the response was assembled from
    /// cached graphs with **zero** model invocations (only the
    /// [`FairGenServer`](crate::FairGenServer) path produces this).
    DedupCache,
    /// The request's graph has drifted from the graph its model was fitted
    /// on — by edge deltas registered through
    /// [`ModelRegistry::apply_delta`](crate::ModelRegistry::apply_delta) —
    /// but the drift is still at or under the registry's threshold, so the
    /// **stale-but-bounded** lineage-root model answered instead of a
    /// refit. `drift` is the [`DriftScore::score`](fairgen_graph::DriftScore::score)
    /// at the time the delta was registered.
    Stale {
        /// Structural drift of the request graph relative to the fitted
        /// base graph, in `[0, 1]`.
        drift: f64,
    },
}

/// The registry's answer to a graph-delta update
/// ([`ModelRegistry::apply_delta`](crate::ModelRegistry::apply_delta) /
/// the server's `update_graph`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateOutcome {
    /// Fingerprint of the pre-delta request content.
    pub old_fingerprint: GraphFingerprint,
    /// Fingerprint of the post-delta request content — the key clients use
    /// for subsequent `generate` calls on the updated graph.
    pub new_fingerprint: GraphFingerprint,
    /// The lineage root the drift was measured against (the fingerprint of
    /// the fit the serving model came from **before** this update).
    pub root_fingerprint: GraphFingerprint,
    /// Cumulative drift of the post-delta graph relative to the lineage
    /// root's base graph.
    pub drift: f64,
    /// Whether the drift crossed the threshold and a refit happened: the
    /// new fingerprint is now its own lineage root with a freshly fitted
    /// model.
    pub refit: bool,
}

/// The registry's answer to a [`GenerateRequest`].
#[derive(Debug)]
pub struct GenerateResponse {
    /// The cache key the request mapped to.
    pub fingerprint: GraphFingerprint,
    /// Cold fit, memory hit, or checkpoint warm start. Same-key requests
    /// batched together all report their *group's* outcome.
    pub served_from: ServedFrom,
    /// One synthetic graph per requested sample seed, in order.
    pub graphs: Vec<Graph>,
}

/// Folds the request-side cache-key content: the graph (edge-order
/// independent), the task's labels (order-independent), class count and
/// protected group, and the fit seed.
pub(crate) fn fold_request_content(
    b: &mut FingerprintBuilder,
    graph: &Graph,
    task: &TaskSpec,
    fit_seed: u64,
) {
    b.add_graph(graph)
        .add_labels(&task.labeled)
        .add_usize(task.num_classes)
        .add_opt_node_set(task.protected.as_ref())
        .add_u64(fit_seed);
}

/// The request-content half of a cache key under a generator family name.
///
/// [`ModelRegistry`](crate::ModelRegistry) keys additionally fold the
/// generator's *hyperparameters*
/// ([`PersistableGraphGenerator::fold_config`][fold]) — use
/// [`ModelRegistry::fingerprint`](crate::ModelRegistry::fingerprint) when
/// you need the exact key a registry will use; this free function is the
/// config-free variant for callers that only have a family name.
///
/// [fold]: fairgen_baselines::persist::PersistableGraphGenerator::fold_config
pub fn fingerprint_request(
    generator_name: &str,
    graph: &Graph,
    task: &TaskSpec,
    fit_seed: u64,
) -> GraphFingerprint {
    let mut b = FingerprintBuilder::new();
    b.add_str(generator_name);
    fold_request_content(&mut b, graph, task, fit_seed);
    b.finish()
}

/// The exact cache key a registry or server over `generator` assigns to a
/// request: family name, hyperparameters (via [`fold_config`][fold]), and
/// request content. [`ModelRegistry::fingerprint`][reg] and
/// [`FairGenServer::route`](crate::FairGenServer::route) both derive their
/// keys through this one function, so routing, dedup keying, and registry
/// caching can never disagree.
///
/// [fold]: fairgen_baselines::persist::PersistableGraphGenerator::fold_config
/// [reg]: crate::ModelRegistry::fingerprint
pub fn fingerprint_with(
    generator: &dyn fairgen_baselines::persist::PersistableGraphGenerator,
    graph: &Graph,
    task: &TaskSpec,
    fit_seed: u64,
) -> GraphFingerprint {
    let mut b = FingerprintBuilder::new();
    b.add_str(generator.name());
    generator.fold_config(&mut b);
    fold_request_content(&mut b, graph, task, fit_seed);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_covers_every_request_field() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let task = TaskSpec::unlabeled();
        let base = fingerprint_request("ER", &g, &task, 1);
        assert_eq!(base, fingerprint_request("ER", &g, &task, 1));
        assert_ne!(base, fingerprint_request("BA", &g, &task, 1));
        assert_ne!(base, fingerprint_request("ER", &g, &task, 2));
        let relabeled = TaskSpec::new(vec![(0, 0)], 1, None);
        assert_ne!(base, fingerprint_request("ER", &g, &relabeled, 1));
        let g2 = Graph::from_edges(5, &[(0, 1), (2, 4)]);
        assert_ne!(base, fingerprint_request("ER", &g2, &task, 1));
    }

    #[test]
    fn sample_seeds_do_not_affect_the_key() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let task = TaskSpec::unlabeled();
        let a = GenerateRequest::single(&g, &task, 9, 1);
        let b = GenerateRequest::new(&g, &task, 9, vec![4, 5, 6]);
        assert_eq!(
            fingerprint_request("ER", a.graph, a.task, a.fit_seed),
            fingerprint_request("ER", b.graph, b.task, b.fit_seed),
        );
    }
}
