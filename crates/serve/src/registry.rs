//! The fit-once/serve-many model registry.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
use fairgen_baselines::TaskSpec;
use fairgen_core::error::{FairGenError, Result};
use fairgen_graph::{drift_between, Graph, GraphDelta, GraphFingerprint};
use fairgen_store::{ModelStore, RetentionPolicy, StoreStats};

use crate::request::{GenerateRequest, GenerateResponse, ServedFrom, UpdateOutcome};

/// Registry resource policy.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Maximum fitted models resident in memory; the least-recently-used
    /// entry is evicted past this budget. Must be at least 1.
    pub capacity: usize,
    /// When set, the registry opens a [`ModelStore`] over this directory:
    /// unknown fingerprints *warm-start* from the newest intact
    /// generation-counted checkpoint (`fg-<fp>.g<N>.ckpt`; legacy flat
    /// `fg-<fp>.ckpt` files are adopted as generation 1), and evicted
    /// models *publish* a fresh generation there instead of discarding the
    /// training work.
    pub checkpoint_dir: Option<PathBuf>,
    /// On-disk retention for the checkpoint store: generations kept per
    /// fingerprint and the optional total-byte budget. Ignored without a
    /// `checkpoint_dir`.
    pub retention: RetentionPolicy,
    /// How much structural drift ([`DriftScore::score`]) an evolving graph
    /// may accumulate — via [`ModelRegistry::apply_delta`] — before the
    /// registry stops serving the stale lineage-root model and refits.
    /// `0.0` refits on every delta; the default `0.1` tolerates a 10%
    /// degree/adjacency shift.
    ///
    /// [`DriftScore::score`]: fairgen_graph::DriftScore::score
    pub drift_threshold: f64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            capacity: 8,
            checkpoint_dir: None,
            retention: RetentionPolicy::default(),
            drift_threshold: 0.1,
        }
    }
}

/// Monotonic counters describing everything the registry has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests answered (batched same-key requests each count once).
    pub requests: u64,
    /// Models fitted from scratch — the expensive event the registry
    /// exists to amortize. (Drift-triggered refits count separately in
    /// [`drift_refits`](RegistryStats::drift_refits).)
    pub cold_fits: u64,
    /// Requests answered by a memory-resident model under their own
    /// fingerprint.
    pub memory_hits: u64,
    /// Models warm-started from a checkpoint file.
    pub checkpoint_loads: u64,
    /// Models evicted under the capacity budget.
    pub evictions: u64,
    /// Evicted models spilled to checkpoint files.
    pub spills: u64,
    /// Requests answered by a **stale-but-bounded** lineage-root model:
    /// the request graph had drifted (within threshold) from the graph the
    /// model was fitted on.
    pub stale_hits: u64,
    /// Graph deltas applied through [`ModelRegistry::apply_delta`]
    /// (whether or not they triggered a refit).
    pub delta_updates: u64,
    /// Deltas whose cumulative drift crossed the threshold and forced a
    /// refit on the updated graph.
    pub drift_refits: u64,
}

impl RegistryStats {
    /// Folds another counter set into this one — how a sharded server
    /// aggregates per-shard registries into fleet totals.
    pub fn merge(&mut self, other: &RegistryStats) {
        self.requests += other.requests;
        self.cold_fits += other.cold_fits;
        self.memory_hits += other.memory_hits;
        self.checkpoint_loads += other.checkpoint_loads;
        self.evictions += other.evictions;
        self.spills += other.spills;
        self.stale_hits += other.stale_hits;
        self.delta_updates += other.delta_updates;
        self.drift_refits += other.drift_refits;
    }

    /// Models fitted from scratch — alias for
    /// [`cold_fits`](RegistryStats::cold_fits) under the serving layer's
    /// vocabulary ("exactly one fit per distinct fingerprint").
    pub fn fits(&self) -> u64 {
        self.cold_fits
    }
}

struct Entry {
    model: Box<dyn PersistableGenerator>,
    last_used: u64,
    /// Whether the in-memory state is newer than any checkpoint file: true
    /// after a cold fit, false after a checkpoint load or a spill. Clean
    /// entries are skipped on eviction/spill — re-writing a model that was
    /// loaded from its own checkpoint and never refit is wasted IO (and a
    /// gratuitous double write of identical bytes).
    dirty: bool,
}

/// Where a drifted fingerprint's serving model came from: the lineage root
/// it aliases, the graph that root was fitted on (drift is always measured
/// against it, so chained deltas accumulate instead of resetting), and the
/// drift at registration time.
struct Lineage {
    root: GraphFingerprint,
    base_graph: Arc<Graph>,
    drift: f64,
}

/// A long-lived model cache over one generator family: fits **once** per
/// distinct [`GraphFingerprint`], serves every later request from the
/// cached [`PersistableGenerator`], batches same-key requests through
/// `generate_batch`, evicts LRU past a configurable budget, and — when a
/// checkpoint directory is configured — spills evicted models into a
/// managed [`ModelStore`] (generational files, retention, corruption
/// quarantine) and warm-starts from the newest intact generation written
/// by any earlier process.
///
/// For **evolving graphs**, [`ModelRegistry::apply_delta`] registers edge
/// insertions/removals: while the cumulative [drift] stays at or under
/// [`RegistryConfig::drift_threshold`] the updated graph's fingerprint is
/// aliased to its lineage root and served by the existing (stale but
/// bounded) model; the first delta to cross the threshold triggers exactly
/// one refit on the updated graph.
///
/// [drift]: fairgen_graph::DriftScore
///
/// ```no_run
/// use fairgen_baselines::{ErGenerator, TaskSpec};
/// use fairgen_serve::{GenerateRequest, ModelRegistry};
/// # fn demo(g: fairgen_graph::Graph) -> fairgen_core::error::Result<()> {
/// let mut registry = ModelRegistry::new(Box::new(ErGenerator));
/// let task = TaskSpec::unlabeled();
/// let cold = registry.handle(&GenerateRequest::single(&g, &task, 42, 1))?;
/// let warm = registry.handle(&GenerateRequest::single(&g, &task, 42, 2))?; // no refit
/// # let _ = (cold, warm); Ok(())
/// # }
/// ```
pub struct ModelRegistry {
    generator: Box<dyn PersistableGraphGenerator>,
    cfg: RegistryConfig,
    entries: HashMap<GraphFingerprint, Entry>,
    lineage: HashMap<GraphFingerprint, Lineage>,
    store: Option<ModelStore>,
    clock: u64,
    stats: RegistryStats,
}

impl ModelRegistry {
    /// A registry with the default policy (8 resident models, no
    /// checkpoint directory).
    pub fn new(generator: Box<dyn PersistableGraphGenerator>) -> Self {
        Self::with_config(generator, RegistryConfig::default())
            .expect("default config is valid")
    }

    /// A registry with an explicit policy. Opens a [`ModelStore`] over the
    /// checkpoint directory when one is configured (creating it, sweeping
    /// publish debris, and adopting legacy flat checkpoints).
    ///
    /// # Errors
    ///
    /// [`FairGenError::InvalidConfig`] on a zero capacity or a
    /// non-finite/negative drift threshold; [`FairGenError::Io`] when the
    /// checkpoint directory cannot be opened.
    pub fn with_config(
        generator: Box<dyn PersistableGraphGenerator>,
        cfg: RegistryConfig,
    ) -> Result<Self> {
        let store = match &cfg.checkpoint_dir {
            Some(dir) => Some(ModelStore::open(dir, cfg.retention)?),
            None => None,
        };
        Self::with_store(generator, cfg, store)
    }

    /// A registry over an already-open store — how the sharded server
    /// gives every shard registry the *same* [`ModelStore`] (it is a cheap
    /// handle clone), so retention and quarantine are enforced once per
    /// directory instead of once per shard.
    pub fn with_store(
        generator: Box<dyn PersistableGraphGenerator>,
        cfg: RegistryConfig,
        store: Option<ModelStore>,
    ) -> Result<Self> {
        if cfg.capacity == 0 {
            return Err(FairGenError::InvalidConfig {
                field: "capacity",
                message: "registry needs room for at least one model".into(),
            });
        }
        if !cfg.drift_threshold.is_finite() || cfg.drift_threshold < 0.0 {
            return Err(FairGenError::InvalidConfig {
                field: "drift_threshold",
                message: format!(
                    "drift threshold must be finite and non-negative, got {}",
                    cfg.drift_threshold
                ),
            });
        }
        Ok(ModelRegistry {
            generator,
            cfg,
            entries: HashMap::new(),
            lineage: HashMap::new(),
            store,
            clock: 0,
            stats: RegistryStats::default(),
        })
    }

    /// The generator family this registry serves.
    pub fn generator_name(&self) -> &'static str {
        self.generator.name()
    }

    /// The cache key a request maps to. It folds the generator name *and*
    /// its hyperparameters
    /// ([`fold_config`](PersistableGraphGenerator::fold_config)) alongside
    /// the request content, so registries over different families — or the
    /// same family under different configs — never share keys even when
    /// they share a checkpoint directory.
    pub fn fingerprint(&self, g: &Graph, task: &TaskSpec, fit_seed: u64) -> GraphFingerprint {
        crate::request::fingerprint_with(self.generator.as_ref(), g, task, fit_seed)
    }

    /// Number of memory-resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no model is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a fingerprint is currently resident in memory (under its
    /// own key; drifted aliases resolve to their lineage root first).
    pub fn contains(&self, fp: GraphFingerprint) -> bool {
        self.entries.contains_key(&fp)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// A snapshot of the backing [`ModelStore`]'s counters, when a
    /// checkpoint directory is configured.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// The backing model store handle, when configured.
    pub fn store(&self) -> Option<&ModelStore> {
        self.store.as_ref()
    }

    /// The lineage root a fingerprint currently serves from: `fp` itself
    /// unless a within-threshold delta chain aliases it to an older fit.
    pub fn lineage_root(&self, fp: GraphFingerprint) -> GraphFingerprint {
        self.lineage.get(&fp).map(|l| l.root).unwrap_or(fp)
    }

    /// Answers one request: resolve the fingerprint to a model (lineage
    /// alias → memory → checkpoint → fresh fit), draw one graph per sample
    /// seed through `generate_batch`, and report where the model came from.
    pub fn handle(&mut self, req: &GenerateRequest) -> Result<GenerateResponse> {
        let fp = self.fingerprint(req.graph, req.task, req.fit_seed);
        let (served_from, effective) = self.ensure(fp, req)?;
        self.stats.requests += 1;
        let graphs = self.generate_on(effective, &req.sample_seeds)?;
        Ok(GenerateResponse { fingerprint: fp, served_from, graphs })
    }

    /// Answers a batch, coalescing same-key requests: each distinct
    /// fingerprint is resolved **once** and all its sample seeds run
    /// through a single `generate_batch` call, so n same-key requests cost
    /// one fit (at most) and one batched generation pass. Responses come
    /// back in request order; requests sharing a key all report their
    /// group's [`ServedFrom`].
    pub fn handle_batch(&mut self, reqs: &[GenerateRequest]) -> Result<Vec<GenerateResponse>> {
        let keys: Vec<GraphFingerprint> =
            reqs.iter().map(|r| self.fingerprint(r.graph, r.task, r.fit_seed)).collect();
        self.handle_batch_keyed(reqs, &keys)
    }

    /// [`ModelRegistry::handle_batch`] with the cache keys precomputed by
    /// the caller — the serving front-end fingerprints every request once
    /// at submit time (for shard routing and dedup) and passes the keys
    /// through, so the shard worker never re-hashes graph content.
    ///
    /// `keys[i]` **must** equal `self.fingerprint(...)` of `reqs[i]`
    /// (guaranteed when both sides derive keys via
    /// [`fingerprint_with`](crate::request::fingerprint_with) over
    /// identically-configured generators); a caller that violates this
    /// caches models under wrong keys.
    pub fn handle_batch_keyed(
        &mut self,
        reqs: &[GenerateRequest],
        keys: &[GraphFingerprint],
    ) -> Result<Vec<GenerateResponse>> {
        if keys.len() != reqs.len() {
            return Err(FairGenError::Internal {
                detail: format!("{} requests arrived with {} keys", reqs.len(), keys.len()),
            });
        }
        // Group request indices by fingerprint, preserving first-seen order.
        let mut order: Vec<GraphFingerprint> = Vec::new();
        let mut groups: HashMap<GraphFingerprint, Vec<usize>> = HashMap::new();
        for (i, &fp) in keys.iter().enumerate() {
            let slot = groups.entry(fp).or_default();
            if slot.is_empty() {
                order.push(fp);
            }
            slot.push(i);
        }
        let mut responses: Vec<(usize, GenerateResponse)> = Vec::with_capacity(reqs.len());
        for fp in order {
            let members = &groups[&fp];
            let (served_from, effective) = self.ensure(fp, &reqs[members[0]])?;
            // The group resolved once; its remaining members are served by
            // the now-resident model, so per-request counters stay
            // consistent (requests == cold_fits + memory_hits +
            // checkpoint_loads + stale_hits).
            let rest = members.len() as u64 - 1;
            if matches!(served_from, ServedFrom::Stale { .. }) {
                self.stats.stale_hits += rest;
            } else {
                self.stats.memory_hits += rest;
            }
            let merged: Vec<u64> =
                members.iter().flat_map(|&i| reqs[i].sample_seeds.iter().copied()).collect();
            let mut graphs = self.generate_on(effective, &merged)?;
            // Split the batched output back per request, front to back.
            for &i in members.iter().rev() {
                let tail = graphs.split_off(graphs.len() - reqs[i].sample_seeds.len());
                responses
                    .push((i, GenerateResponse { fingerprint: fp, served_from, graphs: tail }));
                self.stats.requests += 1;
            }
        }
        // Every request index appears in exactly one group, so sorting by
        // index restores request order without a partial-initialization
        // unwrap; a miscount is a registry bug surfaced as a typed error,
        // not a panic mid-serve.
        if responses.len() != reqs.len() {
            return Err(FairGenError::Internal {
                detail: format!(
                    "batched {} requests but produced {} responses",
                    reqs.len(),
                    responses.len()
                ),
            });
        }
        responses.sort_unstable_by_key(|&(i, _)| i);
        Ok(responses.into_iter().map(|(_, r)| r).collect())
    }

    /// Registers an edge-delta update to an observed graph and decides
    /// between **stale-but-bounded serving** and a refit.
    ///
    /// The pre-delta request content (graph/task/fit seed) identifies the
    /// model being evolved; the post-delta graph is built incrementally via
    /// [`Graph::apply_delta`]. Drift is measured against the graph the
    /// lineage *root* model was fitted on — so chained deltas accumulate —
    /// and:
    ///
    /// * **drift ≤ threshold**: the new fingerprint is aliased to the root
    ///   and later `generate` requests for the updated graph are answered
    ///   by the existing model, reported as [`ServedFrom::Stale`]. No fit
    ///   happens.
    /// * **drift > threshold**: the registry refits on the updated graph
    ///   (counted in [`RegistryStats::drift_refits`], *not* `cold_fits`)
    ///   and the new fingerprint becomes its own lineage root; its samples
    ///   are byte-identical to a fit-from-scratch on the updated graph.
    ///
    /// Clients need not replay history: an unknown pre-delta fingerprint
    /// starts a fresh lineage rooted at the pre-delta graph.
    pub fn apply_delta(
        &mut self,
        graph: &Arc<Graph>,
        task: &TaskSpec,
        fit_seed: u64,
        delta: &GraphDelta,
    ) -> Result<UpdateOutcome> {
        let old_fp = self.fingerprint(graph, task, fit_seed);
        let new_graph = Arc::new(graph.apply_delta(delta)?);
        let new_fp = self.fingerprint(&new_graph, task, fit_seed);
        let (root, base_graph) = match self.lineage.get(&old_fp) {
            Some(lin) => (lin.root, Arc::clone(&lin.base_graph)),
            None => (old_fp, Arc::clone(graph)),
        };
        let drift = drift_between(&base_graph, &new_graph)?.score();
        self.stats.delta_updates += 1;
        if drift <= self.cfg.drift_threshold {
            if new_fp != root {
                self.lineage.insert(new_fp, Lineage { root, base_graph, drift });
            }
            return Ok(UpdateOutcome {
                old_fingerprint: old_fp,
                new_fingerprint: new_fp,
                root_fingerprint: root,
                drift,
                refit: false,
            });
        }
        // Threshold crossed: the updated graph gets its own fit, under its
        // own fingerprint, and becomes a fresh lineage root. The fit runs
        // eagerly (not lazily on next generate) so the decision is visible
        // in the outcome and the next request is already warm.
        self.lineage.remove(&new_fp);
        self.clock += 1;
        let model = self.generator.fit_persistable(&new_graph, task, fit_seed)?;
        self.stats.drift_refits += 1;
        self.entries.insert(new_fp, Entry { model, last_used: self.clock, dirty: true });
        self.evict_over_budget()?;
        Ok(UpdateOutcome {
            old_fingerprint: old_fp,
            new_fingerprint: new_fp,
            root_fingerprint: root,
            drift,
            refit: true,
        })
    }

    /// Spills every **dirty** resident model into the checkpoint store
    /// (no-op without one configured) as a fresh generation and marks it
    /// clean, so repeated spills — or a later eviction — never rewrite
    /// unchanged bytes. Returns how many checkpoints were published.
    pub fn spill_all(&mut self) -> Result<usize> {
        let Some(store) = self.store.clone() else { return Ok(0) };
        let mut dirty: Vec<GraphFingerprint> =
            self.entries.iter().filter(|(_, e)| e.dirty).map(|(&fp, _)| fp).collect();
        // Deterministic write order, independent of map iteration.
        dirty.sort_unstable();
        for &fp in &dirty {
            store.publish_model(fp, self.entries[&fp].model.as_ref())?;
            self.stats.spills += 1;
            if let Some(entry) = self.entries.get_mut(&fp) {
                entry.dirty = false;
            }
        }
        Ok(dirty.len())
    }

    /// Drops every resident model (checkpoint files are untouched).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resolves `fp` to a resident model — lineage alias first, then
    /// memory hit, checkpoint warm start, or a fresh fit — then enforces
    /// the LRU budget. Returns the outcome and the *effective* fingerprint
    /// the model is cached under (the lineage root for drifted aliases).
    fn ensure(
        &mut self,
        fp: GraphFingerprint,
        req: &GenerateRequest,
    ) -> Result<(ServedFrom, GraphFingerprint)> {
        self.clock += 1;
        let (effective, stale_drift, base_graph) = match self.lineage.get(&fp) {
            Some(lin) => (lin.root, Some(lin.drift), Some(Arc::clone(&lin.base_graph))),
            None => (fp, None, None),
        };
        if let Some(entry) = self.entries.get_mut(&effective) {
            entry.last_used = self.clock;
            if let Some(store) = &self.store {
                store.touch(effective);
            }
            return Ok(match stale_drift {
                Some(drift) => {
                    self.stats.stale_hits += 1;
                    (ServedFrom::Stale { drift }, effective)
                }
                None => {
                    self.stats.memory_hits += 1;
                    (ServedFrom::Memory, effective)
                }
            });
        }
        let loaded = match &self.store {
            // Lenient load: a corrupt newest generation is quarantined and
            // the next-oldest intact one wins; nothing intact → fresh fit.
            Some(store) => store.load_latest(effective)?,
            None => None,
        };
        let (model, served_from, dirty) = match loaded {
            Some(loaded) => {
                self.stats.checkpoint_loads += 1;
                // The store already holds exactly this state: clean.
                (loaded.model, ServedFrom::Checkpoint, false)
            }
            None => {
                // A drifted alias must reproduce the *root* model, so the
                // fit runs on the lineage base graph — never the drifted
                // request graph — keeping samples byte-identical across
                // processes regardless of which alias warmed the cache.
                let fit_graph: &Graph = base_graph.as_deref().unwrap_or(req.graph);
                let model =
                    self.generator.fit_persistable(fit_graph, req.task, req.fit_seed)?;
                self.stats.cold_fits += 1;
                (model, ServedFrom::ColdFit, true)
            }
        };
        self.entries.insert(effective, Entry { model, last_used: self.clock, dirty });
        self.evict_over_budget()?;
        Ok(match stale_drift {
            Some(drift) => {
                self.stats.stale_hits += 1;
                (ServedFrom::Stale { drift }, effective)
            }
            None => (served_from, effective),
        })
    }

    fn generate_on(&mut self, fp: GraphFingerprint, seeds: &[u64]) -> Result<Vec<Graph>> {
        let entry = self.entries.get_mut(&fp).ok_or_else(|| FairGenError::Internal {
            detail: format!("model {fp} vanished between ensure and generate"),
        })?;
        // One `generate_batch` call for the whole same-key batch: the LM
        // families sample via KV-cached incremental decoding (fanned out
        // over the process-wide `fairgen_par` pool, one decode state per
        // worker), so a whole batch of seeds shares the parallel sampling
        // machinery per walk.
        entry.model.generate_batch(seeds)
    }

    /// Evicts least-recently-used entries until the budget holds, breaking
    /// `last_used` ties on the fingerprint so the victim is a pure function
    /// of the request history (never `HashMap` iteration order). A dirty
    /// victim is published into the checkpoint store when one is configured
    /// (eviction demotes a model from memory to disk instead of discarding
    /// the training work); a clean victim — loaded from its own checkpoint
    /// and never refit — is dropped without rewriting the file.
    fn evict_over_budget(&mut self) -> Result<()> {
        while self.entries.len() > self.cfg.capacity {
            let Some(victim) =
                self.entries.iter().min_by_key(|(&fp, e)| (e.last_used, fp)).map(|(&fp, _)| fp)
            else {
                return Err(FairGenError::Internal {
                    detail: "registry over budget with no entries".into(),
                });
            };
            if self.entries[&victim].dirty {
                if let Some(store) = &self.store {
                    store.publish_model(victim, self.entries[&victim].model.as_ref())?;
                    self.stats.spills += 1;
                }
            }
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("generator", &self.generator.name())
            .field("resident", &self.entries.len())
            .field("aliases", &self.lineage.len())
            .field("capacity", &self.cfg.capacity)
            .field("checkpoint_dir", &self.cfg.checkpoint_dir)
            .field("stats", &self.stats)
            .finish()
    }
}
