//! The fit-once/serve-many model registry.

use std::collections::HashMap;
use std::path::PathBuf;

use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};
use fairgen_baselines::TaskSpec;
use fairgen_core::checkpoint;
use fairgen_core::error::{FairGenError, Result};
use fairgen_graph::{Graph, GraphFingerprint};

use crate::request::{GenerateRequest, GenerateResponse, ServedFrom};

/// Registry resource policy.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Maximum fitted models resident in memory; the least-recently-used
    /// entry is evicted past this budget. Must be at least 1.
    pub capacity: usize,
    /// When set, the registry *warm-starts* unknown fingerprints from
    /// `<dir>/fg-<fingerprint>.ckpt` before fitting, and *spills* evicted
    /// models there instead of discarding the training work.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig { capacity: 8, checkpoint_dir: None }
    }
}

/// Monotonic counters describing everything the registry has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests answered (batched same-key requests each count once).
    pub requests: u64,
    /// Models fitted from scratch — the expensive event the registry
    /// exists to amortize.
    pub cold_fits: u64,
    /// Requests answered by a memory-resident model.
    pub memory_hits: u64,
    /// Models warm-started from a checkpoint file.
    pub checkpoint_loads: u64,
    /// Models evicted under the capacity budget.
    pub evictions: u64,
    /// Evicted models spilled to checkpoint files.
    pub spills: u64,
}

impl RegistryStats {
    /// Folds another counter set into this one — how a sharded server
    /// aggregates per-shard registries into fleet totals.
    pub fn merge(&mut self, other: &RegistryStats) {
        self.requests += other.requests;
        self.cold_fits += other.cold_fits;
        self.memory_hits += other.memory_hits;
        self.checkpoint_loads += other.checkpoint_loads;
        self.evictions += other.evictions;
        self.spills += other.spills;
    }

    /// Models fitted from scratch — alias for
    /// [`cold_fits`](RegistryStats::cold_fits) under the serving layer's
    /// vocabulary ("exactly one fit per distinct fingerprint").
    pub fn fits(&self) -> u64 {
        self.cold_fits
    }
}

struct Entry {
    model: Box<dyn PersistableGenerator>,
    last_used: u64,
    /// Whether the in-memory state is newer than any checkpoint file: true
    /// after a cold fit, false after a checkpoint load or a spill. Clean
    /// entries are skipped on eviction/spill — re-writing a model that was
    /// loaded from its own checkpoint and never refit is wasted IO (and a
    /// gratuitous double write of identical bytes).
    dirty: bool,
}

/// A long-lived model cache over one generator family: fits **once** per
/// distinct [`GraphFingerprint`], serves every later request from the
/// cached [`PersistableGenerator`], batches same-key requests through
/// `generate_batch`, evicts LRU past a configurable budget, and — when a
/// checkpoint directory is configured — spills evicted models to disk and
/// warm-starts from files written by any earlier process.
///
/// ```no_run
/// use fairgen_baselines::{ErGenerator, TaskSpec};
/// use fairgen_serve::{GenerateRequest, ModelRegistry};
/// # fn demo(g: fairgen_graph::Graph) -> fairgen_core::error::Result<()> {
/// let mut registry = ModelRegistry::new(Box::new(ErGenerator));
/// let task = TaskSpec::unlabeled();
/// let cold = registry.handle(&GenerateRequest::single(&g, &task, 42, 1))?;
/// let warm = registry.handle(&GenerateRequest::single(&g, &task, 42, 2))?; // no refit
/// # let _ = (cold, warm); Ok(())
/// # }
/// ```
pub struct ModelRegistry {
    generator: Box<dyn PersistableGraphGenerator>,
    cfg: RegistryConfig,
    entries: HashMap<GraphFingerprint, Entry>,
    clock: u64,
    stats: RegistryStats,
}

impl ModelRegistry {
    /// A registry with the default policy (8 resident models, no
    /// checkpoint directory).
    pub fn new(generator: Box<dyn PersistableGraphGenerator>) -> Self {
        Self::with_config(generator, RegistryConfig::default())
            .expect("default config is valid")
    }

    /// A registry with an explicit policy. Creates the checkpoint
    /// directory if configured.
    ///
    /// # Errors
    ///
    /// [`FairGenError::InvalidConfig`] on a zero capacity;
    /// [`FairGenError::Io`] when the checkpoint directory cannot be
    /// created.
    pub fn with_config(
        generator: Box<dyn PersistableGraphGenerator>,
        cfg: RegistryConfig,
    ) -> Result<Self> {
        if cfg.capacity == 0 {
            return Err(FairGenError::InvalidConfig {
                field: "capacity",
                message: "registry needs room for at least one model".into(),
            });
        }
        if let Some(dir) = &cfg.checkpoint_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ModelRegistry {
            generator,
            cfg,
            entries: HashMap::new(),
            clock: 0,
            stats: RegistryStats::default(),
        })
    }

    /// The generator family this registry serves.
    pub fn generator_name(&self) -> &'static str {
        self.generator.name()
    }

    /// The cache key a request maps to. It folds the generator name *and*
    /// its hyperparameters
    /// ([`fold_config`](PersistableGraphGenerator::fold_config)) alongside
    /// the request content, so registries over different families — or the
    /// same family under different configs — never share keys even when
    /// they share a checkpoint directory.
    pub fn fingerprint(&self, g: &Graph, task: &TaskSpec, fit_seed: u64) -> GraphFingerprint {
        crate::request::fingerprint_with(self.generator.as_ref(), g, task, fit_seed)
    }

    /// Number of memory-resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no model is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a fingerprint is currently resident in memory.
    pub fn contains(&self, fp: GraphFingerprint) -> bool {
        self.entries.contains_key(&fp)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Answers one request: resolve the fingerprint to a model (memory →
    /// checkpoint → fresh fit), draw one graph per sample seed through
    /// `generate_batch`, and report where the model came from.
    pub fn handle(&mut self, req: &GenerateRequest) -> Result<GenerateResponse> {
        let fp = self.fingerprint(req.graph, req.task, req.fit_seed);
        let served_from = self.ensure(fp, req)?;
        self.stats.requests += 1;
        let graphs = self.generate_on(fp, &req.sample_seeds)?;
        Ok(GenerateResponse { fingerprint: fp, served_from, graphs })
    }

    /// Answers a batch, coalescing same-key requests: each distinct
    /// fingerprint is resolved **once** and all its sample seeds run
    /// through a single `generate_batch` call, so n same-key requests cost
    /// one fit (at most) and one batched generation pass. Responses come
    /// back in request order; requests sharing a key all report their
    /// group's [`ServedFrom`].
    pub fn handle_batch(&mut self, reqs: &[GenerateRequest]) -> Result<Vec<GenerateResponse>> {
        let keys: Vec<GraphFingerprint> =
            reqs.iter().map(|r| self.fingerprint(r.graph, r.task, r.fit_seed)).collect();
        self.handle_batch_keyed(reqs, &keys)
    }

    /// [`ModelRegistry::handle_batch`] with the cache keys precomputed by
    /// the caller — the serving front-end fingerprints every request once
    /// at submit time (for shard routing and dedup) and passes the keys
    /// through, so the shard worker never re-hashes graph content.
    ///
    /// `keys[i]` **must** equal `self.fingerprint(...)` of `reqs[i]`
    /// (guaranteed when both sides derive keys via
    /// [`fingerprint_with`](crate::request::fingerprint_with) over
    /// identically-configured generators); a caller that violates this
    /// caches models under wrong keys.
    pub fn handle_batch_keyed(
        &mut self,
        reqs: &[GenerateRequest],
        keys: &[GraphFingerprint],
    ) -> Result<Vec<GenerateResponse>> {
        if keys.len() != reqs.len() {
            return Err(FairGenError::Internal {
                detail: format!("{} requests arrived with {} keys", reqs.len(), keys.len()),
            });
        }
        // Group request indices by fingerprint, preserving first-seen order.
        let mut order: Vec<GraphFingerprint> = Vec::new();
        let mut groups: HashMap<GraphFingerprint, Vec<usize>> = HashMap::new();
        for (i, &fp) in keys.iter().enumerate() {
            let slot = groups.entry(fp).or_default();
            if slot.is_empty() {
                order.push(fp);
            }
            slot.push(i);
        }
        let mut responses: Vec<(usize, GenerateResponse)> = Vec::with_capacity(reqs.len());
        for fp in order {
            let members = &groups[&fp];
            let served_from = self.ensure(fp, &reqs[members[0]])?;
            // The group resolved once; its remaining members are served by
            // the now-resident model, so per-request counters stay
            // consistent (requests == cold_fits + memory_hits +
            // checkpoint_loads).
            self.stats.memory_hits += members.len() as u64 - 1;
            let merged: Vec<u64> =
                members.iter().flat_map(|&i| reqs[i].sample_seeds.iter().copied()).collect();
            let mut graphs = self.generate_on(fp, &merged)?;
            // Split the batched output back per request, front to back.
            for &i in members.iter().rev() {
                let tail = graphs.split_off(graphs.len() - reqs[i].sample_seeds.len());
                responses
                    .push((i, GenerateResponse { fingerprint: fp, served_from, graphs: tail }));
                self.stats.requests += 1;
            }
        }
        // Every request index appears in exactly one group, so sorting by
        // index restores request order without a partial-initialization
        // unwrap; a miscount is a registry bug surfaced as a typed error,
        // not a panic mid-serve.
        if responses.len() != reqs.len() {
            return Err(FairGenError::Internal {
                detail: format!(
                    "batched {} requests but produced {} responses",
                    reqs.len(),
                    responses.len()
                ),
            });
        }
        responses.sort_unstable_by_key(|&(i, _)| i);
        Ok(responses.into_iter().map(|(_, r)| r).collect())
    }

    /// Spills every **dirty** resident model to the checkpoint directory
    /// (no-op without one configured) and marks it clean, so repeated
    /// spills — or a later eviction — never rewrite unchanged bytes.
    /// Returns how many files were written.
    pub fn spill_all(&mut self) -> Result<usize> {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else { return Ok(0) };
        let mut dirty: Vec<GraphFingerprint> =
            self.entries.iter().filter(|(_, e)| e.dirty).map(|(&fp, _)| fp).collect();
        // Deterministic write order, independent of map iteration.
        dirty.sort_unstable();
        for &fp in &dirty {
            checkpoint::save_to(
                checkpoint_path_in(&dir, fp),
                self.entries[&fp].model.as_ref(),
            )?;
            self.stats.spills += 1;
            if let Some(entry) = self.entries.get_mut(&fp) {
                entry.dirty = false;
            }
        }
        Ok(dirty.len())
    }

    /// Drops every resident model (checkpoint files are untouched).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn checkpoint_path(&self, fp: GraphFingerprint) -> Option<PathBuf> {
        self.cfg.checkpoint_dir.as_ref().map(|dir| checkpoint_path_in(dir, fp))
    }

    /// Resolves `fp` to a resident model: memory hit, checkpoint warm
    /// start, or a fresh fit — in that order — then enforces the LRU
    /// budget.
    fn ensure(&mut self, fp: GraphFingerprint, req: &GenerateRequest) -> Result<ServedFrom> {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&fp) {
            entry.last_used = self.clock;
            self.stats.memory_hits += 1;
            return Ok(ServedFrom::Memory);
        }
        let (model, served_from, dirty) = match self.checkpoint_path(fp).filter(|p| p.exists())
        {
            Some(path) => {
                let model = checkpoint::load_from(path)?;
                self.stats.checkpoint_loads += 1;
                // The file already holds exactly this state: clean.
                (model, ServedFrom::Checkpoint, false)
            }
            None => {
                let model =
                    self.generator.fit_persistable(req.graph, req.task, req.fit_seed)?;
                self.stats.cold_fits += 1;
                (model, ServedFrom::ColdFit, true)
            }
        };
        self.entries.insert(fp, Entry { model, last_used: self.clock, dirty });
        self.evict_over_budget()?;
        Ok(served_from)
    }

    fn generate_on(&mut self, fp: GraphFingerprint, seeds: &[u64]) -> Result<Vec<Graph>> {
        let entry = self.entries.get_mut(&fp).ok_or_else(|| FairGenError::Internal {
            detail: format!("model {fp} vanished between ensure and generate"),
        })?;
        // One `generate_batch` call for the whole same-key batch: the LM
        // families sample via KV-cached incremental decoding (fanned out
        // over the process-wide `fairgen_par` pool, one decode state per
        // worker), so a whole batch of seeds shares the parallel sampling
        // machinery per walk.
        entry.model.generate_batch(seeds)
    }

    /// Evicts least-recently-used entries until the budget holds, breaking
    /// `last_used` ties on the fingerprint so the victim is a pure function
    /// of the request history (never `HashMap` iteration order). A dirty
    /// victim is spilled to the checkpoint directory when one is configured
    /// (eviction demotes a model from memory to disk instead of discarding
    /// the training work); a clean victim — loaded from its own checkpoint
    /// and never refit — is dropped without rewriting the file.
    fn evict_over_budget(&mut self) -> Result<()> {
        while self.entries.len() > self.cfg.capacity {
            let Some(victim) =
                self.entries.iter().min_by_key(|(&fp, e)| (e.last_used, fp)).map(|(&fp, _)| fp)
            else {
                return Err(FairGenError::Internal {
                    detail: "registry over budget with no entries".into(),
                });
            };
            if self.entries[&victim].dirty {
                if let Some(path) = self.checkpoint_path(victim) {
                    checkpoint::save_to(path, self.entries[&victim].model.as_ref())?;
                    self.stats.spills += 1;
                }
            }
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        Ok(())
    }
}

fn checkpoint_path_in(dir: &std::path::Path, fp: GraphFingerprint) -> PathBuf {
    dir.join(format!("fg-{}.ckpt", fp.to_hex()))
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("generator", &self.generator.name())
            .field("resident", &self.entries.len())
            .field("capacity", &self.cfg.capacity)
            .field("checkpoint_dir", &self.cfg.checkpoint_dir)
            .field("stats", &self.stats)
            .finish()
    }
}
