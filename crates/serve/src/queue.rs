//! The per-shard work queue: owned jobs in, fulfilled response slots out.
//!
//! [`GenerateRequest`](crate::GenerateRequest) borrows its graph and task —
//! the right shape for a synchronous registry call, but a queued job must
//! own its data to cross the thread boundary into a shard worker. The
//! crate-private `Job` is that owned form ([`Arc`]s, so many same-content
//! requests share one allocation), paired with a response slot the worker
//! fulfills and a [`PendingResponse`] the submitting client blocks on.
//! Graph-delta updates ride the same queue as a second
//! `JobPayload` variant, redeemed through [`PendingUpdate`].
//!
//! The queue itself is a [`fairgen_admission::AdmissionQueue`] — a bounded
//! two-lane channel with deadline shedding; shard workers consume with
//! [`AdmissionQueue::drain`], so every request that accumulated while the
//! worker was busy arrives as one batch — the mechanism behind cross-client
//! coalescing. Under the default permissive
//! [`AdmissionConfig`](fairgen_admission::AdmissionConfig) (unbounded, no
//! deadlines) it behaves exactly like the plain [`fairgen_par::Channel`]
//! it replaced.

use std::sync::{Arc, Condvar, Mutex};

use fairgen_admission::{AdmissionQueue, DropReason};
use fairgen_baselines::TaskSpec;
use fairgen_core::error::{FairGenError, Result};
use fairgen_graph::{Graph, GraphDelta, GraphFingerprint};

use crate::request::{GenerateResponse, UpdateOutcome};

/// What a queued job asks the shard worker to do.
pub(crate) enum JobPayload {
    /// Draw one synthetic graph per sample seed.
    Generate { sample_seeds: Vec<u64>, slot: ResponseSlot<GenerateResponse> },
    /// Register an edge delta against the job's graph (stale-serve or
    /// refit per the registry's drift threshold).
    Update { delta: GraphDelta, slot: ResponseSlot<UpdateOutcome> },
}

/// An owned request queued for a shard worker, routed by its precomputed
/// fingerprint.
pub(crate) struct Job {
    pub graph: Arc<Graph>,
    pub task: Arc<TaskSpec>,
    pub fit_seed: u64,
    /// The cache key, computed by the front-end's routing generator. The
    /// shard registry recomputes it from the same content and config, so
    /// routing and caching can never disagree.
    pub fingerprint: GraphFingerprint,
    /// Wall-clock stamp taken at the top of the submit call, before
    /// routing or admission — the zero point for the total-latency stage
    /// histogram. A monotonic `Instant` (not the admission clock): the
    /// total stage measures what the *client* experiences, which a
    /// `ManualClock` cannot see.
    pub submitted_at: std::time::Instant,
    pub payload: JobPayload,
}

/// A shard's work queue: jobs enter through the admission layer (capacity
/// bound, priority lanes, deadline tags) and leave in drained batches.
pub(crate) type ShardQueue = AdmissionQueue<Job>;

struct SlotInner<T> {
    value: Mutex<Option<Result<T>>>,
    ready: Condvar,
}

/// The producer half of a response slot; exactly one `fulfill` call.
///
/// Dropping an unfulfilled slot — a shard worker unwinding mid-batch, a
/// job discarded from a closed queue — delivers a typed `Internal` error
/// instead of leaving the client parked on the condvar forever.
pub(crate) struct ResponseSlot<T> {
    inner: Option<Arc<SlotInner<T>>>,
}

impl<T> ResponseSlot<T> {
    /// Delivers the response and wakes the waiting client. Consumes the
    /// slot, so a double-fulfill is unrepresentable.
    pub fn fulfill(mut self, response: Result<T>) {
        self.deliver(response);
    }

    fn deliver(&mut self, response: Result<T>) {
        let Some(inner) = self.inner.take() else { return };
        // Tolerate a poisoned slot mutex: this also runs from `Drop`
        // during a panic unwind, where a second panic would abort.
        if let Ok(mut value) = inner.value.lock() {
            *value = Some(response);
        }
        inner.ready.notify_all();
    }
}

impl<T> Drop for ResponseSlot<T> {
    fn drop(&mut self) {
        self.deliver(Err(FairGenError::Internal {
            detail: "shard worker dropped the request without serving it".into(),
        }));
    }
}

/// A claim on a queued result that has possibly not been served yet.
///
/// Redeem it with [`Pending::wait`]. Dropping it without waiting abandons
/// the result (the worker still computes it).
#[must_use = "a pending result does nothing until waited on"]
pub struct Pending<T> {
    inner: Arc<SlotInner<T>>,
}

/// A claim on a generation response, returned by
/// [`FairGenServer::submit`](crate::FairGenServer::submit).
pub type PendingResponse = Pending<GenerateResponse>;

/// A claim on a graph-delta update outcome, returned by
/// [`FairGenServer::submit_update`](crate::FairGenServer::submit_update).
pub type PendingUpdate = Pending<UpdateOutcome>;

impl<T> Pending<T> {
    /// Blocks until the shard worker fulfills the slot and returns the
    /// result.
    pub fn wait(self) -> Result<T> {
        let mut value = self.inner.value.lock().expect("response slot");
        loop {
            if let Some(response) = value.take() {
                return response;
            }
            value = self.inner.ready.wait(value).expect("response slot");
        }
    }

    /// Non-blocking probe: takes the result if it is already there.
    pub fn try_take(&self) -> Option<Result<T>> {
        self.inner.value.lock().expect("response slot").take()
    }
}

impl<T> std::fmt::Debug for Pending<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self.inner.value.lock().expect("response slot").is_some();
        f.debug_struct("Pending").field("ready", &ready).finish()
    }
}

/// A fresh slot/claim pair for one request.
pub(crate) fn response_slot<T>() -> (ResponseSlot<T>, Pending<T>) {
    let inner = Arc::new(SlotInner { value: Mutex::new(None), ready: Condvar::new() });
    (ResponseSlot { inner: Some(Arc::clone(&inner)) }, Pending { inner })
}

/// The error every submit rejected by a closed server receives. The RPC
/// front-end's closed-server path returns the *same* variant, so in-process
/// and network clients see one typed closure signal (one stable wire code).
pub(crate) fn shutdown_error() -> FairGenError {
    FairGenError::ServerClosed
}

/// The error an admission-refused request receives: typed, retryable, and
/// carrying the stable drop-reason name the dropped ring records.
pub(crate) fn overload_error(reason: DropReason) -> FairGenError {
    FairGenError::Overloaded { reason: reason.as_str().into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServedFrom;
    use fairgen_graph::FingerprintBuilder;

    fn dummy_response() -> GenerateResponse {
        let mut b = FingerprintBuilder::new();
        b.add_u64(1);
        GenerateResponse {
            fingerprint: b.finish(),
            served_from: ServedFrom::DedupCache,
            graphs: Vec::new(),
        }
    }

    #[test]
    fn fulfilled_slot_wakes_the_waiter() {
        let (slot, pending) = response_slot::<GenerateResponse>();
        let waiter = std::thread::spawn(move || pending.wait());
        slot.fulfill(Ok(dummy_response()));
        let response = waiter.join().expect("waiter").expect("response");
        assert_eq!(response.served_from, ServedFrom::DedupCache);
    }

    #[test]
    fn try_take_is_none_until_fulfilled() {
        let (slot, pending) = response_slot::<GenerateResponse>();
        assert!(pending.try_take().is_none());
        slot.fulfill(Err(shutdown_error()));
        assert!(matches!(pending.try_take(), Some(Err(FairGenError::ServerClosed))));
        assert!(pending.try_take().is_none(), "a response is delivered once");
    }

    #[test]
    fn dropped_slot_delivers_an_error_instead_of_hanging() {
        let (slot, pending) = response_slot::<GenerateResponse>();
        let waiter = std::thread::spawn(move || pending.wait());
        drop(slot); // worker died / job discarded
        let result = waiter.join().expect("waiter");
        assert!(matches!(result, Err(FairGenError::Internal { .. })));
    }
}
