//! Serving layer for the FairGen workspace: fit **once**, serve **many**.
//!
//! The two-phase generator API (`fit` → `FittedGenerator::generate`) makes
//! training the expensive step and sampling the cheap one — the runtime
//! split tab4 measures. This crate turns that asymmetry into a serving
//! deployment:
//!
//! * [`ModelRegistry`] — a long-lived cache keyed by
//!   [`GraphFingerprint`](fairgen_graph::GraphFingerprint), a content hash
//!   of everything `fit` consumes (graph, labels, protected group, fit
//!   seed, generator family). The first request for a key fits; every
//!   later request is served from the cached model with **zero refits**.
//! * **Request batching** — [`ModelRegistry::handle_batch`] coalesces
//!   same-key requests into one `generate_batch` call.
//! * **LRU eviction under a budget** — [`RegistryConfig::capacity`] bounds
//!   resident models; victims are the least recently used.
//! * **Managed checkpoint store** — with
//!   [`RegistryConfig::checkpoint_dir`] set, evicted models are published
//!   into a [`fairgen_store::ModelStore`] (generation-counted files, a
//!   versioned manifest, retention pruning, corruption quarantine) and
//!   unknown keys are warm-started from the newest intact generation —
//!   including files written by a previous process — so a restart costs a
//!   deserialization, not a retraining run.
//! * **Evolving graphs, stale-but-bounded** —
//!   [`ModelRegistry::apply_delta`] / [`FairGenServer::update_graph`]
//!   register edge deltas: while the cumulative
//!   [drift](fairgen_graph::DriftScore) stays under
//!   [`RegistryConfig::drift_threshold`] the updated graph is served by
//!   its lineage-root model ([`ServedFrom::Stale`]); the first crossing
//!   triggers exactly one refit.
//! * [`FairGenServer`] — the **concurrent front-end** over all of the
//!   above: N registry shards (requests route by `fingerprint mod shards`)
//!   behind per-shard work queues, cross-client coalescing of
//!   same-fingerprint requests into single `handle_batch` calls, and a
//!   bounded cross-request [`DedupCache`] that answers repeated
//!   `(fingerprint, gen_seed)` requests with zero model invocations
//!   ([`ServedFrom::DedupCache`]). Responses are bit-identical to the
//!   sequential single-shard path per `(fit_seed, gen_seed)` regardless of
//!   shard count, queue interleaving, or worker width — see the
//!   [`server`] module docs for the contract.
//!
//! The registry serves any [`PersistableGraphGenerator`] — all six
//! baselines and FairGen itself (via
//! [`FairGenGenerator`](fairgen_core::FairGenGenerator)) — uniformly:
//!
//! ```no_run
//! use fairgen_core::{FairGenConfig, FairGenGenerator, TaskSpec};
//! use fairgen_serve::{GenerateRequest, ModelRegistry, RegistryConfig};
//! # fn demo(g: fairgen_graph::Graph, task: TaskSpec)
//! #     -> fairgen_core::error::Result<()> {
//! let mut registry = ModelRegistry::with_config(
//!     Box::new(FairGenGenerator::new(FairGenConfig::default())),
//!     RegistryConfig {
//!         capacity: 4,
//!         checkpoint_dir: Some("ckpt".into()),
//!         ..RegistryConfig::default()
//!     },
//! )?;
//! // Fits FairGen once…
//! let first = registry.handle(&GenerateRequest::new(&g, &task, 42, vec![1, 2, 3]))?;
//! // …then serves out of memory (and survives restarts via `ckpt/`).
//! let later = registry.handle(&GenerateRequest::single(&g, &task, 42, 4))?;
//! # let _ = (first, later); Ok(())
//! # }
//! ```

pub mod dedup;
pub mod queue;
pub mod registry;
pub mod request;
pub mod server;

pub use dedup::{DedupCache, DedupKey};
pub use queue::{Pending, PendingResponse, PendingUpdate};
pub use registry::{ModelRegistry, RegistryConfig, RegistryStats};
pub use request::{
    fingerprint_request, fingerprint_with, GenerateRequest, GenerateResponse, ServedFrom,
    UpdateOutcome,
};
pub use server::{
    drain_width_bucket, shard_for, AdmissionStats, FairGenServer, ServerConfig, ServerStats,
    ShardStats, SubmitOptions, DRAIN_HIST_BUCKETS,
};

pub use fairgen_baselines::persist::{PersistableGenerator, PersistableGraphGenerator};

// The admission vocabulary travels with every submit option and stats
// snapshot; re-export it so server embedders configure admission without a
// direct `fairgen-admission` dependency.
pub use fairgen_admission::{
    AdmissionConfig, Clock, DropReason, DroppedEntry, Lane, ManualClock, QueueStats,
    RateConfig, SystemClock, TenantId,
};

// The store vocabulary rides along for the same reason: retention policy
// is part of `RegistryConfig`, and `ServerStats` embeds a store snapshot.
pub use fairgen_store::{ModelStore, RetentionPolicy, StoreStats};

// And the latency vocabulary: `ServerStats` embeds a stage-latency
// snapshot, so consumers rendering it (the RPC `/metrics` endpoint, the
// bench harness) get the types without a direct `fairgen-obs` dependency.
pub use fairgen_obs::{LatencySnapshot, StageLatencySnapshot};
