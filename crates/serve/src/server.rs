//! `FairGenServer`: the concurrent serving front-end over the model
//! registry.
//!
//! # Architecture
//!
//! ```text
//!  clients (any thread) ──▶ fingerprint ──▶ shard = fp mod N
//!                                             │
//!                         ┌───────────────────┼───────────────────┐
//!                         ▼                   ▼                   ▼
//!                   work queue 0        work queue 1   …    work queue N−1
//!                         │ drain             │ drain            │ drain
//!                         ▼                   ▼                  ▼
//!                   shard worker 0      shard worker 1      shard worker N−1
//!                   DedupCache +        DedupCache +        DedupCache +
//!                   ModelRegistry       ModelRegistry       ModelRegistry
//! ```
//!
//! * **Sharding** — requests route by [`shard_for`] (`fingerprint mod
//!   shards`), so one hot graph saturates one worker while every other
//!   fingerprint keeps flowing; a fingerprint always lands on the same
//!   shard, which is what makes "exactly one fit per fingerprint" hold
//!   without any cross-shard locking.
//! * **Coalescing** — each worker drains its queue in batches
//!   ([`Channel::drain`](fairgen_par::Channel::drain)): every request that
//!   arrived while it was busy is grouped by fingerprint and each group
//!   goes through **one** [`ModelRegistry::handle_batch`] call.
//! * **Dedup** — before touching the registry, a worker checks its
//!   [`DedupCache`]: a request whose every `(fingerprint, gen_seed)` pair
//!   has been served before is answered from cache with zero model
//!   invocations ([`ServedFrom::DedupCache`]).
//!
//! # Determinism contract
//!
//! Responses are **bit-identical to the sequential single-shard path** per
//! `(fit_seed, gen_seed)`, regardless of shard count, queue interleaving,
//! worker width, or dedup behavior. This is free by construction — fitting
//! is deterministic in `(graph, task, fit_seed)`, generation is
//! deterministic in `(model, gen_seed)` at any pool width (the PR 3/PR 4
//! parity contracts), and the dedup cache only replays graphs generation
//! would reproduce — and it is *asserted* against a sequential
//! [`ModelRegistry`] oracle in `tests/server_stress.rs`.

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use fairgen_baselines::persist::PersistableGraphGenerator;
use fairgen_baselines::TaskSpec;
use fairgen_core::error::{FairGenError, Result};
use fairgen_graph::{Graph, GraphFingerprint};

use crate::dedup::{DedupCache, DedupKey};
use crate::queue::{response_slot, shutdown_error, Job, PendingResponse, ShardQueue};
use crate::registry::{ModelRegistry, RegistryConfig, RegistryStats};
use crate::request::{GenerateRequest, GenerateResponse, ServedFrom};

/// The shard a fingerprint routes to: `fp mod shards`. Pure, stable, and
/// uniform-ish over distinct fingerprints (proptested in
/// `tests/shard_routing.rs`).
pub fn shard_for(fp: GraphFingerprint, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    (fp.as_u128() % shards.max(1) as u128) as usize
}

/// Server resource policy.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of registry shards (= worker threads). Must be at least 1.
    pub shards: usize,
    /// Per-shard registry policy. A configured `checkpoint_dir` is shared
    /// by every shard — files are fingerprint-named, so shards never
    /// collide — and shard workers spill their dirty models there on
    /// shutdown, making a graceful stop warm-startable.
    pub registry: RegistryConfig,
    /// Per-shard sample-dedup budget, in cached graphs. Zero disables
    /// cross-request dedup.
    pub dedup_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { shards: 4, registry: RegistryConfig::default(), dedup_capacity: 256 }
    }
}

/// Per-shard serving counters, aggregated by [`FairGenServer::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// The shard registry's lifetime counters.
    pub registry: RegistryStats,
    /// Requests answered entirely from the dedup cache (zero model
    /// invocations; these never reach the registry, so they are *not* in
    /// `registry.requests`).
    pub dedup_hits: u64,
    /// `(fingerprint, gen_seed)` pairs inserted into the dedup cache.
    pub dedup_inserts: u64,
    /// Graphs currently resident in the dedup cache.
    pub dedup_resident: usize,
    /// Queue drains processed (each is one coalescing opportunity).
    pub drains: u64,
    /// Largest number of requests taken in a single drain — how much
    /// cross-client coalescing actually happened under load.
    pub max_drain: usize,
    /// Jobs waiting in the shard's queue at snapshot time (sampled by
    /// [`FairGenServer::stats`], not maintained by the worker — a live
    /// backlog gauge, not a cumulative counter).
    pub queue_depth: usize,
}

/// A snapshot of the whole server's counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Per-shard snapshots, indexed by shard id.
    pub per_shard: Vec<ShardStats>,
}

impl ServerStats {
    /// Models fitted from scratch across all shards — with stable routing
    /// this is exactly the number of distinct fingerprints served.
    pub fn fits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.registry.cold_fits).sum()
    }

    /// Requests answered across all shards (registry-served + dedup-served).
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.registry.requests + s.dedup_hits).sum()
    }

    /// Requests served entirely from the dedup cache.
    pub fn dedup_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.dedup_hits).sum()
    }

    /// Aggregated registry counters.
    pub fn registry(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in &self.per_shard {
            total.merge(&shard.registry);
        }
        total
    }

    /// The largest single queue drain observed on any shard.
    pub fn max_drain(&self) -> usize {
        self.per_shard.iter().map(|s| s.max_drain).max().unwrap_or(0)
    }

    /// Cumulative queue drains across all shards (each drain is one
    /// coalescing opportunity).
    pub fn drains(&self) -> u64 {
        self.per_shard.iter().map(|s| s.drains).sum()
    }

    /// Jobs queued but not yet taken by a shard worker, summed over all
    /// shards at snapshot time.
    pub fn queue_depth(&self) -> usize {
        self.per_shard.iter().map(|s| s.queue_depth).sum()
    }
}

struct Shard {
    queue: Arc<ShardQueue>,
    stats: Arc<Mutex<ShardStats>>,
    worker: Option<JoinHandle<()>>,
}

/// A thread-safe serving front-end: N registry shards behind work queues,
/// cross-client request coalescing, and cross-request sample dedup. See the
/// [module docs](self) for the architecture and determinism contract.
///
/// ```no_run
/// use fairgen_baselines::{ErGenerator, TaskSpec};
/// use fairgen_serve::{FairGenServer, ServerConfig};
/// # fn demo(g: fairgen_graph::Graph) -> fairgen_core::error::Result<()> {
/// let server = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())?;
/// let task = TaskSpec::unlabeled();
/// // Blocking round-trip from any thread:
/// let response = server.handle(&g, &task, 42, vec![1, 2])?;
/// // …or submit now, wait later (other clients coalesce in between):
/// let pending = server.submit(&g, &task, 42, vec![3])?;
/// let later = pending.wait()?;
/// # let _ = (response, later); Ok(())
/// # }
/// ```
pub struct FairGenServer {
    /// Computes request fingerprints on the submitting thread; never fits.
    router: Box<dyn PersistableGraphGenerator>,
    shards: Vec<Shard>,
}

impl FairGenServer {
    /// Builds a server whose shards each own one registry over
    /// `make_generator()`. The factory must return identically-configured
    /// generators — the router instance fingerprints requests, so a factory
    /// that varied its config would route inconsistently (it would still
    /// serve *correct* graphs, just with duplicated fits).
    ///
    /// # Errors
    ///
    /// [`FairGenError::InvalidConfig`] on zero shards or an invalid
    /// per-shard registry policy; [`FairGenError::Io`] when the checkpoint
    /// directory cannot be created.
    pub fn new<F>(make_generator: F, cfg: ServerConfig) -> Result<Self>
    where
        F: Fn() -> Box<dyn PersistableGraphGenerator>,
    {
        if cfg.shards == 0 {
            return Err(FairGenError::InvalidConfig {
                field: "shards",
                message: "a server needs at least one registry shard".into(),
            });
        }
        // Build shards *inside* the server so a mid-loop failure (bad
        // registry config, thread-spawn error) drops the partial server,
        // whose `Drop` shuts down — closes the queues of — every worker
        // already spawned instead of leaking them parked in `drain()`.
        let mut server =
            FairGenServer { router: make_generator(), shards: Vec::with_capacity(cfg.shards) };
        for id in 0..cfg.shards {
            let registry = ModelRegistry::with_config(make_generator(), cfg.registry.clone())?;
            let queue = Arc::new(ShardQueue::new());
            let stats = Arc::new(Mutex::new(ShardStats::default()));
            let worker = {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let dedup_capacity = cfg.dedup_capacity;
                std::thread::Builder::new()
                    .name(format!("fairgen-shard-{id}"))
                    .spawn(move || shard_worker(registry, &queue, &stats, dedup_capacity))
                    .map_err(|e| FairGenError::Internal {
                        detail: format!("failed to spawn shard worker {id}: {e}"),
                    })?
            };
            server.shards.push(Shard { queue, stats, worker: Some(worker) });
        }
        Ok(server)
    }

    /// Number of registry shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The generator family this server serves.
    pub fn generator_name(&self) -> &'static str {
        self.router.name()
    }

    /// The cache key a request maps to and the shard it routes to. The key
    /// comes from the same derivation as [`ModelRegistry::fingerprint`]
    /// ([`fingerprint_with`](crate::request::fingerprint_with)), so routing
    /// and shard-registry caching can never disagree.
    pub fn route(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
    ) -> (GraphFingerprint, usize) {
        let fp = crate::request::fingerprint_with(self.router.as_ref(), g, task, fit_seed);
        (fp, shard_for(fp, self.shards.len()))
    }

    /// Enqueues one request (cloning the graph and task into the job) and
    /// returns immediately with a [`PendingResponse`]. Callable from any
    /// number of threads at once.
    pub fn submit(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Result<PendingResponse> {
        self.submit_shared(Arc::new(g.clone()), Arc::new(task.clone()), fit_seed, sample_seeds)
    }

    /// [`submit`](FairGenServer::submit) without the clone: clients that
    /// already hold their graph/task behind [`Arc`]s share the allocation
    /// with the queue.
    pub fn submit_shared(
        &self,
        graph: Arc<Graph>,
        task: Arc<TaskSpec>,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Result<PendingResponse> {
        let (fingerprint, shard) = self.route(&graph, &task, fit_seed);
        let (slot, pending) = response_slot();
        let job = Job { graph, task, fit_seed, sample_seeds, fingerprint, slot };
        self.shards[shard].queue.push(job).map_err(|_| shutdown_error())?;
        Ok(pending)
    }

    /// Blocking round-trip: submit, then wait. The concurrent counterpart
    /// of [`ModelRegistry::handle`].
    pub fn handle(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Result<GenerateResponse> {
        self.submit(g, task, fit_seed, sample_seeds)?.wait()
    }

    /// A snapshot of every shard's counters. Shard workers publish their
    /// counters *before* fulfilling the drain's responses, so once a client
    /// has seen a response, a later snapshot reflects it.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            per_shard: self
                .shards
                .iter()
                .map(|s| {
                    let mut snapshot = *s.stats.lock().expect("shard stats");
                    // The live backlog gauge comes from the queue itself —
                    // the worker only publishes after finishing a drain, so
                    // it could never report a non-empty queue.
                    snapshot.queue_depth = s.queue.len();
                    snapshot
                })
                .collect(),
        }
    }

    /// Graceful shutdown: closes every queue, lets the workers serve the
    /// backlog, spill their dirty models (when a checkpoint directory is
    /// configured), and exit. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                // A panicking worker already fulfilled or abandoned its
                // jobs; surfacing the panic here would abort the server's
                // owner mid-shutdown for no benefit.
                let _ = worker.join();
            }
        }
    }
}

impl Drop for FairGenServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for FairGenServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairGenServer")
            .field("generator", &self.router.name())
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// One shard's serve loop: drain → dedup-check → per-fingerprint
/// `handle_batch` → publish stats → fulfill responses.
fn shard_worker(
    mut registry: ModelRegistry,
    queue: &ShardQueue,
    stats: &Mutex<ShardStats>,
    dedup_capacity: usize,
) {
    // Failsafe: whatever takes this worker down — a panic inside a
    // user-provided generator included — close the queue so later submits
    // fail fast, and discard the backlog so every stranded job's slot
    // delivers its typed drop-error instead of parking its client forever.
    // On a normal shutdown both actions are no-ops.
    struct Failsafe<'a>(&'a ShardQueue);
    impl Drop for Failsafe<'_> {
        fn drop(&mut self) {
            self.0.close();
            drop(self.0.try_drain());
        }
    }
    let _failsafe = Failsafe(queue);

    let mut dedup = DedupCache::new(dedup_capacity);
    let mut dedup_hits = 0u64;
    let mut dedup_inserts = 0u64;
    let mut drains = 0u64;
    let mut max_drain = 0usize;
    loop {
        let jobs = queue.drain();
        if jobs.is_empty() {
            break; // Closed and fully drained.
        }
        drains += 1;
        max_drain = max_drain.max(jobs.len());

        // Dedup pass: answer fully-cached requests without the registry.
        let mut fulfilled: Vec<(crate::queue::ResponseSlot, Result<GenerateResponse>)> =
            Vec::with_capacity(jobs.len());
        let mut pending: Vec<Job> = Vec::new();
        for job in jobs {
            match dedup.lookup_all(job.fingerprint, &job.sample_seeds) {
                Some(graphs) => {
                    dedup_hits += 1;
                    let response = GenerateResponse {
                        fingerprint: job.fingerprint,
                        served_from: ServedFrom::DedupCache,
                        graphs,
                    };
                    fulfilled.push((job.slot, Ok(response)));
                }
                None => pending.push(job),
            }
        }

        // Coalesce the rest: group by fingerprint (first-seen order), one
        // `handle_batch` call per group.
        let mut groups: Vec<(GraphFingerprint, Vec<Job>)> = Vec::new();
        for job in pending {
            match groups.iter_mut().find(|(fp, _)| *fp == job.fingerprint) {
                Some((_, members)) => members.push(job),
                None => groups.push((job.fingerprint, vec![job])),
            }
        }
        for (fp, members) in groups {
            let reqs: Vec<GenerateRequest> = members
                .iter()
                .map(|j| {
                    GenerateRequest::new(&j.graph, &j.task, j.fit_seed, j.sample_seeds.clone())
                })
                .collect();
            // Keys were computed once at submit time; the registry must not
            // re-hash every graph on this (per-shard serialized) thread.
            let keys = vec![fp; reqs.len()];
            match registry.handle_batch_keyed(&reqs, &keys) {
                Ok(responses) => {
                    for (job, response) in members.into_iter().zip(responses) {
                        for (&seed, graph) in job.sample_seeds.iter().zip(&response.graphs) {
                            dedup.insert(
                                DedupKey { fingerprint: fp, gen_seed: seed },
                                graph.clone(),
                            );
                            dedup_inserts += 1;
                        }
                        fulfilled.push((job.slot, Ok(response)));
                    }
                }
                Err(e) => {
                    // One typed error, `members.len()` waiting clients:
                    // `FairGenError` is not `Clone`, so the first requester
                    // gets the original and the rest get its rendering.
                    let detail = format!("coalesced batch for fingerprint {fp} failed: {e}");
                    let mut original = Some(e);
                    for job in members {
                        let err = match original.take() {
                            Some(e) => e,
                            None => FairGenError::Internal { detail: detail.clone() },
                        };
                        fulfilled.push((job.slot, Err(err)));
                    }
                }
            }
        }

        // Publish counters BEFORE waking clients, so `stats()` observed
        // after a response always includes it.
        {
            let mut shared = stats.lock().expect("shard stats");
            shared.registry = registry.stats();
            shared.dedup_hits = dedup_hits;
            shared.dedup_inserts = dedup_inserts;
            shared.dedup_resident = dedup.len();
            shared.drains = drains;
            shared.max_drain = max_drain;
        }
        for (slot, response) in fulfilled {
            slot.fulfill(response);
        }
    }
    // Graceful exit: demote dirty models to the checkpoint directory (a
    // no-op without one) so a successor server warm-starts instead of
    // refitting. Failures here have no client to report to.
    let _ = registry.spill_all();
    if let Ok(mut shared) = stats.lock() {
        shared.registry = registry.stats();
    }
}
