//! `FairGenServer`: the concurrent serving front-end over the model
//! registry.
//!
//! # Architecture
//!
//! ```text
//!  clients (any thread) ──▶ fingerprint ──▶ shard = fp mod N
//!                                             │
//!                         ┌───────────────────┼───────────────────┐
//!                         ▼                   ▼                   ▼
//!                   work queue 0        work queue 1   …    work queue N−1
//!                         │ drain             │ drain            │ drain
//!                         ▼                   ▼                  ▼
//!                   shard worker 0      shard worker 1      shard worker N−1
//!                   DedupCache +        DedupCache +        DedupCache +
//!                   ModelRegistry       ModelRegistry       ModelRegistry
//! ```
//!
//! * **Sharding** — requests route by [`shard_for`] (`fingerprint mod
//!   shards`), so one hot graph saturates one worker while every other
//!   fingerprint keeps flowing; a fingerprint always lands on the same
//!   shard, which is what makes "exactly one fit per fingerprint" hold
//!   without any cross-shard locking.
//! * **Coalescing** — each worker drains its queue in batches
//!   ([`Channel::drain`](fairgen_par::Channel::drain)): every request that
//!   arrived while it was busy is grouped by fingerprint and each group
//!   goes through **one** [`ModelRegistry::handle_batch`] call.
//! * **Dedup** — before touching the registry, a worker checks its
//!   [`DedupCache`]: a request whose every `(fingerprint, gen_seed)` pair
//!   has been served before is answered from cache with zero model
//!   invocations ([`ServedFrom::DedupCache`]).
//!
//! # Determinism contract
//!
//! Responses are **bit-identical to the sequential single-shard path** per
//! `(fit_seed, gen_seed)`, regardless of shard count, queue interleaving,
//! worker width, or dedup behavior. This is free by construction — fitting
//! is deterministic in `(graph, task, fit_seed)`, generation is
//! deterministic in `(model, gen_seed)` at any pool width (the PR 3/PR 4
//! parity contracts), and the dedup cache only replays graphs generation
//! would reproduce — and it is *asserted* against a sequential
//! [`ModelRegistry`] oracle in `tests/server_stress.rs`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fairgen_admission::{
    AdmissionConfig, AdmitError, AdmitMeta, DropReason, DroppedEntry, DroppedRing, Lane,
    QueueStats, RateConfig, RateLimiter, TenantId,
};
use fairgen_baselines::persist::PersistableGraphGenerator;
use fairgen_baselines::TaskSpec;
use fairgen_core::error::{FairGenError, Result};
use fairgen_graph::{Graph, GraphDelta, GraphFingerprint};
use fairgen_obs::{StageLatency, StageLatencySnapshot};
use fairgen_store::{ModelStore, StoreStats};

use crate::dedup::{DedupCache, DedupKey};
use crate::queue::{
    overload_error, response_slot, shutdown_error, Job, JobPayload, PendingResponse,
    PendingUpdate, ResponseSlot, ShardQueue,
};
use crate::registry::{ModelRegistry, RegistryConfig, RegistryStats};
use crate::request::{GenerateRequest, GenerateResponse, ServedFrom, UpdateOutcome};

/// Fingerprint aliases for evolving graphs: a drifted (or refit) graph's
/// fingerprint maps to the *routing anchor* of its lineage — the
/// fingerprint whose shard owns the family's model. Entries are flattened
/// on insert (an alias always points at an anchor, never another alias),
/// so resolution is one map read.
type AliasMap = RwLock<HashMap<GraphFingerprint, GraphFingerprint>>;

/// The shard a fingerprint routes to: `fp mod shards`. Pure, stable, and
/// uniform-ish over distinct fingerprints (proptested in
/// `tests/shard_routing.rs`).
pub fn shard_for(fp: GraphFingerprint, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    (fp.as_u128() % shards.max(1) as u128) as usize
}

/// Server resource policy.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of registry shards (= worker threads). Must be at least 1.
    pub shards: usize,
    /// Per-shard registry policy. A configured `checkpoint_dir` opens
    /// **one** [`ModelStore`] shared by every shard — checkpoints are
    /// fingerprint-named, so shards never collide, and retention/quarantine
    /// are enforced once per directory — and shard workers spill their
    /// dirty models there on shutdown, making a graceful stop
    /// warm-startable.
    pub registry: RegistryConfig,
    /// Per-shard sample-dedup budget, in cached graphs. Zero disables
    /// cross-request dedup.
    pub dedup_capacity: usize,
    /// Admission policy: per-shard queue bound, priority-lane aging window,
    /// queue deadline, per-tenant rate limits, dropped-work ring size. The
    /// default is fully permissive, reproducing pre-admission behavior.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            registry: RegistryConfig::default(),
            dedup_capacity: 256,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Per-request admission options for
/// [`FairGenServer::submit_with`]. The default bills the anonymous tenant,
/// picks the lane from the request shape, and applies the server's default
/// queue deadline.
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Who the request is billed to (rate limiting, drop diagnostics).
    pub tenant: TenantId,
    /// Priority lane override. `None` infers it from the request: a single
    /// sample is interactive, a multi-sample batch is bulk — mirroring the
    /// RPC layer's `generate` vs `generate_batch` split.
    pub lane: Option<Lane>,
    /// Per-request queue-deadline override. `None` uses
    /// [`AdmissionConfig::queue_deadline`].
    pub deadline: Option<Duration>,
}

/// Per-shard serving counters, aggregated by [`FairGenServer::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// The shard registry's lifetime counters.
    pub registry: RegistryStats,
    /// Requests answered entirely from the dedup cache (zero model
    /// invocations; these never reach the registry, so they are *not* in
    /// `registry.requests`).
    pub dedup_hits: u64,
    /// `(fingerprint, gen_seed)` pairs inserted into the dedup cache.
    pub dedup_inserts: u64,
    /// Graphs currently resident in the dedup cache.
    pub dedup_resident: usize,
    /// Queue drains processed (each is one coalescing opportunity).
    pub drains: u64,
    /// Largest number of requests taken in a single drain — how much
    /// cross-client coalescing actually happened under load.
    pub max_drain: usize,
    /// Jobs taken across all drains (shed jobs included — they occupied a
    /// drain slot). `drained_jobs / drains` is the mean drain width, the
    /// batching-efficiency gauge the histogram summarizes.
    pub drained_jobs: u64,
    /// Requests served as part of a coalesced same-fingerprint group of
    /// two or more — the requests that actually shared a model invocation
    /// (dedup-cache answers and singleton groups are excluded).
    pub batched_requests: u64,
    /// Histogram of drain widths, bucketed as
    /// `[1, 2, 3–4, 5–8, 9–16, 17+]` (see [`drain_width_bucket`]). Each
    /// drain increments exactly one bucket, so the buckets sum to
    /// `drains`.
    pub drain_hist: [u64; DRAIN_HIST_BUCKETS],
    /// Jobs waiting in the shard's queue at snapshot time (sampled by
    /// [`FairGenServer::stats`], not maintained by the worker — a live
    /// backlog gauge, not a cumulative counter).
    pub queue_depth: usize,
    /// The shard queue's admission counters (admitted / rejected-at-
    /// capacity / shed-on-deadline), sampled from the queue like
    /// `queue_depth`.
    pub admission: QueueStats,
}

/// Number of drain-width histogram buckets in [`ShardStats::drain_hist`].
pub const DRAIN_HIST_BUCKETS: usize = 6;

/// Maps a drain width (requests taken in one queue drain) to its
/// [`ShardStats::drain_hist`] bucket: `1, 2, 3–4, 5–8, 9–16, 17+`.
///
/// # Panics
///
/// Panics on a width of zero (empty drains terminate the worker and are
/// never recorded).
pub fn drain_width_bucket(width: usize) -> usize {
    assert!(width > 0, "drain width must be positive");
    match width {
        1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Server-wide admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs accepted into a shard queue.
    pub admitted: u64,
    /// Submissions rejected with a full shard queue.
    pub rejected_full: u64,
    /// Submissions rejected by a tenant's token bucket (this never reaches
    /// a shard, so it is a server-level counter, not a per-shard one).
    pub rejected_rate: u64,
    /// Queued jobs shed at drain time on an expired deadline.
    pub shed_deadline: u64,
    /// Lifetime dropped-ring total — every shed or rejected job, including
    /// entries that have aged out of the retained window. Always equals
    /// `rejected_full + rejected_rate + shed_deadline`.
    pub dropped_total: u64,
}

/// A snapshot of the whole server's counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Per-shard snapshots, indexed by shard id.
    pub per_shard: Vec<ShardStats>,
    /// Server-wide admission counters.
    pub admission: AdmissionStats,
    /// The most recent shed/rejected jobs (oldest first), from the bounded
    /// dropped-work ring.
    pub dropped: Vec<DroppedEntry>,
    /// The shared checkpoint store's counters, when a checkpoint directory
    /// is configured. Server-level (one store serves every shard), so it
    /// is **not** summed from `per_shard`.
    pub store: Option<StoreStats>,
    /// Per-stage latency histograms (admission wait, queue wait, model
    /// invocation, total) recorded from `Instant` stamps on the job
    /// envelope — the decomposition the `/metrics` endpoint exposes.
    pub latency: StageLatencySnapshot,
}

impl ServerStats {
    /// Models fitted from scratch across all shards — with stable routing
    /// this is exactly the number of distinct fingerprints served.
    pub fn fits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.registry.cold_fits).sum()
    }

    /// Requests answered across all shards (registry-served + dedup-served).
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.registry.requests + s.dedup_hits).sum()
    }

    /// Requests served entirely from the dedup cache.
    pub fn dedup_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.dedup_hits).sum()
    }

    /// Aggregated registry counters.
    pub fn registry(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in &self.per_shard {
            total.merge(&shard.registry);
        }
        total
    }

    /// The largest single queue drain observed on any shard.
    pub fn max_drain(&self) -> usize {
        self.per_shard.iter().map(|s| s.max_drain).max().unwrap_or(0)
    }

    /// Cumulative queue drains across all shards (each drain is one
    /// coalescing opportunity).
    pub fn drains(&self) -> u64 {
        self.per_shard.iter().map(|s| s.drains).sum()
    }

    /// Jobs queued but not yet taken by a shard worker, summed over all
    /// shards at snapshot time.
    pub fn queue_depth(&self) -> usize {
        self.per_shard.iter().map(|s| s.queue_depth).sum()
    }

    /// Jobs taken across all drains on all shards (shed jobs included).
    pub fn drained_jobs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.drained_jobs).sum()
    }

    /// Requests served as part of a coalesced same-fingerprint group of two
    /// or more, summed over all shards.
    pub fn batched_requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.batched_requests).sum()
    }

    /// Mean drain width across all shards (`0.0` before the first drain) —
    /// how many requests the average coalescing opportunity carried.
    pub fn mean_drain_width(&self) -> f64 {
        let drains = self.drains();
        if drains == 0 {
            0.0
        } else {
            self.drained_jobs() as f64 / drains as f64
        }
    }

    /// Drain-width histogram summed over all shards; buckets as in
    /// [`ShardStats::drain_hist`], summing to [`ServerStats::drains`].
    pub fn drain_hist(&self) -> [u64; DRAIN_HIST_BUCKETS] {
        let mut total = [0u64; DRAIN_HIST_BUCKETS];
        for shard in &self.per_shard {
            for (t, &v) in total.iter_mut().zip(&shard.drain_hist) {
                *t += v;
            }
        }
        total
    }
}

struct Shard {
    queue: Arc<ShardQueue>,
    stats: Arc<Mutex<ShardStats>>,
    worker: Option<JoinHandle<()>>,
}

/// A thread-safe serving front-end: N registry shards behind work queues,
/// cross-client request coalescing, and cross-request sample dedup. See the
/// [module docs](self) for the architecture and determinism contract.
///
/// ```no_run
/// use fairgen_baselines::{ErGenerator, TaskSpec};
/// use fairgen_serve::{FairGenServer, ServerConfig};
/// # fn demo(g: fairgen_graph::Graph) -> fairgen_core::error::Result<()> {
/// let server = FairGenServer::new(|| Box::new(ErGenerator), ServerConfig::default())?;
/// let task = TaskSpec::unlabeled();
/// // Blocking round-trip from any thread:
/// let response = server.handle(&g, &task, 42, vec![1, 2])?;
/// // …or submit now, wait later (other clients coalesce in between):
/// let pending = server.submit(&g, &task, 42, vec![3])?;
/// let later = pending.wait()?;
/// # let _ = (response, later); Ok(())
/// # }
/// ```
pub struct FairGenServer {
    /// Computes request fingerprints on the submitting thread; never fits.
    router: Box<dyn PersistableGraphGenerator>,
    shards: Vec<Shard>,
    /// The shared dropped-work ring every shard queue (and the rate-limit
    /// path) records into.
    ring: Arc<DroppedRing>,
    /// Per-tenant token buckets; `None` when rate limiting is off.
    limiter: Option<RateLimiter>,
    /// Submissions refused by the rate limiter (they never reach a shard
    /// queue, so no shard counts them).
    rejected_rate: AtomicU64,
    /// The one checkpoint store every shard registry shares (`None`
    /// without a checkpoint directory). Kept for server-level stats.
    store: Option<ModelStore>,
    /// Evolving-graph routing aliases, written by shard workers as they
    /// apply deltas and read by [`route`](FairGenServer::route) — so a
    /// drifted graph's requests land on the shard that owns its lineage
    /// model instead of cold-fitting a duplicate elsewhere.
    aliases: Arc<AliasMap>,
    /// Per-stage latency histograms, shared with every shard worker.
    /// Lock-free recording, so the hot path pays one `Instant` read and
    /// a couple of relaxed `fetch_add`s per stage.
    latency: Arc<StageLatency>,
}

impl FairGenServer {
    /// Builds a server whose shards each own one registry over
    /// `make_generator()`. The factory must return identically-configured
    /// generators — the router instance fingerprints requests, so a factory
    /// that varied its config would route inconsistently (it would still
    /// serve *correct* graphs, just with duplicated fits).
    ///
    /// # Errors
    ///
    /// [`FairGenError::InvalidConfig`] on zero shards or an invalid
    /// per-shard registry policy; [`FairGenError::Io`] when the checkpoint
    /// directory cannot be created.
    pub fn new<F>(make_generator: F, cfg: ServerConfig) -> Result<Self>
    where
        F: Fn() -> Box<dyn PersistableGraphGenerator>,
    {
        if cfg.shards == 0 {
            return Err(FairGenError::InvalidConfig {
                field: "shards",
                message: "a server needs at least one registry shard".into(),
            });
        }
        cfg.admission.validate()?;
        let ring = Arc::new(DroppedRing::new(cfg.admission.dropped_ring));
        let limiter = cfg
            .admission
            .rate
            .map(|rate| RateLimiter::new(rate, Arc::clone(&cfg.admission.clock)));
        // One managed store for the whole server: every shard registry
        // shares the handle, so generation counting, retention, and
        // quarantine are enforced once per directory.
        let store = match &cfg.registry.checkpoint_dir {
            Some(dir) => Some(ModelStore::open(dir, cfg.registry.retention)?),
            None => None,
        };
        // Build shards *inside* the server so a mid-loop failure (bad
        // registry config, thread-spawn error) drops the partial server,
        // whose `Drop` shuts down — closes the queues of — every worker
        // already spawned instead of leaking them parked in `drain()`.
        let mut server = FairGenServer {
            router: make_generator(),
            shards: Vec::with_capacity(cfg.shards),
            ring: Arc::clone(&ring),
            limiter,
            rejected_rate: AtomicU64::new(0),
            store: store.clone(),
            aliases: Arc::new(AliasMap::default()),
            latency: Arc::new(StageLatency::new()),
        };
        for id in 0..cfg.shards {
            let registry = ModelRegistry::with_store(
                make_generator(),
                cfg.registry.clone(),
                store.clone(),
            )?;
            let queue = Arc::new(ShardQueue::new(&cfg.admission, Arc::clone(&ring)));
            let stats = Arc::new(Mutex::new(ShardStats::default()));
            let worker = {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let aliases = Arc::clone(&server.aliases);
                let latency = Arc::clone(&server.latency);
                let dedup_capacity = cfg.dedup_capacity;
                std::thread::Builder::new()
                    .name(format!("fairgen-shard-{id}"))
                    .spawn(move || {
                        shard_worker(
                            registry,
                            &queue,
                            &stats,
                            &aliases,
                            &latency,
                            dedup_capacity,
                        )
                    })
                    .map_err(|e| FairGenError::Internal {
                        detail: format!("failed to spawn shard worker {id}: {e}"),
                    })?
            };
            server.shards.push(Shard { queue, stats, worker: Some(worker) });
        }
        Ok(server)
    }

    /// Number of registry shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The generator family this server serves.
    pub fn generator_name(&self) -> &'static str {
        self.router.name()
    }

    /// The cache key a request maps to and the shard it routes to. The key
    /// comes from the same derivation as [`ModelRegistry::fingerprint`]
    /// ([`fingerprint_with`](crate::request::fingerprint_with)), so routing
    /// and shard-registry caching can never disagree.
    pub fn route(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
    ) -> (GraphFingerprint, usize) {
        let fp = crate::request::fingerprint_with(self.router.as_ref(), g, task, fit_seed);
        // An evolving graph's requests shard by the lineage *anchor* the
        // workers registered for its fingerprint, so the whole family keeps
        // landing on the shard that owns the model instead of cold-fitting
        // a duplicate wherever the new fingerprint would hash.
        let anchor = self.aliases.read().expect("alias map").get(&fp).copied().unwrap_or(fp);
        (fp, shard_for(anchor, self.shards.len()))
    }

    /// Enqueues one request (cloning the graph and task into the job) and
    /// returns immediately with a [`PendingResponse`]. Callable from any
    /// number of threads at once.
    pub fn submit(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Result<PendingResponse> {
        self.submit_shared(Arc::new(g.clone()), Arc::new(task.clone()), fit_seed, sample_seeds)
    }

    /// [`submit`](FairGenServer::submit) without the clone: clients that
    /// already hold their graph/task behind [`Arc`]s share the allocation
    /// with the queue. Billed to the default tenant with an inferred lane —
    /// use [`submit_with`](FairGenServer::submit_with) to say more.
    pub fn submit_shared(
        &self,
        graph: Arc<Graph>,
        task: Arc<TaskSpec>,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Result<PendingResponse> {
        self.submit_with(graph, task, fit_seed, sample_seeds, SubmitOptions::default())
    }

    /// Full-control submission: tenant, priority lane, and queue deadline
    /// travel with the request through admission.
    ///
    /// # Errors
    ///
    /// * [`FairGenError::Overloaded`] — the tenant's rate budget is spent
    ///   (`rate_limited`) or the shard queue is at capacity (`queue_full`).
    ///   Transient: back off and retry.
    /// * [`FairGenError::ServerClosed`] — the server is shutting down.
    ///   Permanent for this server instance.
    ///
    /// Jobs that are *admitted* can still be shed later: if the queue
    /// deadline expires before a worker reaches the job, its
    /// [`PendingResponse`] resolves to `Overloaded` with reason
    /// `deadline_expired`. Every submission gets exactly one answer.
    pub fn submit_with(
        &self,
        graph: Arc<Graph>,
        task: Arc<TaskSpec>,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
        opts: SubmitOptions,
    ) -> Result<PendingResponse> {
        let submitted_at = Instant::now();
        let (fingerprint, shard) = self.route(&graph, &task, fit_seed);
        if let Some(limiter) = &self.limiter {
            // Cost scales with the work requested: one token per sample
            // (a zero-sample fit-only request still costs one).
            let cost = sample_seeds.len().max(1) as u64;
            if !limiter.try_admit(&opts.tenant, cost) {
                self.rejected_rate.fetch_add(1, Ordering::Relaxed);
                self.ring.record(DroppedEntry {
                    tenant: opts.tenant.clone(),
                    fingerprint,
                    reason: DropReason::RateLimited,
                    queue_age_nanos: 0,
                });
                return Err(overload_error(DropReason::RateLimited));
            }
        }
        let lane = opts.lane.unwrap_or(if sample_seeds.len() <= 1 {
            Lane::Interactive
        } else {
            Lane::Bulk
        });
        let (slot, pending) = response_slot();
        let job = Job {
            graph,
            task,
            fit_seed,
            fingerprint,
            submitted_at,
            payload: JobPayload::Generate { sample_seeds, slot },
        };
        let meta =
            AdmitMeta { tenant: opts.tenant, lane, fingerprint, deadline: opts.deadline };
        match self.shards[shard].queue.push(job, meta) {
            Ok(()) => {
                // Admission wait: routing + rate-limit + queue push, i.e.
                // everything between the client's call and the job being
                // safely queued. Only admitted jobs record it — a
                // rejection is not a wait.
                self.latency.admission_wait.record(submitted_at.elapsed());
                Ok(pending)
            }
            // The rejected job (and its slot) drops here — harmless, since
            // the error below is the caller's one answer and `pending`
            // never escapes.
            Err(AdmitError::Full(_)) => Err(overload_error(DropReason::QueueFull)),
            Err(AdmitError::Closed(_)) => Err(shutdown_error()),
        }
    }

    /// Enqueues a graph-delta update for the shard that owns the graph's
    /// lineage model and returns immediately with a [`PendingUpdate`].
    ///
    /// The update rides the same admission queue as generation requests
    /// (default lane: bulk — structural maintenance never preempts
    /// interactive traffic) and is applied by the owning shard's worker via
    /// [`ModelRegistry::apply_delta`]: within the drift threshold the
    /// updated graph's fingerprint is aliased to its lineage anchor and
    /// served **stale-but-bounded**; past it, the worker refits once.
    /// Workers apply every update in a drain *before* serving that drain's
    /// generation requests.
    ///
    /// A `generate` for the updated graph submitted before this update's
    /// outcome is delivered may still route by the new fingerprint's own
    /// hash and cold-fit on another shard (correct, just unamortized) —
    /// clients that want the stale-serving guarantee wait on the outcome
    /// first.
    pub fn submit_update(
        &self,
        graph: Arc<Graph>,
        task: Arc<TaskSpec>,
        fit_seed: u64,
        delta: GraphDelta,
        opts: SubmitOptions,
    ) -> Result<PendingUpdate> {
        let submitted_at = Instant::now();
        let (fingerprint, shard) = self.route(&graph, &task, fit_seed);
        if let Some(limiter) = &self.limiter {
            // A delta is one unit of admission work regardless of size —
            // the expensive outcome (a refit) is the server's own decision.
            if !limiter.try_admit(&opts.tenant, 1) {
                self.rejected_rate.fetch_add(1, Ordering::Relaxed);
                self.ring.record(DroppedEntry {
                    tenant: opts.tenant.clone(),
                    fingerprint,
                    reason: DropReason::RateLimited,
                    queue_age_nanos: 0,
                });
                return Err(overload_error(DropReason::RateLimited));
            }
        }
        let lane = opts.lane.unwrap_or(Lane::Bulk);
        let (slot, pending) = response_slot();
        let job = Job {
            graph,
            task,
            fit_seed,
            fingerprint,
            submitted_at,
            payload: JobPayload::Update { delta, slot },
        };
        let meta =
            AdmitMeta { tenant: opts.tenant, lane, fingerprint, deadline: opts.deadline };
        match self.shards[shard].queue.push(job, meta) {
            Ok(()) => {
                self.latency.admission_wait.record(submitted_at.elapsed());
                Ok(pending)
            }
            Err(AdmitError::Full(_)) => Err(overload_error(DropReason::QueueFull)),
            Err(AdmitError::Closed(_)) => Err(shutdown_error()),
        }
    }

    /// Blocking graph-delta round-trip: submit the update, wait for the
    /// owning shard's decision. The concurrent counterpart of
    /// [`ModelRegistry::apply_delta`].
    pub fn update_graph(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        delta: GraphDelta,
    ) -> Result<UpdateOutcome> {
        self.submit_update(
            Arc::new(g.clone()),
            Arc::new(task.clone()),
            fit_seed,
            delta,
            SubmitOptions::default(),
        )?
        .wait()
    }

    /// Blocking round-trip: submit, then wait. The concurrent counterpart
    /// of [`ModelRegistry::handle`].
    pub fn handle(
        &self,
        g: &Graph,
        task: &TaskSpec,
        fit_seed: u64,
        sample_seeds: Vec<u64>,
    ) -> Result<GenerateResponse> {
        self.submit(g, task, fit_seed, sample_seeds)?.wait()
    }

    /// A snapshot of every shard's counters. Shard workers publish their
    /// counters *before* fulfilling the drain's responses, so once a client
    /// has seen a response, a later snapshot reflects it.
    pub fn stats(&self) -> ServerStats {
        let per_shard: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|s| {
                let mut snapshot = *s.stats.lock().expect("shard stats");
                // The live backlog gauge and admission counters come from
                // the queue itself — the worker only publishes after
                // finishing a drain, so it could never report a non-empty
                // queue or an in-flight rejection.
                snapshot.queue_depth = s.queue.len();
                snapshot.admission = s.queue.stats();
                snapshot
            })
            .collect();
        let mut admission = AdmissionStats {
            rejected_rate: self.rejected_rate.load(Ordering::Relaxed),
            dropped_total: self.ring.total(),
            ..AdmissionStats::default()
        };
        for shard in &per_shard {
            admission.admitted += shard.admission.admitted;
            admission.rejected_full += shard.admission.rejected_full;
            admission.shed_deadline += shard.admission.shed_deadline;
        }
        ServerStats {
            per_shard,
            admission,
            dropped: self.ring.snapshot(),
            store: self.store.as_ref().map(|s| s.stats()),
            latency: self.latency.snapshot(),
        }
    }

    /// The per-tenant rate policy in force, when rate limiting is on.
    /// The RPC layer derives `Retry-After` hints from it.
    pub fn rate_config(&self) -> Option<RateConfig> {
        self.limiter.as_ref().map(|l| l.config())
    }

    /// Graceful shutdown: closes every queue, lets the workers serve the
    /// backlog, spill their dirty models (when a checkpoint directory is
    /// configured), and exit. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                // A panicking worker already fulfilled or abandoned its
                // jobs; surfacing the panic here would abort the server's
                // owner mid-shutdown for no benefit.
                let _ = worker.join();
            }
        }
    }
}

impl Drop for FairGenServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for FairGenServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairGenServer")
            .field("generator", &self.router.name())
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// A drained generation job with its payload flattened back out — the
/// worker's working form once update jobs have been split off.
struct GenJob {
    graph: Arc<Graph>,
    task: Arc<TaskSpec>,
    fit_seed: u64,
    fingerprint: GraphFingerprint,
    submitted_at: Instant,
    sample_seeds: Vec<u64>,
    slot: ResponseSlot<GenerateResponse>,
}

/// A drained update job, ditto. `routed_fp` is the fingerprint the job
/// was routed by — the alias-map key its outcome must chain onto.
struct UpdateJob {
    graph: Arc<Graph>,
    task: Arc<TaskSpec>,
    fit_seed: u64,
    routed_fp: GraphFingerprint,
    delta: GraphDelta,
    slot: ResponseSlot<UpdateOutcome>,
}

/// One shard's serve loop: drain → apply graph-delta updates →
/// dedup-check → per-fingerprint `handle_batch` → publish stats → fulfill
/// responses. Updates go first so a generate for a just-updated graph in
/// the *same* drain already sees the alias decision.
fn shard_worker(
    mut registry: ModelRegistry,
    queue: &ShardQueue,
    stats: &Mutex<ShardStats>,
    aliases: &AliasMap,
    latency: &StageLatency,
    dedup_capacity: usize,
) {
    // Failsafe: whatever takes this worker down — a panic inside a
    // user-provided generator included — close the queue so later submits
    // fail fast, and discard the backlog so every stranded job's slot
    // delivers its typed drop-error instead of parking its client forever.
    // On a normal shutdown both actions are no-ops.
    struct Failsafe<'a>(&'a ShardQueue);
    impl Drop for Failsafe<'_> {
        fn drop(&mut self) {
            self.0.close();
            drop(self.0.try_drain());
        }
    }
    let _failsafe = Failsafe(queue);

    let mut dedup = DedupCache::new(dedup_capacity);
    let mut dedup_hits = 0u64;
    let mut dedup_inserts = 0u64;
    let mut drains = 0u64;
    let mut max_drain = 0usize;
    let mut drained_jobs = 0u64;
    let mut batched_requests = 0u64;
    let mut drain_hist = [0u64; DRAIN_HIST_BUCKETS];
    loop {
        let drain = queue.drain();
        if drain.is_empty() {
            break; // Closed and fully drained.
        }
        let width = drain.served.len() + drain.shed.len();
        drains += 1;
        max_drain = max_drain.max(width);
        drained_jobs += width as u64;
        drain_hist[drain_width_bucket(width)] += 1;

        // Shed pass: jobs whose queue deadline expired while they waited
        // get their typed rejection *now* — the admission queue already
        // recorded them in the dropped ring; answering is all that's left.
        // Each answer carries its job's submit stamp so the total-latency
        // stage is recorded at the moment the client is woken.
        let mut fulfilled: Vec<(
            ResponseSlot<GenerateResponse>,
            Result<GenerateResponse>,
            Instant,
        )> = Vec::with_capacity(drain.served.len() + drain.shed.len());
        let mut update_fulfilled: Vec<(ResponseSlot<UpdateOutcome>, Result<UpdateOutcome>)> =
            Vec::new();
        let mut updates: Vec<UpdateJob> = Vec::new();
        let mut generates: Vec<GenJob> = Vec::new();
        for shed in drain.shed {
            // A shed job still waited in the queue; its wait belongs in
            // the queue_wait stage like any other drained job's.
            latency.queue_wait.record_nanos(shed.age_at(drain.now_nanos));
            let err = || overload_error(DropReason::DeadlineExpired);
            let submitted_at = shed.item.submitted_at;
            match shed.item.payload {
                JobPayload::Generate { slot, .. } => {
                    fulfilled.push((slot, Err(err()), submitted_at))
                }
                JobPayload::Update { slot, .. } => update_fulfilled.push((slot, Err(err()))),
            }
        }
        for queued in drain.served {
            latency.queue_wait.record_nanos(queued.age_at(drain.now_nanos));
            let job = queued.item;
            match job.payload {
                JobPayload::Generate { sample_seeds, slot } => generates.push(GenJob {
                    graph: job.graph,
                    task: job.task,
                    fit_seed: job.fit_seed,
                    fingerprint: job.fingerprint,
                    submitted_at: job.submitted_at,
                    sample_seeds,
                    slot,
                }),
                JobPayload::Update { delta, slot } => updates.push(UpdateJob {
                    graph: job.graph,
                    task: job.task,
                    fit_seed: job.fit_seed,
                    routed_fp: job.fingerprint,
                    delta,
                    slot,
                }),
            }
        }

        // Update pass, before any generation: apply each delta, then
        // register the routing alias so every later request for the updated
        // graph — including generates later in this very drain — lands
        // back on this shard's lineage model.
        for job in updates {
            let invoked_at = Instant::now();
            let outcome = registry.apply_delta(&job.graph, &job.task, job.fit_seed, &job.delta);
            latency.model_invocation.record(invoked_at.elapsed());
            if let Ok(outcome) = &outcome {
                // The anchor this family routes by: whatever anchor got the
                // update here (aliases are pre-flattened, so one read).
                let mut map = aliases.write().expect("alias map");
                let anchor = map.get(&job.routed_fp).copied().unwrap_or(job.routed_fp);
                if outcome.new_fingerprint != anchor {
                    map.insert(outcome.new_fingerprint, anchor);
                }
            }
            update_fulfilled.push((job.slot, outcome));
        }

        // Dedup pass: answer fully-cached requests without the registry.
        let mut pending: Vec<GenJob> = Vec::new();
        for job in generates {
            match dedup.lookup_all(job.fingerprint, &job.sample_seeds) {
                Some(graphs) => {
                    dedup_hits += 1;
                    let response = GenerateResponse {
                        fingerprint: job.fingerprint,
                        served_from: ServedFrom::DedupCache,
                        graphs,
                    };
                    fulfilled.push((job.slot, Ok(response), job.submitted_at));
                }
                None => pending.push(job),
            }
        }

        // Coalesce the rest: group by fingerprint (first-seen order), one
        // `handle_batch` call per group.
        let mut groups: Vec<(GraphFingerprint, Vec<GenJob>)> = Vec::new();
        for job in pending {
            match groups.iter_mut().find(|(fp, _)| *fp == job.fingerprint) {
                Some((_, members)) => members.push(job),
                None => groups.push((job.fingerprint, vec![job])),
            }
        }
        for (fp, members) in groups {
            if members.len() > 1 {
                batched_requests += members.len() as u64;
            }
            let reqs: Vec<GenerateRequest> = members
                .iter()
                .map(|j| {
                    GenerateRequest::new(&j.graph, &j.task, j.fit_seed, j.sample_seeds.clone())
                })
                .collect();
            // Keys were computed once at submit time; the registry must not
            // re-hash every graph on this (per-shard serialized) thread.
            let keys = vec![fp; reqs.len()];
            let invoked_at = Instant::now();
            let batch = registry.handle_batch_keyed(&reqs, &keys);
            // One observation per coalesced group — the histogram counts
            // model invocations, not the requests sharing them.
            latency.model_invocation.record(invoked_at.elapsed());
            match batch {
                Ok(responses) => {
                    for (job, response) in members.into_iter().zip(responses) {
                        for (&seed, graph) in job.sample_seeds.iter().zip(&response.graphs) {
                            dedup.insert(
                                DedupKey { fingerprint: fp, gen_seed: seed },
                                graph.clone(),
                            );
                            dedup_inserts += 1;
                        }
                        fulfilled.push((job.slot, Ok(response), job.submitted_at));
                    }
                }
                Err(e) => {
                    // One typed error, `members.len()` waiting clients:
                    // `FairGenError` is not `Clone`, so the first requester
                    // gets the original and the rest get its rendering.
                    let detail = format!("coalesced batch for fingerprint {fp} failed: {e}");
                    let mut original = Some(e);
                    for job in members {
                        let err = match original.take() {
                            Some(e) => e,
                            None => FairGenError::Internal { detail: detail.clone() },
                        };
                        fulfilled.push((job.slot, Err(err), job.submitted_at));
                    }
                }
            }
        }

        // Publish counters BEFORE waking clients, so `stats()` observed
        // after a response always includes it.
        {
            let mut shared = stats.lock().expect("shard stats");
            shared.registry = registry.stats();
            shared.dedup_hits = dedup_hits;
            shared.dedup_inserts = dedup_inserts;
            shared.dedup_resident = dedup.len();
            shared.drains = drains;
            shared.max_drain = max_drain;
            shared.drained_jobs = drained_jobs;
            shared.batched_requests = batched_requests;
            shared.drain_hist = drain_hist;
        }
        for (slot, outcome) in update_fulfilled {
            slot.fulfill(outcome);
        }
        for (slot, response, submitted_at) in fulfilled {
            latency.total.record(submitted_at.elapsed());
            slot.fulfill(response);
        }
    }
    // Graceful exit: demote dirty models to the checkpoint directory (a
    // no-op without one) so a successor server warm-starts instead of
    // refitting. Failures here have no client to report to.
    let _ = registry.spill_all();
    if let Ok(mut shared) = stats.lock() {
        shared.registry = registry.stats();
    }
}
