//! Cross-request sample deduplication: a bounded LRU cache of generated
//! graphs.
//!
//! Generation is deterministic per `(fitted model, generation seed)`, and a
//! fitted model is itself a pure function of its [`GraphFingerprint`] — so
//! the pair `(fingerprint, gen_seed)` fully determines a sample. (The task
//! spec the ISSUE-level key mentions is already folded *into* the
//! fingerprint, along with the graph, fit seed, generator family, and
//! hyperparameters.) Two clients asking for the same pair are asking for
//! the same bytes; the [`DedupCache`] serves the second one without any
//! model invocation at all.
//!
//! Eviction mirrors the model registry's discipline: least-recently-used
//! first, ties broken on the key, so the resident set is a pure function of
//! the request history and never of `HashMap` iteration order.

use std::collections::HashMap;

use fairgen_graph::{Graph, GraphFingerprint};

/// The cache key: everything that determines a sample's bytes.
///
/// `fingerprint` covers the fit side (graph content, task spec, fit seed,
/// generator family + hyperparameters); `gen_seed` covers the draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DedupKey {
    /// The fit-side cache key (see [`crate::ModelRegistry::fingerprint`]).
    pub fingerprint: GraphFingerprint,
    /// The generation seed of the draw.
    pub gen_seed: u64,
}

struct Slot {
    graph: Graph,
    last_used: u64,
}

/// A bounded LRU cache mapping [`DedupKey`]s to generated graphs.
///
/// A capacity of zero disables the cache entirely (every lookup misses,
/// every insert is dropped), which keeps the serving path branch-free at
/// its call sites.
pub struct DedupCache {
    capacity: usize,
    clock: u64,
    slots: HashMap<DedupKey, Slot>,
    hits: u64,
    misses: u64,
}

impl DedupCache {
    /// A cache holding at most `capacity` graphs.
    pub fn new(capacity: usize) -> Self {
        DedupCache { capacity, clock: 0, slots: HashMap::new(), hits: 0, misses: 0 }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached graphs (always `<= capacity`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lookup counters: key-level hits, and misses (one per missed
    /// [`lookup`](DedupCache::lookup) or failed
    /// [`lookup_all`](DedupCache::lookup_all)).
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Whether a key is resident (no LRU touch, no counter bump).
    pub fn contains(&self, key: DedupKey) -> bool {
        self.slots.contains_key(&key)
    }

    /// Looks up one key, refreshing its recency on a hit.
    pub fn lookup(&mut self, key: DedupKey) -> Option<&Graph> {
        self.clock += 1;
        match self.slots.get_mut(&key) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                Some(&slot.graph)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// All-or-nothing batch lookup: when **every** `(fingerprint, seed)`
    /// pair is resident, returns the graphs in seed order (cloned) and
    /// refreshes each pair's recency; when any pair is missing, returns
    /// `None` and touches nothing — the whole request then goes through the
    /// model, so the cache never serves a half-deduplicated response.
    pub fn lookup_all(&mut self, fp: GraphFingerprint, seeds: &[u64]) -> Option<Vec<Graph>> {
        if seeds.is_empty()
            || !seeds.iter().all(|&s| self.contains(DedupKey { fingerprint: fp, gen_seed: s }))
        {
            self.misses += 1;
            return None;
        }
        let graphs = seeds
            .iter()
            .map(|&s| {
                self.lookup(DedupKey { fingerprint: fp, gen_seed: s })
                    .cloned()
                    .unwrap_or_else(|| unreachable!("presence checked above"))
            })
            .collect();
        Some(graphs)
    }

    /// Inserts (or refreshes) a key, then evicts least-recently-used
    /// entries until the capacity bound holds. With capacity zero the
    /// insert is dropped.
    pub fn insert(&mut self, key: DedupKey, graph: Graph) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        self.slots.insert(key, Slot { graph, last_used: self.clock });
        while self.slots.len() > self.capacity {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(&k, slot)| (slot.last_used, k))
                .map(|(&k, _)| k)
                .expect("over-capacity cache has entries");
            self.slots.remove(&victim);
        }
    }

    /// Drops every cached graph (counters survive).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

impl std::fmt::Debug for DedupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupCache")
            .field("len", &self.slots.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_graph::FingerprintBuilder;

    fn fp(tag: u64) -> GraphFingerprint {
        let mut b = FingerprintBuilder::new();
        b.add_u64(tag);
        b.finish()
    }

    fn key(tag: u64, seed: u64) -> DedupKey {
        DedupKey { fingerprint: fp(tag), gen_seed: seed }
    }

    fn graph(n: usize) -> Graph {
        Graph::from_edges(n, &[(0, 1)])
    }

    #[test]
    fn lookup_returns_exactly_what_was_inserted() {
        let mut cache = DedupCache::new(4);
        cache.insert(key(1, 10), graph(3));
        cache.insert(key(1, 11), graph(4));
        assert_eq!(cache.lookup(key(1, 10)).map(Graph::n), Some(3));
        assert_eq!(cache.lookup(key(1, 11)).map(Graph::n), Some(4));
        assert!(cache.lookup(key(2, 10)).is_none(), "different fingerprint, same seed");
        assert!(cache.lookup(key(1, 12)).is_none(), "same fingerprint, different seed");
        assert_eq!(cache.hit_miss_counts(), (2, 2));
    }

    #[test]
    fn capacity_bound_holds_and_lru_is_evicted() {
        let mut cache = DedupCache::new(2);
        cache.insert(key(0, 0), graph(3));
        cache.insert(key(0, 1), graph(4));
        // Touch the older entry so the newer one becomes the victim.
        assert!(cache.lookup(key(0, 0)).is_some());
        cache.insert(key(0, 2), graph(5));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(key(0, 0)), "recently used survives");
        assert!(!cache.contains(key(0, 1)), "LRU evicted");
        assert!(cache.contains(key(0, 2)));
    }

    #[test]
    fn lookup_all_is_all_or_nothing() {
        let mut cache = DedupCache::new(4);
        cache.insert(key(7, 1), graph(3));
        cache.insert(key(7, 2), graph(4));
        let full = cache.lookup_all(fp(7), &[1, 2]).expect("both resident");
        assert_eq!(full.iter().map(Graph::n).collect::<Vec<_>>(), vec![3, 4]);
        assert!(cache.lookup_all(fp(7), &[1, 3]).is_none(), "partial hit misses");
        assert!(cache.lookup_all(fp(7), &[]).is_none(), "empty request never dedups");
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = DedupCache::new(0);
        cache.insert(key(1, 1), graph(3));
        assert!(cache.is_empty());
        assert!(cache.lookup(key(1, 1)).is_none());
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut cache = DedupCache::new(2);
        cache.insert(key(0, 0), graph(3));
        cache.insert(key(0, 1), graph(4));
        cache.insert(key(0, 0), graph(5)); // refresh, newer value wins
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(key(0, 0)).map(Graph::n), Some(5));
        // The refreshed key is now the most recent: inserting a third key
        // evicts key(0, 1).
        cache.insert(key(0, 2), graph(6));
        assert!(!cache.contains(key(0, 1)));
    }
}
