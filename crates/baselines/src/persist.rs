//! Persistence extension of the generator lifecycle: fitted models that
//! survive process restarts.
//!
//! [`PersistableGenerator`] extends [`FittedGenerator`] with a stable
//! family tag and a state encoder; [`fitted_to_bytes`] seals that state
//! into the versioned container of [`fairgen_graph::codec`].
//! [`PersistableGraphGenerator`] is the fitting-side counterpart: it
//! returns the fitted model as a *persistable* trait object, which is what
//! a serving layer caches, spills to disk under memory pressure, and
//! warm-starts from after a restart.
//!
//! Decoding dispatches on the container tag. This crate knows the six
//! baseline families; `fairgen_core::checkpoint` layers FairGen on top and
//! is the entry point applications should use
//! (`fairgen_core::checkpoint::{save_to, load_from}`).
//!
//! The contract every implementation upholds (and the serving tests
//! enforce): **save → load → generate(seed) produces the same graph as the
//! in-memory model**, because weights round-trip bit-exactly and generation
//! randomness is derived solely from the generation seed.

use fairgen_graph::codec::{self, Decoder, Encoder};
use fairgen_graph::error::Result;
use fairgen_graph::{FingerprintBuilder, Graph};

use crate::traits::{FittedGenerator, GraphGenerator, TaskSpec};

/// A fitted generator whose state can be checkpointed.
///
/// `Send` is a supertrait so a serving layer can move fitted models into
/// worker threads (one registry per shard); every model is plain owned data,
/// so the bound costs implementations nothing.
pub trait PersistableGenerator: FittedGenerator + Send {
    /// Stable family tag stored in the checkpoint container (e.g. `"ER"`,
    /// `"TagGen"`, `"FairGen"`). Decoders dispatch on it; renaming a tag is
    /// a format break.
    fn checkpoint_tag(&self) -> &'static str;

    /// Appends the model state (payload only — no container framing) to
    /// `enc`. Must be deterministic: equal models encode to equal bytes.
    fn encode_state(&self, enc: &mut Encoder);
}

/// A generator whose fit result is checkpointable — the fitting side of the
/// persistence contract, implemented by all six baselines here and by
/// `FairGenGenerator` in `fairgen-core`.
///
/// `Send + Sync` are supertraits: generators are immutable configuration
/// objects, and a sharded server both moves one instance into each shard
/// worker (`Send`) and fingerprints requests against a shared routing
/// instance from many client threads at once (`Sync`).
pub trait PersistableGraphGenerator: GraphGenerator + Send + Sync {
    /// [`GraphGenerator::fit`], but returning the fitted model as a
    /// persistable trait object.
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>>;

    /// Folds every hyperparameter that changes what `fit` produces into a
    /// fingerprint, so a serving cache never conflates models trained
    /// under different configurations (e.g. a test-budget spill warmed
    /// into a production registry). Parameter-free families (ER, BA) keep
    /// the default no-op.
    fn fold_config(&self, fp: &mut FingerprintBuilder) {
        let _ = fp;
    }
}

/// Seals a fitted model into checkpoint container bytes.
pub fn fitted_to_bytes(model: &dyn PersistableGenerator) -> Vec<u8> {
    let mut enc = Encoder::new();
    model.encode_state(&mut enc);
    codec::seal(model.checkpoint_tag(), &enc.into_bytes())
}

/// Decodes a baseline fitted model from an *opened* container, dispatching
/// on its tag. Returns `Ok(None)` when the tag names a family this crate
/// does not know (the caller may layer more families on top, as
/// `fairgen_core::checkpoint` does for FairGen).
pub fn decode_baseline(
    tag: &str,
    dec: &mut Decoder,
) -> Result<Option<Box<dyn PersistableGenerator>>> {
    let model: Box<dyn PersistableGenerator> = match tag {
        "ER" => Box::new(crate::er::decode_fitted(dec)?),
        "BA" => Box::new(crate::ba::decode_fitted(dec)?),
        "GAE" => Box::new(crate::gae::decode_fitted(dec)?),
        "NetGAN" => Box::new(crate::netgan::decode_fitted(dec)?),
        "TagGen" => Box::new(crate::taggen::decode_fitted(dec)?),
        _ => return Ok(None),
    };
    dec.finish()?;
    Ok(Some(model))
}

/// Convenience: seals `model` and reopens it through [`decode_baseline`] —
/// the in-process equivalent of a spill/warm-start cycle, used by tests.
pub fn roundtrip_baseline(
    model: &dyn PersistableGenerator,
) -> Result<Option<Box<dyn PersistableGenerator>>> {
    let bytes = fitted_to_bytes(model);
    let (tag, mut dec) = codec::open(&bytes)?;
    decode_baseline(&tag, &mut dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaGenerator, ErGenerator};
    use fairgen_graph::FairGenError;

    fn ring(n: u32) -> Graph {
        Graph::from_edges(n as usize, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn fit_persistable_matches_fit() {
        let g = ring(12);
        let task = TaskSpec::unlabeled();
        let mut a = ErGenerator.fit(&g, &task, 0).expect("fit");
        let mut b = ErGenerator.fit_persistable(&g, &task, 0).expect("fit_persistable");
        assert_eq!(a.generate(7).expect("a"), b.generate(7).expect("b"));
        assert_eq!(b.checkpoint_tag(), "ER");
    }

    #[test]
    fn roundtrip_preserves_generation() {
        let g = ring(16);
        let task = TaskSpec::unlabeled();
        for gen in [&ErGenerator as &dyn PersistableGraphGenerator, &BaGenerator] {
            let mut fitted = gen.fit_persistable(&g, &task, 1).expect("fit");
            let mut back =
                roundtrip_baseline(fitted.as_ref()).expect("decode").expect("known family");
            assert_eq!(
                fitted.generate(9).expect("mem"),
                back.generate(9).expect("disk"),
                "{} roundtrip diverged",
                gen.name()
            );
        }
    }

    #[test]
    fn unknown_tag_is_left_to_the_caller() {
        let bytes = codec::seal("SomeFutureFamily", &[]);
        let (tag, mut dec) = codec::open(&bytes).expect("container valid");
        assert!(decode_baseline(&tag, &mut dec).expect("no error").is_none());
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let g = ring(8);
        let fitted = ErGenerator.fit_persistable(&g, &TaskSpec::unlabeled(), 0).expect("fit");
        let mut enc = Encoder::new();
        fitted.encode_state(&mut enc);
        enc.put_u8(0xAB);
        let bytes = codec::seal(fitted.checkpoint_tag(), &enc.into_bytes());
        let (tag, mut dec) = codec::open(&bytes).expect("container valid");
        assert!(matches!(
            decode_baseline(&tag, &mut dec),
            Err(FairGenError::CorruptCheckpoint { .. })
        ));
    }
}
