//! NetGAN-lite: an LSTM random-walk generator (Bojchevski et al., ICML'18).

use fairgen_graph::codec::{Codec, Decoder, Encoder};
use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::Graph;
use fairgen_nn::param::HasParams;
use fairgen_nn::{clip_gradients, Adam, LstmLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::persist::{PersistableGenerator, PersistableGraphGenerator};
use crate::traits::{FittedGenerator, GraphGenerator, TaskSpec};
use crate::walk_lm::{
    decode_fitted_walk_lm, encode_fitted_walk_lm, train_walk_lm, FittedWalkLm, WalkLmBudget,
    WalkModel,
};

/// NetGAN-lite configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetGanGenerator {
    /// Embedding width of the LSTM input.
    pub dim: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// Training/generation budget.
    pub budget: WalkLmBudget,
}

impl Default for NetGanGenerator {
    fn default() -> Self {
        NetGanGenerator { dim: 32, hidden: 48, budget: WalkLmBudget::default() }
    }
}

pub(crate) struct NetGanModel {
    lm: LstmLm,
    opt: Adam,
}

impl Codec for NetGanModel {
    /// The optimizer is *not* checkpointed — only its learning rate, so a
    /// reloaded model could resume fine-tuning with a fresh Adam state.
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.opt.lr);
        self.lm.encode(enc);
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        let lr = dec.take_f64()?;
        if !lr.is_finite() || lr <= 0.0 {
            return Err(FairGenError::CorruptCheckpoint {
                detail: format!("non-positive learning rate {lr}"),
            });
        }
        Ok(NetGanModel { lm: LstmLm::decode(dec)?, opt: Adam::new(lr) })
    }
}

impl WalkModel for NetGanModel {
    fn lm_step(&mut self, seq: &[usize], weight: f64) -> f64 {
        self.lm.train_step(seq, weight)
    }
    fn lm_zero(&mut self) {
        self.lm.zero_grad();
    }
    fn lm_opt_step(&mut self) {
        clip_gradients(&mut self.lm, 5.0);
        self.opt.step(&mut self.lm);
    }
    fn lm_sample_batch(
        &self,
        pool: &fairgen_par::ThreadPool,
        count: usize,
        len: usize,
        draws: &[u64],
    ) -> Result<Vec<Vec<usize>>> {
        fairgen_nn::sample_walk_batch(pool, &self.lm, count, len, 1.0, draws)
    }
}

impl NetGanGenerator {
    fn fit_impl(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<FittedWalkLm<NetGanModel>> {
        task.validate(g)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = NetGanModel {
            lm: LstmLm::new(g.n().max(1), self.dim, self.hidden, &mut rng),
            opt: Adam::new(self.budget.lr),
        };
        let trained = train_walk_lm(&mut model, g, &self.budget, &mut rng);
        Ok(FittedWalkLm {
            model,
            display_name: "NetGAN",
            n: g.n(),
            target_m: g.m(),
            budget: self.budget,
            trained,
        })
    }
}

impl GraphGenerator for NetGanGenerator {
    fn name(&self) -> &'static str {
        "NetGAN"
    }

    fn fit(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Box<dyn FittedGenerator>> {
        Ok(Box::new(self.fit_impl(g, task, seed)?))
    }
}

impl PersistableGraphGenerator for NetGanGenerator {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        Ok(Box::new(self.fit_impl(g, task, seed)?))
    }

    fn fold_config(&self, fp: &mut fairgen_graph::FingerprintBuilder) {
        fp.add_usize(self.dim).add_usize(self.hidden);
        self.budget.fold_config(fp);
    }
}

impl PersistableGenerator for FittedWalkLm<NetGanModel> {
    fn checkpoint_tag(&self) -> &'static str {
        "NetGAN"
    }

    fn encode_state(&self, enc: &mut Encoder) {
        encode_fitted_walk_lm(self, enc);
    }
}

/// Decodes a fitted NetGAN model from a checkpoint payload.
pub(crate) fn decode_fitted(dec: &mut Decoder) -> Result<FittedWalkLm<NetGanModel>> {
    let fitted: FittedWalkLm<NetGanModel> = decode_fitted_walk_lm("NetGAN", dec)?;
    if fitted.model.lm.vocab() != fitted.n.max(1) {
        return Err(FairGenError::CorruptCheckpoint {
            detail: format!(
                "NetGAN vocab {} disagrees with {} nodes",
                fitted.model.lm.vocab(),
                fitted.n
            ),
        });
    }
    Ok(fitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_walks::negative::edge_consistency;

    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
                edges.push((a + 6, b + 6));
            }
        }
        edges.push((5, 6));
        Graph::from_edges(12, &edges)
    }

    fn fast() -> NetGanGenerator {
        NetGanGenerator {
            dim: 12,
            hidden: 16,
            budget: WalkLmBudget {
                walk_len: 6,
                train_walks: 80,
                epochs: 3,
                negative_weight: 0.2,
                gen_multiplier: 4,
                lr: 0.02,
            },
        }
    }

    #[test]
    fn output_counts_match() {
        let g = two_cliques();
        let out = fast().fit_generate(&g, &TaskSpec::unlabeled(), 1).expect("valid input");
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
        assert!(out.min_degree() >= 1);
    }

    #[test]
    fn one_fit_amortizes_many_samples() {
        let g = two_cliques();
        let mut fitted = fast().fit(&g, &TaskSpec::unlabeled(), 1).expect("fit");
        let batch = fitted.generate_batch(&[8, 9, 8]).expect("batch");
        assert_eq!(batch[0], batch[2], "same seed must reproduce");
        for out in &batch {
            assert_eq!(out.n(), g.n());
            assert_eq!(out.m(), g.m());
        }
    }

    #[test]
    fn learned_walks_better_than_random() {
        // After training, the LSTM's samples should traverse real edges far
        // more often than uniform random sequences would.
        let g = two_cliques();
        let gen = fast();
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = NetGanModel {
            lm: LstmLm::new(g.n(), gen.dim, gen.hidden, &mut rng),
            opt: Adam::new(gen.budget.lr),
        };
        assert!(train_walk_lm(&mut model, &g, &gen.budget, &mut rng));
        let samples: Vec<Vec<u32>> = (0..60)
            .map(|_| {
                model
                    .lm_sample(6, &mut rng)
                    .expect("sample")
                    .iter()
                    .map(|&t| t as u32)
                    .collect()
            })
            .collect();
        let consistency = edge_consistency(&g, &samples);
        // Density of the two-clique graph is 31/66 ≈ 0.47; random pairs match
        // with ~0.47 minus diagonal effects. Require a clear learning signal.
        assert!(consistency > 0.6, "edge consistency {consistency}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = two_cliques();
        let gen = fast();
        let task = TaskSpec::unlabeled();
        assert_eq!(
            gen.fit_generate(&g, &task, 7).expect("valid input"),
            gen.fit_generate(&g, &task, 7).expect("valid input"),
        );
    }
}
