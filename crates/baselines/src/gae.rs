//! GAE-lite: a graph auto-encoder baseline.
//!
//! Encoder: one symmetric-normalized propagation of a learned embedding
//! table, `Z = Â E` with `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`. Decoder:
//! `σ(z_u · z_v)`. Trained with binary cross-entropy on the observed edges
//! against an equal number of sampled non-edges — the standard VGAE recipe
//! minus the variational term.

use fairgen_graph::codec::{Codec, Decoder, Encoder};
use fairgen_graph::error::Result;
use fairgen_graph::{Graph, NodeId};
use fairgen_nn::param::HasParams;
use fairgen_nn::{Adam, Mat, Param};
use fairgen_walks::ScoreMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::persist::{PersistableGenerator, PersistableGraphGenerator};
use crate::traits::{FittedGenerator, GraphGenerator, TaskSpec};

/// GAE-lite hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct GaeGenerator {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs (each epoch visits all edges + as many negatives).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for GaeGenerator {
    fn default() -> Self {
        GaeGenerator { dim: 24, epochs: 40, lr: 0.05 }
    }
}

struct GaeModel {
    emb: Param,
}

impl HasParams for GaeModel {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.emb);
    }
}

/// `Â X` for the symmetric-normalized adjacency-with-self-loops.
fn propagate(g: &Graph, x: &Mat) -> Mat {
    let n = g.n();
    let inv_sqrt: Vec<f64> =
        (0..n).map(|v| 1.0 / ((g.degree(v as NodeId) + 1) as f64).sqrt()).collect();
    let mut out = Mat::zeros(n, x.cols());
    for u in 0..n {
        let du = inv_sqrt[u];
        // Self-loop term.
        let coef = du * du;
        let src = x.row(u).to_vec();
        for (o, s) in out.row_mut(u).iter_mut().zip(&src) {
            *o += coef * s;
        }
        for &v in g.neighbors(u as NodeId) {
            let coef = du * inv_sqrt[v as usize];
            let src = x.row(v as usize).to_vec();
            for (o, s) in out.row_mut(u).iter_mut().zip(&src) {
                *o += coef * s;
            }
        }
    }
    out
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl GaeGenerator {
    /// Trains and returns the propagated node embeddings `Z`.
    fn train_embeddings(&self, g: &Graph, rng: &mut StdRng) -> Mat {
        let n = g.n();
        let mut model = GaeModel { emb: Param::new(Mat::uniform(n, self.dim, 0.3, rng)) };
        let mut opt = Adam::new(self.lr);
        let edges = g.edge_list();
        for _ in 0..self.epochs {
            model.zero_grad();
            let z = propagate(g, &model.emb.value);
            let mut dz = Mat::zeros(n, self.dim);
            let mut pairs: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(2 * edges.len());
            for &(u, v) in &edges {
                pairs.push((u, v, 1.0));
                // One random negative per positive.
                let (mut x, mut y) =
                    (rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId));
                let mut guard = 0;
                while (x == y || g.has_edge(x, y)) && guard < 50 {
                    x = rng.gen_range(0..n as NodeId);
                    y = rng.gen_range(0..n as NodeId);
                    guard += 1;
                }
                pairs.push((x, y, 0.0));
            }
            let scale = 1.0 / pairs.len() as f64;
            for (u, v, label) in pairs {
                let (u, v) = (u as usize, v as usize);
                let zu = z.row(u).to_vec();
                let zv = z.row(v).to_vec();
                let dot: f64 = zu.iter().zip(&zv).map(|(a, b)| a * b).sum();
                let s = sigmoid(dot);
                let coef = (s - label) * scale; // d BCE / d dot
                for (d, b) in dz.row_mut(u).iter_mut().zip(&zv) {
                    *d += coef * b;
                }
                for (d, a) in dz.row_mut(v).iter_mut().zip(&zu) {
                    *d += coef * a;
                }
            }
            // Z = Â E, Â symmetric ⇒ dE = Â dZ.
            model.emb.grad.add_assign(&propagate(g, &dz));
            opt.step(&mut model);
        }
        propagate(g, &model.emb.value)
    }
}

/// A fitted GAE model: the decoded edge scores of the trained embeddings
/// plus the edge budget; each generation seed re-runs only the assembly.
pub(crate) struct FittedGae {
    scores: ScoreMatrix,
    target_m: usize,
}

impl GaeGenerator {
    fn fit_impl(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<FittedGae> {
        task.validate(g)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let z = self.train_embeddings(g, &mut rng);
        // Decode once: score every pair; the top-m selection (min-degree
        // rescue included) happens per generation draw.
        let n = g.n();
        let mut scores = ScoreMatrix::new(n);
        for u in 0..n {
            let zu = z.row(u);
            for v in (u + 1)..n {
                let dot: f64 = zu.iter().zip(z.row(v)).map(|(a, b)| a * b).sum();
                let p = sigmoid(dot);
                if p > 0.5 {
                    scores.add_edge(u as NodeId, v as NodeId, p);
                }
            }
        }
        Ok(FittedGae { scores, target_m: g.m() })
    }
}

impl GraphGenerator for GaeGenerator {
    fn name(&self) -> &'static str {
        "GAE"
    }

    fn fit(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Box<dyn FittedGenerator>> {
        Ok(Box::new(self.fit_impl(g, task, seed)?))
    }
}

impl PersistableGraphGenerator for GaeGenerator {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        Ok(Box::new(self.fit_impl(g, task, seed)?))
    }

    fn fold_config(&self, fp: &mut fairgen_graph::FingerprintBuilder) {
        fp.add_usize(self.dim).add_usize(self.epochs).add_f64(self.lr);
    }
}

impl PersistableGenerator for FittedGae {
    fn checkpoint_tag(&self) -> &'static str {
        "GAE"
    }

    fn encode_state(&self, enc: &mut Encoder) {
        self.scores.encode(enc);
        enc.put_usize(self.target_m);
    }
}

/// Decodes a fitted GAE model from a checkpoint payload.
pub(crate) fn decode_fitted(dec: &mut Decoder) -> Result<FittedGae> {
    let scores = ScoreMatrix::decode(dec)?;
    let target_m = dec.take_usize()?;
    Ok(FittedGae { scores, target_m })
}

impl FittedGenerator for FittedGae {
    fn name(&self) -> &'static str {
        "GAE"
    }

    fn generate(&mut self, seed: u64) -> Result<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(self.scores.assemble(self.target_m, &mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::Dataset;

    fn small() -> Graph {
        // Two clear communities.
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                if (a < 4) == (b < 4) {
                    edges.push((a, b));
                }
            }
        }
        edges.push((0, 4));
        Graph::from_edges(8, &edges)
    }

    fn fit_generate(gen: &GaeGenerator, g: &Graph, seed: u64) -> Graph {
        gen.fit_generate(g, &TaskSpec::unlabeled(), seed).expect("valid input")
    }

    #[test]
    fn output_counts_match() {
        let g = small();
        let gen = GaeGenerator { dim: 8, epochs: 30, lr: 0.1 };
        let out = fit_generate(&gen, &g, 1);
        assert_eq!(out.n(), 8);
        assert_eq!(out.m(), g.m());
        assert!(out.min_degree() >= 1);
    }

    #[test]
    fn one_fit_amortizes_many_samples() {
        let g = small();
        let gen = GaeGenerator { dim: 8, epochs: 30, lr: 0.1 };
        let mut fitted = gen.fit(&g, &TaskSpec::unlabeled(), 1).expect("fit");
        let batch = fitted.generate_batch(&[3, 4, 3]).expect("batch");
        assert_eq!(batch[0], batch[2], "same seed must reproduce");
        for out in &batch {
            assert_eq!(out.n(), g.n());
            assert_eq!(out.m(), g.m());
        }
    }

    #[test]
    fn reconstructs_community_structure() {
        let g = small();
        let gen = GaeGenerator { dim: 8, epochs: 80, lr: 0.1 };
        let out = fit_generate(&gen, &g, 2);
        // Count intra- vs inter-community edges in the reconstruction.
        let intra = out.edge_list().iter().filter(|&&(u, v)| (u < 4) == (v < 4)).count();
        let inter = out.m() - intra;
        assert!(intra > inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn embeddings_separate_communities() {
        let g = small();
        let gen = GaeGenerator { dim: 8, epochs: 80, lr: 0.1 };
        let mut rng = StdRng::seed_from_u64(3);
        let z = gen.train_embeddings(&g, &mut rng);
        // Mean intra-community dot should beat inter-community dot.
        let dot = |a: usize, b: usize| -> f64 {
            z.row(a).iter().zip(z.row(b)).map(|(x, y)| x * y).sum()
        };
        let intra = (dot(0, 1) + dot(1, 2) + dot(4, 5) + dot(5, 6)) / 4.0;
        let inter = (dot(0, 5) + dot(1, 6) + dot(2, 7) + dot(3, 4)) / 4.0;
        assert!(intra > inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn runs_on_benchmark_scale() {
        let lg = Dataset::Ca.generate(1);
        let gen = GaeGenerator { dim: 12, epochs: 5, lr: 0.05 };
        let out = fit_generate(&gen, &lg.graph, 4);
        assert_eq!(out.n(), lg.graph.n());
        assert_eq!(out.m(), lg.graph.m());
    }

    #[test]
    fn deterministic_in_seed() {
        let g = small();
        let gen = GaeGenerator { dim: 6, epochs: 10, lr: 0.1 };
        assert_eq!(fit_generate(&gen, &g, 9), fit_generate(&gen, &g, 9));
    }
}
