//! TagGen-lite: a Transformer random-walk generator (Zhou et al., KDD'20).
//!
//! TagGen's central architectural move relative to NetGAN is replacing the
//! recurrent generator with a (faster-to-train) self-attention model; this
//! lite version keeps exactly that difference and shares the rest of the
//! pipeline with NetGAN-lite.

use fairgen_graph::codec::{Codec, Decoder, Encoder};
use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::Graph;
use fairgen_nn::param::HasParams;
use fairgen_nn::{clip_gradients, Adam, TransformerConfig, TransformerLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::persist::{PersistableGenerator, PersistableGraphGenerator};
use crate::traits::{FittedGenerator, GraphGenerator, TaskSpec};
use crate::walk_lm::{
    decode_fitted_walk_lm, encode_fitted_walk_lm, train_walk_lm, FittedWalkLm, WalkLmBudget,
    WalkModel,
};

/// TagGen-lite configuration.
#[derive(Clone, Copy, Debug)]
pub struct TagGenGenerator {
    /// Transformer width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Training/generation budget.
    pub budget: WalkLmBudget,
}

impl Default for TagGenGenerator {
    fn default() -> Self {
        TagGenGenerator { d_model: 32, heads: 4, layers: 1, budget: WalkLmBudget::default() }
    }
}

pub(crate) struct TagGenModel {
    lm: TransformerLm,
    opt: Adam,
}

impl Codec for TagGenModel {
    /// Optimizer-free, like every checkpoint: only the learning rate is
    /// kept so a reloaded model could resume fine-tuning from fresh Adam
    /// state.
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.opt.lr);
        self.lm.encode(enc);
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        let lr = dec.take_f64()?;
        if !lr.is_finite() || lr <= 0.0 {
            return Err(FairGenError::CorruptCheckpoint {
                detail: format!("non-positive learning rate {lr}"),
            });
        }
        Ok(TagGenModel { lm: TransformerLm::decode(dec)?, opt: Adam::new(lr) })
    }
}

impl WalkModel for TagGenModel {
    fn lm_step(&mut self, seq: &[usize], weight: f64) -> f64 {
        self.lm.train_step(seq, weight)
    }
    fn lm_zero(&mut self) {
        self.lm.zero_grad();
    }
    fn lm_opt_step(&mut self) {
        clip_gradients(&mut self.lm, 5.0);
        self.opt.step(&mut self.lm);
    }
    fn lm_sample_batch(
        &self,
        pool: &fairgen_par::ThreadPool,
        count: usize,
        len: usize,
        draws: &[u64],
    ) -> Result<Vec<Vec<usize>>> {
        fairgen_nn::sample_walk_batch(pool, &self.lm, count, len, 1.0, draws)
    }
}

impl TagGenGenerator {
    fn fit_impl(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<FittedWalkLm<TagGenModel>> {
        task.validate(g)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TransformerConfig {
            vocab: g.n().max(1),
            d_model: self.d_model,
            heads: self.heads,
            layers: self.layers,
            max_len: self.budget.walk_len + 2,
        };
        let mut model = TagGenModel {
            lm: TransformerLm::new(cfg, &mut rng),
            opt: Adam::new(self.budget.lr),
        };
        let trained = train_walk_lm(&mut model, g, &self.budget, &mut rng);
        Ok(FittedWalkLm {
            model,
            display_name: "TagGen",
            n: g.n(),
            target_m: g.m(),
            budget: self.budget,
            trained,
        })
    }
}

impl GraphGenerator for TagGenGenerator {
    fn name(&self) -> &'static str {
        "TagGen"
    }

    fn fit(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Box<dyn FittedGenerator>> {
        Ok(Box::new(self.fit_impl(g, task, seed)?))
    }
}

impl PersistableGraphGenerator for TagGenGenerator {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        Ok(Box::new(self.fit_impl(g, task, seed)?))
    }

    fn fold_config(&self, fp: &mut fairgen_graph::FingerprintBuilder) {
        fp.add_usize(self.d_model).add_usize(self.heads).add_usize(self.layers);
        self.budget.fold_config(fp);
    }
}

impl PersistableGenerator for FittedWalkLm<TagGenModel> {
    fn checkpoint_tag(&self) -> &'static str {
        "TagGen"
    }

    fn encode_state(&self, enc: &mut Encoder) {
        encode_fitted_walk_lm(self, enc);
    }
}

/// Decodes a fitted TagGen model from a checkpoint payload.
pub(crate) fn decode_fitted(dec: &mut Decoder) -> Result<FittedWalkLm<TagGenModel>> {
    let fitted: FittedWalkLm<TagGenModel> = decode_fitted_walk_lm("TagGen", dec)?;
    if fitted.model.lm.config().vocab != fitted.n.max(1) {
        return Err(FairGenError::CorruptCheckpoint {
            detail: format!(
                "TagGen vocab {} disagrees with {} nodes",
                fitted.model.lm.config().vocab,
                fitted.n
            ),
        });
    }
    Ok(fitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_walks::negative::edge_consistency;

    fn ring_with_chords() -> Graph {
        let n = 16u32;
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.extend([(0, 8), (4, 12)]);
        Graph::from_edges(n as usize, &edges)
    }

    fn fast() -> TagGenGenerator {
        TagGenGenerator {
            d_model: 16,
            heads: 2,
            layers: 1,
            budget: WalkLmBudget {
                walk_len: 6,
                train_walks: 80,
                epochs: 3,
                negative_weight: 0.2,
                gen_multiplier: 4,
                lr: 0.02,
            },
        }
    }

    #[test]
    fn output_counts_match() {
        let g = ring_with_chords();
        let out = fast().fit_generate(&g, &TaskSpec::unlabeled(), 1).expect("valid input");
        assert_eq!(out.n(), g.n());
        assert_eq!(out.m(), g.m());
        assert!(out.min_degree() >= 1);
    }

    #[test]
    fn one_fit_amortizes_many_samples() {
        let g = ring_with_chords();
        let mut fitted = fast().fit(&g, &TaskSpec::unlabeled(), 1).expect("fit");
        let batch = fitted.generate_batch(&[4, 5, 4]).expect("batch");
        assert_eq!(batch[0], batch[2], "same seed must reproduce");
        for out in &batch {
            assert_eq!(out.n(), g.n());
            assert_eq!(out.m(), g.m());
        }
    }

    #[test]
    fn learned_walks_better_than_random() {
        let g = ring_with_chords();
        let gen = fast();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TransformerConfig {
            vocab: g.n(),
            d_model: gen.d_model,
            heads: gen.heads,
            layers: gen.layers,
            max_len: gen.budget.walk_len + 2,
        };
        let mut model = TagGenModel {
            lm: TransformerLm::new(cfg, &mut rng),
            opt: Adam::new(gen.budget.lr),
        };
        assert!(train_walk_lm(&mut model, &g, &gen.budget, &mut rng));
        let samples: Vec<Vec<u32>> = (0..60)
            .map(|_| {
                model
                    .lm_sample(6, &mut rng)
                    .expect("sample")
                    .iter()
                    .map(|&t| t as u32)
                    .collect()
            })
            .collect();
        let consistency = edge_consistency(&g, &samples);
        // Ring density ≈ 18/120 = 0.15; trained walks must beat that clearly.
        assert!(consistency > 0.35, "edge consistency {consistency}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = ring_with_chords();
        let gen = fast();
        let task = TaskSpec::unlabeled();
        assert_eq!(
            gen.fit_generate(&g, &task, 2).expect("valid input"),
            gen.fit_generate(&g, &task, 2).expect("valid input"),
        );
    }
}
