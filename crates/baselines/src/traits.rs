//! The common generator interface: a fallible two-phase lifecycle.
//!
//! A [`GraphGenerator`] is fitted **once** on an observed graph (plus the
//! task metadata in [`TaskSpec`]) and the resulting [`FittedGenerator`] is
//! sampled **many times** — the shape of the paper's augmentation and
//! sensitivity experiments (Figs. 6–7), which draw several synthetic graphs
//! from a single trained model. Every phase returns the workspace-wide
//! [`Result`], so invalid inputs surface as typed [`FairGenError`]s
//! instead of panics.
//!
//! # Migration from the one-shot API
//!
//! Before this redesign the trait was a single infallible method and task
//! metadata was bolted onto `FairGenGenerator` alone:
//!
//! ```text
//! // old                                      // new
//! trait GraphGenerator {                      trait GraphGenerator {
//!     fn name(&self) -> &'static str;             fn name(&self) -> &'static str;
//!     fn fit_generate(&self,                      fn fit(&self, g: &Graph,
//!         g: &Graph, seed: u64) -> Graph;             task: &TaskSpec, seed: u64)
//! }                                                   -> Result<Box<dyn FittedGenerator>>;
//!                                                 // convenience, default impl:
//! FairGenGenerator::new(cfg, labeled,             fn fit_generate(&self, g, task, seed)
//!     num_classes, protected)                         -> Result<Graph>;
//!                                             }
//! ```
//!
//! Concretely:
//!
//! * `gen.fit_generate(&g, seed)` becomes
//!   `gen.fit_generate(&g, &TaskSpec::unlabeled(), seed)?` — or, to draw
//!   many samples from one training run,
//!   `let mut fitted = gen.fit(&g, &task, seed)?;` followed by
//!   `fitted.generate(s)?` / `fitted.generate_batch(&seeds)?`.
//! * Labels and the protected group move from `FairGenGenerator`'s fields
//!   into [`TaskSpec`], which **every** generator now receives uniformly
//!   (the baselines ignore it beyond validation).
//! * `fit_generate(g, task, seed)` is exactly equivalent to
//!   `fit(g, task, seed)?.generate(seed.wrapping_add(1))` — old call sites
//!   keep their output distribution, one seed apart.

use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::{Graph, NodeId, NodeSet};

/// Task metadata of the paper's Problem 1, carried uniformly by every
/// generator: few-shot class labels `L` and the protected group `S⁺`.
///
/// Structural baselines (ER, BA, GAE, NetGAN, TagGen) validate the spec and
/// otherwise ignore it; FairGen trains on it.
#[derive(Clone, Debug, Default)]
pub struct TaskSpec {
    /// Few-shot labeled examples `L` as `(node, class)` pairs.
    pub labeled: Vec<(NodeId, usize)>,
    /// Number of classes `C` (0 for unlabeled tasks).
    pub num_classes: usize,
    /// The protected group `S⁺`.
    pub protected: Option<NodeSet>,
}

impl TaskSpec {
    /// A purely structural task: no labels, no protected group.
    pub fn unlabeled() -> Self {
        TaskSpec::default()
    }

    /// A labeled task with an optional protected group.
    pub fn new(
        labeled: Vec<(NodeId, usize)>,
        num_classes: usize,
        protected: Option<NodeSet>,
    ) -> Self {
        TaskSpec { labeled, num_classes, protected }
    }

    /// Whether label information is available.
    pub fn has_labels(&self) -> bool {
        self.num_classes > 0 && !self.labeled.is_empty()
    }

    /// Checks the spec against the graph it will be used with: every
    /// labeled node must exist, every label must be `< num_classes`, and a
    /// protected group must cover exactly the graph's vertex set.
    pub fn validate(&self, g: &Graph) -> Result<()> {
        let n = g.n();
        for &(node, label) in &self.labeled {
            if node as usize >= n {
                return Err(FairGenError::NodeOutOfRange { node, nodes: n });
            }
            if label >= self.num_classes {
                return Err(FairGenError::LabelOutOfRange {
                    node,
                    label,
                    num_classes: self.num_classes,
                });
            }
        }
        if let Some(s) = &self.protected {
            if s.universe() != n {
                return Err(FairGenError::GroupUniverseMismatch {
                    group_universe: s.universe(),
                    nodes: n,
                });
            }
        }
        Ok(())
    }
}

/// A graph generative model: fits on an observed graph once, then produces
/// synthetic graphs over the same vertex set with approximately the same
/// number of edges through the returned [`FittedGenerator`].
///
/// `seed` makes fitting deterministic; each generation draw is separately
/// seeded, so one fit amortizes across arbitrarily many reproducible
/// samples — the contract the experiment harnesses rely on.
pub trait GraphGenerator {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Fits the model to `g` under `task`, deterministically in `seed`.
    fn fit(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Box<dyn FittedGenerator>>;

    /// One-shot convenience: fit, then draw a single graph. Equivalent to
    /// `self.fit(g, task, seed)?.generate(seed.wrapping_add(1))`.
    fn fit_generate(&self, g: &Graph, task: &TaskSpec, seed: u64) -> Result<Graph> {
        self.fit(g, task, seed)?.generate(seed.wrapping_add(1))
    }
}

/// A trained generative model, ready to sample synthetic graphs.
///
/// Implementations must be **deterministic per seed**: two `generate`
/// calls with the same seed on the same fitted model return the same
/// graph, regardless of any calls in between.
pub trait FittedGenerator {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Draws one synthetic graph, deterministically in `seed`.
    fn generate(&mut self, seed: u64) -> Result<Graph>;

    /// Draws one synthetic graph per seed. Equivalent to mapping
    /// [`FittedGenerator::generate`] over `seeds`.
    ///
    /// The default impl pre-allocates the output (collecting an iterator of
    /// `Result`s loses the size hint and would grow the `Vec` by doubling —
    /// measurable at serving batch sizes).
    fn generate_batch(&mut self, seeds: &[u64]) -> Result<Vec<Graph>> {
        let mut out = Vec::with_capacity(seeds.len());
        for &s in seeds {
            out.push(self.generate(s)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity;
    struct FittedIdentity(Graph);

    impl GraphGenerator for Identity {
        fn name(&self) -> &'static str {
            "Identity"
        }
        fn fit(
            &self,
            g: &Graph,
            task: &TaskSpec,
            _seed: u64,
        ) -> Result<Box<dyn FittedGenerator>> {
            task.validate(g)?;
            Ok(Box::new(FittedIdentity(g.clone())))
        }
    }

    impl FittedGenerator for FittedIdentity {
        fn name(&self) -> &'static str {
            "Identity"
        }
        fn generate(&mut self, _seed: u64) -> Result<Graph> {
            Ok(self.0.clone())
        }
    }

    #[test]
    fn trait_object_usable_through_both_phases() {
        let gens: Vec<Box<dyn GraphGenerator>> = vec![Box::new(Identity)];
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let task = TaskSpec::unlabeled();
        let mut fitted = gens[0].fit(&g, &task, 0).expect("fit");
        assert_eq!(fitted.generate(0).expect("generate"), g);
        let batch = fitted.generate_batch(&[1, 2, 3]).expect("batch");
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|out| *out == g));
        assert_eq!(gens[0].fit_generate(&g, &task, 0).expect("one-shot"), g);
        assert_eq!(gens[0].name(), "Identity");
        assert_eq!(fitted.name(), "Identity");
    }

    #[test]
    fn task_spec_validation_catches_bad_inputs() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        // Node out of range.
        let t = TaskSpec::new(vec![(9, 0)], 2, None);
        assert!(matches!(
            t.validate(&g),
            Err(FairGenError::NodeOutOfRange { node: 9, nodes: 4 })
        ));
        // Label out of range.
        let t = TaskSpec::new(vec![(1, 5)], 2, None);
        assert!(matches!(
            t.validate(&g),
            Err(FairGenError::LabelOutOfRange { label: 5, num_classes: 2, .. })
        ));
        // Group universe mismatch.
        let t = TaskSpec {
            protected: Some(NodeSet::from_members(7, &[0, 1])),
            ..TaskSpec::unlabeled()
        };
        assert!(matches!(
            t.validate(&g),
            Err(FairGenError::GroupUniverseMismatch { group_universe: 7, nodes: 4 })
        ));
        // Valid spec.
        let t = TaskSpec::new(vec![(0, 0), (3, 1)], 2, Some(NodeSet::from_members(4, &[3])));
        assert!(t.validate(&g).is_ok());
        assert!(t.has_labels());
        assert!(!TaskSpec::unlabeled().has_labels());
    }
}
