//! The common generator interface.

use fairgen_graph::Graph;

/// A graph generative model: fits on an observed graph and produces a
/// synthetic graph over the same vertex set with approximately the same
/// number of edges.
///
/// `seed` makes the whole fit-and-generate pipeline deterministic, which the
/// experiment harnesses rely on.
pub trait GraphGenerator {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Fits the model to `g` and generates one synthetic graph.
    fn fit_generate(&self, g: &Graph, seed: u64) -> Graph;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity;

    impl GraphGenerator for Identity {
        fn name(&self) -> &'static str {
            "Identity"
        }
        fn fit_generate(&self, g: &Graph, _seed: u64) -> Graph {
            g.clone()
        }
    }

    #[test]
    fn trait_object_usable() {
        let gens: Vec<Box<dyn GraphGenerator>> = vec![Box::new(Identity)];
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let out = gens[0].fit_generate(&g, 0);
        assert_eq!(out, g);
        assert_eq!(gens[0].name(), "Identity");
    }
}
