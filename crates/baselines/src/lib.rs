//! The comparison baselines of the FairGen evaluation (Section III-A):
//! two random-graph models and three deep generative models.
//!
//! * [`ErGenerator`] — Erdős–Rényi \[47\]: fits the edge probability.
//! * [`BaGenerator`] — Barabási–Albert \[6\]: fits the attachment count.
//! * [`GaeGenerator`] — GAE \[48\]: a one-propagation graph auto-encoder
//!   (symmetric-normalized propagation of learned embeddings, inner-product
//!   decoder, BCE on edges vs. sampled non-edges).
//! * [`NetGanGenerator`] — NetGAN-lite \[5\]: an LSTM walk generator trained
//!   contrastively on node2vec walks vs. negative walks, assembled via the
//!   score matrix.
//! * [`TagGenGenerator`] — TagGen-lite \[49\]: the same recipe with a
//!   Transformer generator (TagGen's key architectural difference).
//!
//! The deep baselines are deliberate *simplifications* of their namesakes —
//! Wasserstein critics and temporal mechanisms are out of scope — but they
//! preserve the property the paper's comparison relies on: they model the
//! frequent (unprotected) patterns well and have no mechanism that protects
//! the minority group. See DESIGN.md §1.
//!
//! All generators implement [`GraphGenerator`]: [`GraphGenerator::fit`]
//! trains once on an input graph (under a [`TaskSpec`]) and the returned
//! [`FittedGenerator`] emits synthetic graphs over the same vertex set with
//! (approximately) the same edge count, one per generation seed. See
//! [`traits`] for the lifecycle contract and the migration notes from the
//! old one-shot `fit_generate` API.

pub mod ba;
pub mod er;
pub mod gae;
pub mod netgan;
pub mod persist;
pub mod taggen;
pub mod traits;
pub mod walk_lm;

pub use ba::BaGenerator;
pub use er::ErGenerator;
pub use gae::GaeGenerator;
pub use netgan::NetGanGenerator;
pub use persist::{
    decode_baseline, fitted_to_bytes, PersistableGenerator, PersistableGraphGenerator,
};
pub use taggen::TagGenGenerator;
pub use traits::{FittedGenerator, GraphGenerator, TaskSpec};
pub use walk_lm::WalkLmBudget;
