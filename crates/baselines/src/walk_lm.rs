//! Shared training recipe for walk-based language-model generators
//! (NetGAN-lite and TagGen-lite): contrastive likelihood on real node2vec
//! walks versus negative walks, then score-matrix assembly.
//!
//! The recipe is split along the two-phase generator lifecycle:
//! [`train_walk_lm`] fits the language model once, and [`FittedWalkLm`]
//! re-samples walks + assembles a fresh synthetic graph per generation
//! seed, so one training run amortizes across many draws.

use fairgen_graph::codec::{Codec, Decoder, Encoder};
use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::Graph;
use fairgen_par::{predraw, ThreadPool};
use fairgen_walks::{negative, Node2VecWalker, ScoreMatrix, Walk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::FittedGenerator;

/// Training/generation budget for walk-LM baselines.
///
/// Defaults are sized for the scaled benchmark graphs (a few hundred nodes);
/// tests shrink them further.
#[derive(Clone, Copy, Debug)]
pub struct WalkLmBudget {
    /// Walk length `T` (number of nodes).
    pub walk_len: usize,
    /// Number of real walks sampled for training.
    pub train_walks: usize,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// Weight of the unlikelihood (negative-walk) term.
    pub negative_weight: f64,
    /// Number of synthetic walks generated for assembly, as a multiple of
    /// `train_walks` ("we generate a much larger number of random walks than
    /// the sampled ones", Section II-D).
    pub gen_multiplier: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for WalkLmBudget {
    fn default() -> Self {
        WalkLmBudget {
            walk_len: 10,
            train_walks: 400,
            epochs: 4,
            negative_weight: 0.2,
            gen_multiplier: 4,
            lr: 0.01,
        }
    }
}

/// Interface the two walk-LM baselines expose to the shared trainer:
/// likelihood training steps and autoregressive sampling.
pub trait WalkModel {
    /// One gradient-accumulating likelihood step (negative `weight` =
    /// unlikelihood). Returns the loss.
    fn lm_step(&mut self, seq: &[usize], weight: f64) -> f64;
    /// Zero accumulated gradients.
    fn lm_zero(&mut self);
    /// Apply an optimizer step.
    fn lm_opt_step(&mut self);
    /// Sample `count` sequences across `pool` — each worker advancing a
    /// chunk of walks in lockstep through a batched decode state, walk `i`
    /// replaying `draws[i·len..(i+1)·len]` (see
    /// [`fairgen_nn::sample_walk_batch`]). This is the single sampling
    /// contract of the trait; output must be bit-identical for any pool
    /// width and batch width.
    ///
    /// # Errors
    ///
    /// [`FairGenError::Generate`] on a degenerate sampling distribution.
    fn lm_sample_batch(
        &self,
        pool: &ThreadPool,
        count: usize,
        len: usize,
        draws: &[u64],
    ) -> Result<Vec<Vec<usize>>>;

    /// Sample one sequence of the given length, consuming exactly `len`
    /// draws from `rng` — defined as a batch of one so the two entry
    /// points cannot diverge.
    ///
    /// # Errors
    ///
    /// [`FairGenError::Generate`] on a degenerate sampling distribution.
    fn lm_sample(&mut self, len: usize, rng: &mut StdRng) -> Result<Vec<usize>> {
        let draws = predraw(rng, len);
        let mut walks = self.lm_sample_batch(&ThreadPool::new(1), 1, len, &draws)?;
        walks.pop().ok_or_else(|| FairGenError::Internal {
            detail: "batch of one returned no walk".into(),
        })
    }
}

/// Trains `model` contrastively on node2vec walks from `g`.
///
/// Returns `false` (leaving the model untouched) when the graph has no
/// edges — there is nothing to learn and nothing to assemble.
pub fn train_walk_lm<M: WalkModel>(
    model: &mut M,
    g: &Graph,
    budget: &WalkLmBudget,
    rng: &mut StdRng,
) -> bool {
    let walker = Node2VecWalker::default();
    let positives = walker.walk_corpus(g, budget.train_walks, budget.walk_len, rng);
    if positives.is_empty() {
        return false;
    }
    let negatives =
        negative::random_sequences(g.n(), budget.train_walks / 2, budget.walk_len, rng);
    let to_ids = |w: &Walk| -> Vec<usize> { w.iter().map(|&v| v as usize).collect() };
    let batch = 8usize;
    for _ in 0..budget.epochs {
        let mut order: Vec<usize> = (0..positives.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for chunk in order.chunks(batch) {
            model.lm_zero();
            for &i in chunk {
                model.lm_step(&to_ids(&positives[i]), 1.0);
                if budget.negative_weight > 0.0 {
                    let neg = &negatives[i % negatives.len()];
                    model.lm_step(&to_ids(neg), -budget.negative_weight);
                }
            }
            model.lm_opt_step();
        }
    }
    true
}

/// Samples `total` walks from `model` across `pool` and assembles a graph
/// with `target_m` edges over `n` vertices — the per-draw hot path of both
/// walk-LM baselines.
///
/// Walk sampling fans out with one decode state per worker, each walk
/// replaying its slice of the pre-drawn master stream, and the score matrix
/// is built from per-worker partials merged in chunk order
/// ([`ScoreMatrix::from_token_walks`]); both stages — and hence the
/// assembled graph — are bit-identical to the sequential loop for any
/// worker count.
///
/// # Errors
///
/// Propagates [`FairGenError::Generate`] from a degenerate sampling step.
pub fn sample_and_assemble<M: WalkModel>(
    model: &M,
    pool: &ThreadPool,
    n: usize,
    target_m: usize,
    walk_len: usize,
    total: usize,
    rng: &mut StdRng,
) -> Result<Graph> {
    let draws = predraw(rng, total * walk_len);
    let walks = model.lm_sample_batch(pool, total, walk_len, &draws)?;
    let scores = ScoreMatrix::from_token_walks(pool, n, &walks);
    Ok(scores.assemble(target_m, rng))
}

/// A fitted walk-LM generator: the trained model plus the sampling budget.
/// Each generation seed re-samples walks and re-assembles independently.
///
/// Fields are crate-private so the `trained`/budget invariants stay
/// unrepresentable from outside; NetGAN-lite and TagGen-lite construct
/// this from their `fit` implementations.
pub struct FittedWalkLm<M: WalkModel> {
    /// The trained (or untouched, when `trained` is false) language model.
    pub(crate) model: M,
    /// Display name of the owning baseline.
    pub(crate) display_name: &'static str,
    /// Vertex count of the fitted graph.
    pub(crate) n: usize,
    /// Edge budget of the fitted graph.
    pub(crate) target_m: usize,
    /// Sampling budget (walk length / walk count).
    pub(crate) budget: WalkLmBudget,
    /// Whether training ran (false for edgeless inputs).
    pub(crate) trained: bool,
}

impl WalkLmBudget {
    /// Folds the budget into a serving-cache fingerprint (every field
    /// changes the fitted model or its sampling behaviour).
    pub fn fold_config(&self, fp: &mut fairgen_graph::FingerprintBuilder) {
        fp.add_usize(self.walk_len)
            .add_usize(self.train_walks)
            .add_usize(self.epochs)
            .add_f64(self.negative_weight)
            .add_usize(self.gen_multiplier)
            .add_f64(self.lr);
    }
}

impl Codec for WalkLmBudget {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.walk_len);
        enc.put_usize(self.train_walks);
        enc.put_usize(self.epochs);
        enc.put_f64(self.negative_weight);
        enc.put_usize(self.gen_multiplier);
        enc.put_f64(self.lr);
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        let budget = WalkLmBudget {
            walk_len: dec.take_usize()?,
            train_walks: dec.take_usize()?,
            epochs: dec.take_usize()?,
            negative_weight: dec.take_f64()?,
            gen_multiplier: dec.take_usize()?,
            lr: dec.take_f64()?,
        };
        if budget.walk_len < 2 || !budget.lr.is_finite() || budget.lr <= 0.0 {
            return Err(FairGenError::CorruptCheckpoint {
                detail: format!("degenerate walk-LM budget {budget:?}"),
            });
        }
        Ok(budget)
    }
}

/// Appends the family-independent half of a fitted walk-LM checkpoint
/// (counts, budget, trained flag) followed by the model state.
pub(crate) fn encode_fitted_walk_lm<M: WalkModel + Codec>(
    fitted: &FittedWalkLm<M>,
    enc: &mut Encoder,
) {
    enc.put_usize(fitted.n);
    enc.put_usize(fitted.target_m);
    fitted.budget.encode(enc);
    enc.put_bool(fitted.trained);
    fitted.model.encode(enc);
}

/// Reads back what [`encode_fitted_walk_lm`] wrote. `display_name` is the
/// owning family's static name (it doubles as the checkpoint tag, so it is
/// not stored in the payload).
pub(crate) fn decode_fitted_walk_lm<M: WalkModel + Codec>(
    display_name: &'static str,
    dec: &mut Decoder,
) -> Result<FittedWalkLm<M>> {
    let n = dec.take_usize()?;
    let target_m = dec.take_usize()?;
    let budget = WalkLmBudget::decode(dec)?;
    let trained = dec.take_bool()?;
    let model = M::decode(dec)?;
    Ok(FittedWalkLm { model, display_name, n, target_m, budget, trained })
}

impl<M: WalkModel + Sync> FittedGenerator for FittedWalkLm<M> {
    fn name(&self) -> &'static str {
        self.display_name
    }

    fn generate(&mut self, seed: u64) -> Result<Graph> {
        if !self.trained {
            // Edgeless input: nothing was learned, emit the empty graph.
            return Ok(Graph::empty(self.n));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.budget.train_walks * self.budget.gen_multiplier;
        // Fan the walk batch out over the process-wide pool; output is
        // bit-identical to the sequential path for any worker count, so
        // per-seed determinism (and checkpoint round-trip equality) holds
        // regardless of `FAIRGEN_THREADS`.
        sample_and_assemble(
            &self.model,
            ThreadPool::global(),
            self.n,
            self.target_m,
            self.budget.walk_len,
            total,
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot test helper: train, then sample + assemble with the same
    /// rng stream (the pre-redesign `fit_generate` shape).
    fn train_and_assemble<M: WalkModel + Sync>(
        model: &mut M,
        g: &Graph,
        budget: &WalkLmBudget,
        rng: &mut StdRng,
    ) -> Graph {
        if !train_walk_lm(model, g, budget, rng) {
            return Graph::empty(g.n());
        }
        let total = budget.train_walks * budget.gen_multiplier;
        let pool = ThreadPool::new(2);
        sample_and_assemble(model, &pool, g.n(), g.m(), budget.walk_len, total, rng)
            .expect("replay sampling never degenerates")
    }

    /// A fake model that memorizes positives and replays them at sampling
    /// time — exercises the harness without training cost.
    struct Replay {
        seen: Vec<Vec<usize>>,
        cursor: usize,
    }

    impl WalkModel for Replay {
        fn lm_step(&mut self, seq: &[usize], weight: f64) -> f64 {
            if weight > 0.0 {
                self.seen.push(seq.to_vec());
            }
            0.0
        }
        fn lm_zero(&mut self) {}
        fn lm_opt_step(&mut self) {}
        fn lm_sample(&mut self, len: usize, _rng: &mut StdRng) -> Result<Vec<usize>> {
            let w = self.seen[self.cursor % self.seen.len()].clone();
            self.cursor += 1;
            Ok(w.into_iter().take(len).collect())
        }
        fn lm_sample_batch(
            &self,
            _pool: &ThreadPool,
            count: usize,
            len: usize,
            _draws: &[u64],
        ) -> Result<Vec<Vec<usize>>> {
            // Index-keyed replay: walk `i` is the `i`-th memorized positive,
            // so batches are deterministic without the sequential cursor.
            Ok((0..count)
                .map(|i| self.seen[i % self.seen.len()].iter().copied().take(len).collect())
                .collect())
        }
    }

    #[test]
    fn replay_model_reconstructs_ring() {
        let n = 30;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        let mut model = Replay { seen: Vec::new(), cursor: 0 };
        let budget = WalkLmBudget {
            train_walks: 100,
            epochs: 1,
            gen_multiplier: 4,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let out = train_and_assemble(&mut model, &g, &budget, &mut rng);
        assert_eq!(out.n(), n);
        assert_eq!(out.m(), g.m());
        // A replay of true walks reconstructs mostly true edges.
        let true_edges = out.edge_list().iter().filter(|&&(u, v)| g.has_edge(u, v)).count();
        assert!(
            true_edges as f64 > 0.8 * out.m() as f64,
            "only {true_edges}/{} true edges",
            out.m()
        );
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = Graph::empty(5);
        let mut model = Replay { seen: vec![vec![0]], cursor: 0 };
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!train_walk_lm(&mut model, &g, &WalkLmBudget::default(), &mut rng));
        let out = train_and_assemble(&mut model, &g, &WalkLmBudget::default(), &mut rng);
        assert_eq!(out.m(), 0);
        // The fitted wrapper reports the empty graph for every seed.
        let mut fitted = FittedWalkLm {
            model,
            display_name: "Replay",
            n: 5,
            target_m: 0,
            budget: WalkLmBudget::default(),
            trained: false,
        };
        assert_eq!(fitted.generate(3).expect("generate").m(), 0);
    }

    #[test]
    fn fitted_walk_lm_is_deterministic_per_seed() {
        let n = 20;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        let mut model = Replay { seen: Vec::new(), cursor: 0 };
        let budget = WalkLmBudget { train_walks: 40, epochs: 1, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(7);
        assert!(train_walk_lm(&mut model, &g, &budget, &mut rng));
        let mut fitted = FittedWalkLm {
            model,
            display_name: "Replay",
            n,
            target_m: g.m(),
            budget,
            trained: true,
        };
        // Replay's batch sampling is index-keyed, so generation is exactly
        // reproducible per seed — as it is for the real LM baselines.
        let a = fitted.generate(1).expect("generate");
        assert_eq!(a.n(), n);
        assert_eq!(a.m(), g.m());
        assert_eq!(a, fitted.generate(1).expect("generate again"));
    }
}
