//! The Erdős–Rényi baseline.

use fairgen_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::GraphGenerator;

/// Erdős–Rényi: fits `p = m / C(n,2)` and samples exactly `m` distinct
/// uniform edges (the `G(n, m)` variant, so the edge count matches the
/// input exactly, as the paper's assembly also guarantees).
#[derive(Clone, Copy, Debug, Default)]
pub struct ErGenerator;

impl GraphGenerator for ErGenerator {
    fn name(&self) -> &'static str {
        "ER"
    }

    fn fit_generate(&self, g: &Graph, seed: u64) -> Graph {
        let n = g.n();
        let target = g.m().min(n * n.saturating_sub(1) / 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = GraphBuilder::with_capacity(n, target);
        builder.ensure_nodes(n);
        let mut chosen = std::collections::HashSet::with_capacity(target);
        while chosen.len() < target {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let k = if u < v { (u, v) } else { (v, u) };
            if chosen.insert(k) {
                builder.add_edge(k.0, k.1);
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_node_and_edge_counts() {
        let g = Graph::from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let out = ErGenerator.fit_generate(&g, 7);
        assert_eq!(out.n(), 50);
        assert_eq!(out.m(), 49);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = Graph::from_edges(20, &(0..19).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(ErGenerator.fit_generate(&g, 3), ErGenerator.fit_generate(&g, 3));
        assert_ne!(ErGenerator.fit_generate(&g, 3), ErGenerator.fit_generate(&g, 4));
    }

    #[test]
    fn destroys_clustering() {
        // A union of triangles has CC = 1; ER output on the same budget has
        // essentially zero triangles.
        let mut edges = Vec::new();
        for t in 0..10u32 {
            let b = 3 * t;
            edges.extend([(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
        }
        let g = Graph::from_edges(30, &edges);
        let out = ErGenerator.fit_generate(&g, 11);
        assert!(out.triangle_count() < g.triangle_count());
    }

    #[test]
    fn handles_dense_target() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let out = ErGenerator.fit_generate(&g, 1);
        assert_eq!(out.m(), 6); // complete graph
    }
}
