//! The Erdős–Rényi baseline.

use fairgen_graph::codec::{Decoder, Encoder};
use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::persist::{PersistableGenerator, PersistableGraphGenerator};
use crate::traits::{FittedGenerator, GraphGenerator, TaskSpec};

/// Erdős–Rényi: fits `p = m / C(n,2)` and samples exactly `m` distinct
/// uniform edges (the `G(n, m)` variant, so the edge count matches the
/// input exactly, as the paper's assembly also guarantees).
///
/// Fitting is just counting — the fit seed is unused — so the interesting
/// randomness lives entirely in the per-sample generation seed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErGenerator;

/// A fitted ER model: the vertex count and edge budget of the input.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FittedEr {
    n: usize,
    target: usize,
}

impl ErGenerator {
    fn fit_impl(&self, g: &Graph, task: &TaskSpec) -> Result<FittedEr> {
        task.validate(g)?;
        let n = g.n();
        let target = g.m().min(n * n.saturating_sub(1) / 2);
        Ok(FittedEr { n, target })
    }
}

impl GraphGenerator for ErGenerator {
    fn name(&self) -> &'static str {
        "ER"
    }

    fn fit(&self, g: &Graph, task: &TaskSpec, _seed: u64) -> Result<Box<dyn FittedGenerator>> {
        Ok(Box::new(self.fit_impl(g, task)?))
    }
}

impl PersistableGraphGenerator for ErGenerator {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        _seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        Ok(Box::new(self.fit_impl(g, task)?))
    }
}

impl PersistableGenerator for FittedEr {
    fn checkpoint_tag(&self) -> &'static str {
        "ER"
    }

    fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.n);
        enc.put_usize(self.target);
    }
}

/// Decodes a fitted ER model from a checkpoint payload.
pub(crate) fn decode_fitted(dec: &mut Decoder) -> Result<FittedEr> {
    let n = dec.take_usize()?;
    let target = dec.take_usize()?;
    let max = n * n.saturating_sub(1) / 2;
    if target > max {
        return Err(FairGenError::CorruptCheckpoint {
            detail: format!("ER target {target} exceeds the {max} possible edges on {n} nodes"),
        });
    }
    Ok(FittedEr { n, target })
}

impl FittedGenerator for FittedEr {
    fn name(&self) -> &'static str {
        "ER"
    }

    fn generate(&mut self, seed: u64) -> Result<Graph> {
        let n = self.n;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = GraphBuilder::with_capacity(n, self.target);
        builder.ensure_nodes(n);
        let mut chosen = std::collections::HashSet::with_capacity(self.target);
        while chosen.len() < self.target {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let k = if u < v { (u, v) } else { (v, u) };
            if chosen.insert(k) {
                builder.add_edge(k.0, k.1);
            }
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_generate(g: &Graph, seed: u64) -> Graph {
        ErGenerator
            .fit_generate(g, &TaskSpec::unlabeled(), seed)
            .expect("ER never fails on valid input")
    }

    #[test]
    fn preserves_node_and_edge_counts() {
        let g = Graph::from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let out = fit_generate(&g, 7);
        assert_eq!(out.n(), 50);
        assert_eq!(out.m(), 49);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = Graph::from_edges(20, &(0..19).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(fit_generate(&g, 3), fit_generate(&g, 3));
        assert_ne!(fit_generate(&g, 3), fit_generate(&g, 4));
    }

    #[test]
    fn one_fit_amortizes_many_samples() {
        let g = Graph::from_edges(20, &(0..19).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let mut fitted = ErGenerator.fit(&g, &TaskSpec::unlabeled(), 0).expect("fit");
        let batch = fitted.generate_batch(&[5, 6, 5]).expect("batch");
        assert_eq!(batch[0], batch[2], "same seed must reproduce");
        assert_ne!(batch[0], batch[1], "different seeds must differ");
        assert_eq!(batch[0], fitted.generate(5).expect("generate"));
    }

    #[test]
    fn destroys_clustering() {
        // A union of triangles has CC = 1; ER output on the same budget has
        // essentially zero triangles.
        let mut edges = Vec::new();
        for t in 0..10u32 {
            let b = 3 * t;
            edges.extend([(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
        }
        let g = Graph::from_edges(30, &edges);
        let out = fit_generate(&g, 11);
        assert!(out.triangle_count() < g.triangle_count());
    }

    #[test]
    fn handles_dense_target() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let out = fit_generate(&g, 1);
        assert_eq!(out.m(), 6); // complete graph
    }
}
