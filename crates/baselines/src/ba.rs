//! The Barabási–Albert baseline.

use fairgen_graph::codec::{Decoder, Encoder};
use fairgen_graph::error::{FairGenError, Result};
use fairgen_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::persist::{PersistableGenerator, PersistableGraphGenerator};
use crate::traits::{FittedGenerator, GraphGenerator, TaskSpec};

/// Barabási–Albert: fits the attachment count `m_attach ≈ m/n` and grows a
/// preferential-attachment graph on the same vertex count.
///
/// Fitting is a single division — the fit seed is unused — so each
/// generation seed grows an independent preferential-attachment graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaGenerator;

/// A fitted BA model: vertex count and attachment parameter.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FittedBa {
    n: usize,
    m_attach: usize,
}

impl BaGenerator {
    fn fit_impl(&self, g: &Graph, task: &TaskSpec) -> Result<FittedBa> {
        task.validate(g)?;
        let n = g.n();
        let m_attach = ((g.m() as f64 / n.max(1) as f64).round() as usize)
            .max(1)
            .min(n.saturating_sub(1).max(1));
        Ok(FittedBa { n, m_attach })
    }
}

impl GraphGenerator for BaGenerator {
    fn name(&self) -> &'static str {
        "BA"
    }

    fn fit(&self, g: &Graph, task: &TaskSpec, _seed: u64) -> Result<Box<dyn FittedGenerator>> {
        Ok(Box::new(self.fit_impl(g, task)?))
    }
}

impl PersistableGraphGenerator for BaGenerator {
    fn fit_persistable(
        &self,
        g: &Graph,
        task: &TaskSpec,
        _seed: u64,
    ) -> Result<Box<dyn PersistableGenerator>> {
        Ok(Box::new(self.fit_impl(g, task)?))
    }
}

impl PersistableGenerator for FittedBa {
    fn checkpoint_tag(&self) -> &'static str {
        "BA"
    }

    fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.n);
        enc.put_usize(self.m_attach);
    }
}

/// Decodes a fitted BA model from a checkpoint payload.
pub(crate) fn decode_fitted(dec: &mut Decoder) -> Result<FittedBa> {
    let n = dec.take_usize()?;
    let m_attach = dec.take_usize()?;
    if m_attach == 0 || m_attach > n.saturating_sub(1).max(1) {
        return Err(FairGenError::CorruptCheckpoint {
            detail: format!("BA attachment {m_attach} invalid for {n} nodes"),
        });
    }
    Ok(FittedBa { n, m_attach })
}

impl FittedGenerator for FittedBa {
    fn name(&self) -> &'static str {
        "BA"
    }

    fn generate(&mut self, seed: u64) -> Result<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(fairgen_data::barabasi_albert(self.n, self.m_attach, &mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::erdos_renyi;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fit_generate(g: &Graph, seed: u64) -> Graph {
        BaGenerator
            .fit_generate(g, &TaskSpec::unlabeled(), seed)
            .expect("BA never fails on valid input")
    }

    #[test]
    fn node_count_preserved_edge_count_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(120, 0.05, &mut rng);
        let out = fit_generate(&g, 2);
        assert_eq!(out.n(), 120);
        let ratio = out.m() as f64 / g.m() as f64;
        assert!((0.5..2.0).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn output_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(200, 0.03, &mut rng);
        let out = fit_generate(&g, 3);
        let avg = 2.0 * out.m() as f64 / out.n() as f64;
        assert!(out.max_degree() as f64 > 3.0 * avg, "BA should produce hubs");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = Graph::from_edges(30, &(0..29).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(fit_generate(&g, 5), fit_generate(&g, 5));
        let mut fitted = BaGenerator.fit(&g, &TaskSpec::unlabeled(), 0).expect("fit");
        assert_eq!(
            fitted.generate(9).expect("generate"),
            fitted.generate(9).expect("generate"),
        );
    }

    #[test]
    fn sparse_input_gets_minimum_attachment() {
        // m/n < 0.5 still yields m_attach = 1, not 0.
        let g = Graph::from_edges(10, &[(0, 1), (2, 3)]);
        let out = fit_generate(&g, 6);
        assert!(out.m() >= 9);
    }
}
