//! The Barabási–Albert baseline.

use fairgen_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::traits::GraphGenerator;

/// Barabási–Albert: fits the attachment count `m_attach ≈ m/n` and grows a
/// preferential-attachment graph on the same vertex count.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaGenerator;

impl GraphGenerator for BaGenerator {
    fn name(&self) -> &'static str {
        "BA"
    }

    fn fit_generate(&self, g: &Graph, seed: u64) -> Graph {
        let n = g.n();
        let m_attach = ((g.m() as f64 / n.max(1) as f64).round() as usize).max(1).min(n.saturating_sub(1).max(1));
        let mut rng = StdRng::seed_from_u64(seed);
        fairgen_data::barabasi_albert(n, m_attach, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairgen_data::erdos_renyi;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_count_preserved_edge_count_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(120, 0.05, &mut rng);
        let out = BaGenerator.fit_generate(&g, 2);
        assert_eq!(out.n(), 120);
        let ratio = out.m() as f64 / g.m() as f64;
        assert!((0.5..2.0).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn output_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(200, 0.03, &mut rng);
        let out = BaGenerator.fit_generate(&g, 3);
        let avg = 2.0 * out.m() as f64 / out.n() as f64;
        assert!(out.max_degree() as f64 > 3.0 * avg, "BA should produce hubs");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = Graph::from_edges(30, &(0..29).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(BaGenerator.fit_generate(&g, 5), BaGenerator.fit_generate(&g, 5));
    }

    #[test]
    fn sparse_input_gets_minimum_attachment() {
        // m/n < 0.5 still yields m_attach = 1, not 0.
        let g = Graph::from_edges(10, &[(0, 1), (2, 3)]);
        let out = BaGenerator.fit_generate(&g, 6);
        assert!(out.m() >= 9);
    }
}
